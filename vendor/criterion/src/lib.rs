//! Offline stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the API surface its benches need: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is a simple calibrated loop — median of
//! several timed batches — which is enough for the repo's "did this get
//! slower by 10×?" smoke usage; swap in the real crate for publication-grade
//! statistics by editing one line in the workspace manifest.
//!
//! `--no-run`, benchmark-name filtering, `--bench`/`--test` and `--help`
//! flags passed by `cargo bench` are accepted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input size in bytes per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier composed of a function name and an input label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing state handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters_per_batch: u32,
    batches: u32,
    median_ns: f64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            iters_per_batch: 16,
            batches: sample_size.clamp(3, 100) as u32,
            median_ns: f64::NAN,
        }
    }

    /// Times `routine`, keeping the median over several batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one batch, also used to bound total runtime for slow
        // routines by shrinking the batch size.
        let warmup = Instant::now();
        for _ in 0..self.iters_per_batch {
            std::hint::black_box(routine());
        }
        let per_iter = warmup.elapsed() / self.iters_per_batch;
        if per_iter > Duration::from_millis(20) {
            self.iters_per_batch = 1;
        }

        let mut samples = Vec::with_capacity(self.batches as usize);
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / f64::from(self.iters_per_batch));
        }
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2] * 1e9;
    }
}

fn format_time(nanos: f64) -> String {
    if nanos < 1e3 {
        format!("{nanos:.1} ns")
    } else if nanos < 1e6 {
        format!("{:.2} us", nanos / 1e3)
    } else if nanos < 1e9 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mut line = format!("{name:<56} {:>12}/iter", format_time(bencher.median_ns));
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Bytes(bytes) => {
                let gib = bytes as f64 / (bencher.median_ns * 1e-9) / (1u64 << 30) as f64;
                format!("{gib:.3} GiB/s")
            }
            Throughput::Elements(n) => {
                let elems = n as f64 / (bencher.median_ns * 1e-9);
                format!("{elems:.0} elem/s")
            }
        };
        line.push_str(&format!(" {per_sec:>14}"));
    }
    println!("{line}");
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` plus any user filter; `--no-run` never
        // reaches us (cargo handles it), but skip-listed flags are tolerated.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg.starts_with('-') {
                continue;
            }
            filter = Some(arg);
        }
        Self {
            filter,
            sample_size: 20,
        }
    }
}

impl Criterion {
    fn enabled(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.enabled(id) {
            let mut bencher = Bencher::new(self.sample_size);
            f(&mut bencher);
            report(id, &bencher, None);
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing throughput and sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        if self.criterion.enabled(&full) {
            let mut bencher = Bencher::new(self.sample_size.unwrap_or(self.criterion.sample_size));
            f(&mut bencher);
            report(&full, &bencher, self.throughput);
        }
        self
    }

    /// Runs a benchmark parameterised by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{id}", self.name);
        if self.criterion.enabled(&full) {
            let mut bencher = Bencher::new(self.sample_size.unwrap_or(self.criterion.sample_size));
            f(&mut bencher, input);
            report(&full, &bencher, self.throughput);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Prevents the optimiser from eliding a value (re-export convenience).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_a_routine() {
        let mut criterion = Criterion {
            filter: None,
            sample_size: 3,
        };
        let mut ran = false;
        criterion.bench_function("smoke/add", |b| {
            ran = true;
            b.iter(|| 2u64 + 2);
        });
        assert!(ran);
    }

    #[test]
    fn groups_apply_filters() {
        let mut criterion = Criterion {
            filter: Some("matches".into()),
            sample_size: 3,
        };
        let mut hits = 0;
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(3).throughput(Throughput::Bytes(8));
        group.bench_with_input(BenchmarkId::new("matches", 1), &8u64, |b, v| {
            hits += 1;
            b.iter(|| v + 1);
        });
        group.bench_function("skipped", |_b| {
            hits += 10;
        });
        group.finish();
        assert_eq!(hits, 1);
    }

    #[test]
    fn time_formatting_spans_units() {
        assert_eq!(format_time(12.3), "12.3 ns");
        assert_eq!(format_time(4_560.0), "4.56 us");
        assert_eq!(format_time(7_890_000.0), "7.89 ms");
        assert_eq!(format_time(1.5e9), "1.500 s");
    }
}
