//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small API surface it needs: [`rngs::StdRng`] (here a xoshiro256++
//! generator seeded via SplitMix64), the [`RngCore`] / [`SeedableRng`] /
//! [`Rng`] traits, and uniform sampling over half-open ranges. The API shapes
//! match `rand 0.8` so the stand-in can be swapped for the real crate by
//! editing one line in the workspace manifest.
//!
//! This generator is for *workload* randomness (reproducible simulation
//! inputs), never for security-relevant randomness — the ERASMUS measurement
//! schedule uses `erasmus_crypto::HmacDrbg` instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Generators that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<R>(&mut self, range: R) -> R::Output
    where
        R: SampleRange,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, span)` via Lemire's widening-multiply method.
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            if low < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of one draw.
fn unit_f64<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;

            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $ty
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        loop {
            let value = self.start + unit_f64(rng) * (self.end - self.start);
            if value >= self.start && value < self.end {
                return value;
            }
        }
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64.
    ///
    /// Matches the `rand::rngs::StdRng` *interface*; the output stream
    /// differs from upstream (which is documented as unportable anyway).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut seed = state;
            let mut next = || {
                seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(
            StdRng::seed_from_u64(1).next_u64(),
            StdRng::seed_from_u64(2).next_u64()
        );
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_interval_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = total / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
