//! Offline stand-in for the subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the property-testing surface its test suites rely on: the [`proptest!`]
//! macro, `prop_assert*` / [`prop_assume!`], integer-range and `any::<T>()`
//! strategies, and [`collection::vec`]. Sampling is deterministic — the RNG
//! is seeded from the test's name — and there is **no shrinking**: a failing
//! case panics with the values baked into the assertion message.
//!
//! The API shapes match upstream so the stand-in can be swapped for the real
//! crate by editing one line in the workspace manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`, like upstream's
        /// `Strategy::prop_map`.
        fn prop_map<T, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, map }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.map)(self.source.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }

    macro_rules! impl_range_strategies {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.0.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    if end < <$ty>::MAX {
                        rng.0.gen_range(start..end + 1)
                    } else if start > <$ty>::MIN {
                        rng.0.gen_range(start - 1..end) + 1
                    } else {
                        // Full-width range: any draw is in range.
                        rng.0.gen_range(<$ty>::MIN..<$ty>::MAX)
                    }
                }
            }
        )*};
    }

    impl_range_strategies!(u8, u16, u32, u64, usize);
}

pub mod arbitrary {
    //! The [`any`] entry point for "any value of this type" strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use rand::RngCore;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.0.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.0.next_u64() & 1 == 1
        }
    }

    /// Strategy producing arbitrary values of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use rand::Rng;

    /// An (inclusive-exclusive) bound on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        low: usize,
        high: usize,
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            if self.low + 1 >= self.high {
                self.low
            } else {
                rng.0.gen_range(self.low..self.high)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                low: exact,
                high: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            Self {
                low: range.start,
                high: range.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            Self {
                low: *range.start(),
                high: range.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Configuration and per-test driver state.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic RNG handed to strategies; seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// Creates the RNG for the named test (FNV-1a over the name).
        pub fn for_test(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self(StdRng::seed_from_u64(hash))
        }
    }

    /// Why a generated case did not run to completion.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected by [`prop_assume!`](crate::prop_assume);
        /// another one will be generated in its place.
        Reject,
    }

    /// Proptest execution configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn` takes `name in strategy` arguments and
/// is run for the configured number of generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(
            $crate::test_runner::ProptestConfig::default();
            $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut passed = 0u32;
            let mut attempts = 0u32;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(16).saturating_add(256),
                    "property {} rejected too many generated cases \
                     ({passed}/{} passed after {attempts} attempts)",
                    stringify!($name),
                    config.cases,
                );
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                )+
                let case = (|| -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match case {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {}
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property; panics with the failing values.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => {
        assert!($($args)*)
    };
}

/// Asserts equality inside a property; panics with both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => {
        assert_eq!($($args)*)
    };
}

/// Asserts inequality inside a property; panics with both values on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => {
        assert_ne!($($args)*)
    };
}

/// Rejects the current generated case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_hold(x in 10u64..20, y in 1u8..=255, z in 0usize..4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y >= 1);
            prop_assert!(z < 4);
        }

        #[test]
        fn vectors_respect_sizes(
            data in crate::collection::vec(any::<u8>(), 0..64),
            fixed in crate::collection::vec(any::<u8>(), 7),
        ) {
            prop_assert!(data.len() < 64);
            prop_assert_eq!(fixed.len(), 7);
        }

        #[test]
        fn tuples_and_prop_map_compose(
            pair in (0u64..10, 0u64..10).prop_map(|(a, b)| a * 10 + b),
        ) {
            prop_assert!(pair < 100);
        }

        #[test]
        fn assume_rejects_without_failing(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_attribute_parses(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let strat = 0u64..1_000_000;
        for _ in 0..16 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
