#!/usr/bin/env python3
"""Validate an `erasmus-perfbench/v5` fleet report.

Usage:
    validate_perfbench.py REPORT.json [--lossless]
                          [--expect-seed N] [--expect-loss P]
                          [--expect-lanes N] [--expect-delivery MODE]

Checks the structural invariants every v5 document must satisfy (rates
positive, per-thread sums consistent, delivered + dropped == attempted,
hub ingestion == delivered, non-negative on-demand latency percentiles,
lane fields well-formed, wire accounting conserved, scaling sweep
well-formed). With `--lossless` it additionally requires a perfect
delivery record and — on wire-delivery runs — that every ingested report
came off a decoded frame (`ingested == wire.decoded_accepted +
on_demand.completed`, with zero decode rejects); with `--expect-loss` it
requires that the lossy network actually dropped something; with
`--expect-lanes` it requires the recorded effective lane width and, for
widths > 1, at least one multi-lane hash job plus a positive lane-speedup
probe; with `--expect-delivery` it pins the delivery mode (`wire` or
`struct`).
"""

import argparse
import json
import sys


def validate(
    path: str,
    lossless: bool,
    expect_seed,
    expect_loss,
    expect_lanes,
    expect_delivery,
) -> None:
    with open(path) as fh:
        doc = json.load(fh)

    assert doc["schema"] == "erasmus-perfbench/v5", doc["schema"]
    assert doc["provers"] >= 1000, doc["provers"]
    assert doc["threads"] >= 2, doc["threads"]
    assert doc["lanes"] >= 1, doc["lanes"]
    assert doc["delivery"] in ("wire", "struct"), doc["delivery"]
    assert isinstance(doc["seed"], int), doc["seed"]
    if expect_seed is not None:
        assert doc["seed"] == expect_seed, (doc["seed"], expect_seed)
    if expect_lanes is not None:
        assert doc["lanes"] == expect_lanes, (doc["lanes"], expect_lanes)
    if expect_delivery is not None:
        assert doc["delivery"] == expect_delivery, (doc["delivery"], expect_delivery)

    for result in doc["results"]:
        # Non-positive rates mean the sub-resolution clamp regressed.
        assert result["measurements_per_sec"] > 0, result
        assert result["verifications_per_sec"] > 0, result
        assert result["all_healthy"], result
        # A device whose every collection was dropped never reaches the hub,
        # so only a lossless run is guaranteed full coverage.
        assert result["devices_tracked"] <= result["provers"], result
        if lossless:
            assert result["devices_tracked"] == result["provers"], result
        assert result["seed"] == doc["seed"], result
        assert result["delivery"] == doc["delivery"], result

        network = result["network"]
        assert 0.0 <= network["loss"] <= 1.0, network
        assert network["latency_ms"] >= 0 and network["jitter_ms"] >= 0, network
        if expect_loss is not None:
            assert network["loss"] == expect_loss, (network, expect_loss)

        collections = result["collections"]
        attempted = collections["attempted"]
        delivered = collections["delivered"]
        dropped = collections["dropped"]
        assert delivered + dropped == attempted, collections
        assert result["collections_ingested"] == delivered, result
        assert result["hub_batches"] >= 1, result
        assert 1 <= result["largest_batch"] <= delivered, result
        if lossless:
            assert dropped == 0, collections
            assert result["history_entries"] == result["measurements_total"], result
        if expect_loss:
            assert dropped > 0, "lossy run dropped nothing — loss knob broken?"

        # Wire accounting. On a wire run every periodic collection crosses
        # the wire as part of an encoded frame and on-demand reports ride the
        # struct path, so frame-decoded accepts plus on-demand completions
        # must conserve the hub's ingestion total exactly. A struct run must
        # leave every wire counter at zero.
        wire = result["wire"]
        for key in ("frames", "bytes", "responses", "decoded_accepted", "decode_rejects"):
            assert wire[key] >= 0, (key, wire)
        assert wire["encode_wall_secs"] >= 0, wire
        assert wire["ingest_wall_secs"] >= 0, wire
        assert wire["decode_mib_per_sec"] >= 0, wire
        od_completed = result["on_demand"]["completed"]
        if result["delivery"] == "wire":
            assert wire["frames"] >= 1, "wire run encoded no frame"
            assert wire["bytes"] > 0, wire
            assert wire["responses"] == delivered, (wire, collections)
            assert (
                wire["decoded_accepted"] + od_completed
                == result["collections_ingested"]
            ), (wire, result["collections_ingested"], od_completed)
            assert wire["decode_rejects"] == 0, wire
            assert wire["decode_mib_per_sec"] > 0, wire
            if lossless and od_completed == 0:
                assert wire["decoded_accepted"] == result["collections_ingested"], (
                    wire,
                    result["collections_ingested"],
                )
        else:
            for key in ("frames", "bytes", "responses", "decoded_accepted", "decode_rejects"):
                assert wire[key] == 0, (key, wire)

        assert result["lanes"] == doc["lanes"], result
        assert result["lane_jobs"] >= 0 and result["lane_remainder"] >= 0, result
        probe = result["lane_speedup"]
        assert probe is not None, "perfbench must attach the lane-speedup probe"
        assert probe["lanes"] == result["lanes"], (probe, result["lanes"])
        assert probe["scalar_measurements_per_sec"] > 0, probe
        assert probe["lane_measurements_per_sec"] > 0, probe
        assert probe["speedup"] > 0, probe
        if result["lanes"] > 1:
            assert result["lane_jobs"] > 0, "lane width > 1 but no multi-lane job ran"

        on_demand = result["on_demand"]
        assert on_demand["completed"] <= on_demand["attempted"], on_demand
        for key in ("latency_ms_p50", "latency_ms_p90", "latency_ms_p99"):
            assert on_demand[key] >= 0, on_demand
        assert on_demand["latency_ms_p50"] <= on_demand["latency_ms_p99"], on_demand

        shards = result["per_thread"]
        assert len(shards) == result["threads"], result
        assert sum(s["measurements"] for s in shards) == result["measurements_total"]
        assert sum(s["provers"] for s in shards) == result["provers"]
        assert sum(s["collections_attempted"] for s in shards) == attempted
        assert sum(s["collections_delivered"] for s in shards) == delivered
        assert sum(s["wire_frames"] for s in shards) == wire["frames"], result
        assert sum(s["wire_bytes"] for s in shards) == wire["bytes"], result
        assert sum(s["wire_accepted"] for s in shards) == wire["decoded_accepted"], result
        assert all(s["all_healthy"] for s in shards), result

    scaling = doc["scaling"]
    assert scaling, "scaling sweep missing"
    assert scaling[0]["threads"] == 1, scaling
    assert scaling[-1]["threads"] == doc["threads"], scaling
    for point in scaling:
        assert point["measurements_per_sec"] > 0, point
        assert point["verifications_per_sec"] > 0, point
        assert point["speedup"] > 0, point

    print(
        f"ok: {path}: {len(doc['results'])} algorithms, {doc['provers']} provers, "
        f"{doc['threads']} threads, {doc['lanes']} lane(s), {doc['delivery']} delivery, "
        f"seed {doc['seed']}, {len(scaling)} scaling points"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report")
    parser.add_argument("--lossless", action="store_true")
    parser.add_argument("--expect-seed", type=int, default=None)
    parser.add_argument("--expect-loss", type=float, default=None)
    parser.add_argument("--expect-lanes", type=int, default=None)
    parser.add_argument("--expect-delivery", choices=("wire", "struct"), default=None)
    args = parser.parse_args()
    validate(
        args.report,
        args.lossless,
        args.expect_seed,
        args.expect_loss,
        args.expect_lanes,
        args.expect_delivery,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
