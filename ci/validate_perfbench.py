#!/usr/bin/env python3
"""Validate an `erasmus-perfbench/v8` fleet report.

Usage:
    validate_perfbench.py REPORT.json [--lossless] [--recovered]
                          [--expect-seed N] [--expect-loss P]
                          [--expect-lanes N] [--expect-delivery MODE]
                          [--expect-crashes N] [--expect-scheduler BACKEND]
                          [--expect-history MODE] [--expect-ring-capacity N]

Checks the structural invariants every v8 document must satisfy (rates
positive, per-thread sums consistent, delivered + dropped == attempted,
the reliability ledger conserved — `unique_accepted + exhausted_retries +
churn_losses + stale_retries == attempted`, the retry histogram summing
to the deliveries, hub dedup drops equal to injected duplicates — hub
ingestion conserved through frame losses, non-negative on-demand latency
percentiles, lane fields well-formed, wire accounting conserved, scaling
sweep well-formed). With `--lossless` it additionally requires a perfect
delivery record with zero retransmissions and fault counters; with
`--recovered` it requires that faults actually fired (retransmissions,
duplicates) and that the ARQ recovered every attempt anyway; with
`--expect-loss` it requires that the lossy network actually dropped
something; with `--expect-lanes` it requires the recorded effective lane
width and, for widths > 1, at least one multi-lane hash job plus a
positive lane-speedup probe; with `--expect-delivery` it pins the
delivery mode (`wire` or `struct`); with `--expect-crashes` it pins the
per-shard hub crash/restore cycle count and requires snapshot bytes; with
`--expect-scheduler` it pins the event-queue backend (`calendar` or
`heap`). v7 added the per-result `scheduler` field and the `events` block
(cohort coalescing ledger, event-pool high-water, queue counters), which
must conserve: `coalesced + singleton == scheduled`, and every queue push
must eventually pop.

v8 adds the compact verifier history and the aggregation tree: the
top-level `history`/`ring_capacity` fields, a per-result `history` block
whose retention ledger must conserve (`evictions + resident == entries`,
a.k.a. `ring_evictions + ring_resident == entries_ingested`), whose hash
chains must all verify (`chains_verified == devices_tracked`), and —
the point of the ring — whose resident state must stay memory-bounded:
`resident <= devices_tracked * ring_capacity` in ring mode, while
unbounded mode must report zero evictions and stale discards. The
per-result `aggregation` block (hierarchical swarm rollup over the hub)
must cover every tracked device exactly once: `leaves == devices_tracked`,
`root_entries == history_entries`, and a 64-hex-char root digest whenever
any device is tracked. `--expect-history` pins the retention mode
(`ring` or `unbounded`); `--expect-ring-capacity` pins the window size.
"""

import argparse
import json
import sys


def validate(
    path: str,
    lossless: bool,
    recovered: bool,
    expect_seed,
    expect_loss,
    expect_lanes,
    expect_delivery,
    expect_crashes,
    expect_scheduler,
    expect_history,
    expect_ring_capacity,
) -> None:
    with open(path) as fh:
        doc = json.load(fh)

    assert doc["schema"] == "erasmus-perfbench/v8", doc["schema"]
    assert doc["provers"] >= 1000, doc["provers"]
    assert doc["threads"] >= 2, doc["threads"]
    assert doc["lanes"] >= 1, doc["lanes"]
    assert doc["delivery"] in ("wire", "struct"), doc["delivery"]
    assert doc["scheduler"] in ("calendar", "heap"), doc["scheduler"]
    assert doc["history"] in ("ring", "unbounded"), doc["history"]
    if doc["history"] == "ring":
        assert doc["ring_capacity"] >= 1, doc["ring_capacity"]
    else:
        assert doc["ring_capacity"] == 0, doc["ring_capacity"]
    if expect_history is not None:
        assert doc["history"] == expect_history, (doc["history"], expect_history)
    if expect_ring_capacity is not None:
        assert doc["ring_capacity"] == expect_ring_capacity, (
            doc["ring_capacity"],
            expect_ring_capacity,
        )
    assert isinstance(doc["seed"], int), doc["seed"]
    if expect_seed is not None:
        assert doc["seed"] == expect_seed, (doc["seed"], expect_seed)
    if expect_lanes is not None:
        assert doc["lanes"] == expect_lanes, (doc["lanes"], expect_lanes)
    if expect_delivery is not None:
        assert doc["delivery"] == expect_delivery, (doc["delivery"], expect_delivery)
    if expect_scheduler is not None:
        assert doc["scheduler"] == expect_scheduler, (doc["scheduler"], expect_scheduler)

    for result in doc["results"]:
        # Non-positive rates mean the sub-resolution clamp regressed.
        assert result["measurements_per_sec"] > 0, result
        assert result["verifications_per_sec"] > 0, result
        assert result["all_healthy"], result
        # A device whose every collection was dropped never reaches the hub,
        # so only a lossless run is guaranteed full coverage.
        assert result["devices_tracked"] <= result["provers"], result
        if lossless:
            assert result["devices_tracked"] == result["provers"], result
        assert result["seed"] == doc["seed"], result
        assert result["delivery"] == doc["delivery"], result
        assert result["scheduler"] == doc["scheduler"], result

        # Compact-history ledger (v8). Lifetime entries are conserved
        # across eviction (`evictions + resident == entries`), every
        # device's hash chain must re-verify after the merge, and in ring
        # mode the resident footprint is the bounded-memory claim itself:
        # at most `ring_capacity` entries per tracked device.
        history = result["history"]
        assert history["mode"] == doc["history"], (history, doc["history"])
        assert history["ring_capacity"] == doc["ring_capacity"], history
        assert (
            history["evictions"] + history["resident"] == result["history_entries"]
        ), (history, result["history_entries"])
        assert history["chains_verified"] == result["devices_tracked"], (
            history,
            result["devices_tracked"],
        )
        if result["devices_tracked"] > 0:
            assert history["resident_state_bytes"] > 0, history
        if history["mode"] == "ring":
            assert (
                history["resident"]
                <= result["devices_tracked"] * history["ring_capacity"]
            ), ("ring resident state exceeds devices * capacity", history)
            # Coarse absolute ceiling so resident_state_bytes cannot grow
            # with the entry count: fixed per-device state plus the window.
            assert history["resident_state_bytes"] <= result["devices_tracked"] * (
                1024 + 64 * history["ring_capacity"]
            ), history
        else:
            assert history["evictions"] == 0, history
            assert history["stale_discards"] == 0, history
            assert history["resident"] == result["history_entries"], history
        if lossless:
            # In-order delivery never discards a stale (pre-window) entry.
            assert history["stale_discards"] == 0, history

        # Aggregation tree (v8): the hierarchical rollup must cover every
        # tracked device exactly once — leaves match the hub, the root
        # totals match the flat history ledger, and the root digest is a
        # real 32-byte value whenever anything was aggregated.
        aggregation = result["aggregation"]
        assert aggregation["fanout"] >= 2, aggregation
        assert aggregation["leaves"] == result["devices_tracked"], (
            aggregation,
            result["devices_tracked"],
        )
        assert aggregation["root_entries"] == result["history_entries"], (
            aggregation,
            result["history_entries"],
        )
        assert aggregation["healthy_devices"] == result["devices_tracked"], aggregation
        if result["devices_tracked"] > 0:
            assert aggregation["nodes"] > aggregation["leaves"] or (
                aggregation["leaves"] == 1 and aggregation["nodes"] >= 1
            ), aggregation
            assert aggregation["depth"] >= 1, aggregation
            assert len(aggregation["root_digest"]) == 64, aggregation
            assert all(
                c in "0123456789abcdef" for c in aggregation["root_digest"]
            ), aggregation

        # Event-runtime ledger (v7). Insertion-time coalescing means one
        # queue slot may deliver many same-instant measurements; the ledger
        # must conserve, and — because the queue drains dry before a shard
        # reports — every push must eventually pop. The pool high-water is
        # the leak guard: it tracks in-flight responses, never run length.
        events = result["events"]
        assert (
            events["coalesced"] + events["singleton"] == events["scheduled"]
        ), events
        assert events["scheduled"] <= result["measurements_total"], (
            events,
            result["measurements_total"],
        )
        assert events["queue_pushes"] == events["queue_pops"], events
        assert events["queue_max_pending"] >= 1, events
        assert events["pool_high_water"] >= 1, events
        assert events["queue_overflow_pushes"] <= events["queue_pushes"], events
        if doc["scheduler"] == "calendar":
            assert events["queue_buckets"] > 0, events
            assert events["queue_bucket_width_nanos"] > 0, events
        else:
            assert events["queue_buckets"] == 0, events
            assert events["queue_bucket_width_nanos"] == 0, events
        if result["provers"] > result["stagger_groups"]:
            assert events["coalesced"] > 0, (
                "devices share stagger offsets but nothing coalesced",
                events,
            )

        network = result["network"]
        for knob in ("loss", "duplicate", "reorder", "corrupt"):
            assert 0.0 <= network[knob] <= 1.0, (knob, network)
        assert network["latency_ms"] >= 0 and network["jitter_ms"] >= 0, network
        if expect_loss is not None:
            assert network["loss"] == expect_loss, (network, expect_loss)

        collections = result["collections"]
        attempted = collections["attempted"]
        delivered = collections["delivered"]
        dropped = collections["dropped"]
        assert delivered + dropped == attempted, collections
        assert result["hub_batches"] >= 1, result
        assert 1 <= result["largest_batch"] <= delivered, result
        if lossless:
            assert dropped == 0, collections
            assert result["history_entries"] == result["measurements_total"], result
        if expect_loss:
            assert dropped > 0, "lossy run dropped nothing — loss knob broken?"

        # Reliability ledger. Every scheduled collection attempt must be
        # accounted for exactly once: delivered (after 0..retries ARQ
        # rounds), exhausted past the budget, lost to an absent device, or
        # discarded as a stale retry after a churn transition.
        reliability = result["reliability"]
        collect = reliability["collect"]
        frame = reliability["frame"]
        hub = reliability["hub"]
        retries = reliability["retries"]
        assert retries >= 0, reliability
        assert collect["attempted"] == attempted, (collect, collections)
        assert collect["unique_accepted"] == delivered, (collect, collections)
        assert (
            collect["unique_accepted"]
            + collect["exhausted_retries"]
            + collect["churn_losses"]
            + collect["stale_retries"]
            == attempted
        ), collect
        assert (
            dropped
            == collect["exhausted_retries"]
            + collect["churn_losses"]
            + collect["stale_retries"]
        ), (collect, collections)
        histogram = collect["retry_histogram"]
        assert len(histogram) == retries + 1, (histogram, retries)
        assert all(bucket >= 0 for bucket in histogram), histogram
        assert sum(histogram) == collect["unique_accepted"], (histogram, collect)
        # Exactly-once at the hub: every duplicate the network injected on
        # the frame link was dropped by the dedup window, no more, no less.
        assert hub["duplicates_dropped"] == frame["duplicates_injected"], (hub, frame)
        assert hub["crashes"] >= 0 and hub["snapshot_bytes"] >= 0, hub
        if hub["crashes"] > 0:
            assert hub["snapshot_bytes"] > 0, hub
        if frame["exhausted"] > 0:
            # Every exhausted frame carried at least one response record.
            assert frame["lost_responses"] >= frame["exhausted"], frame
        else:
            assert frame["lost_responses"] == 0, frame
        # Hub ingestion conserved through frame losses: responses the frame
        # hop lost for good never reach a history, everything else does.
        od_done = result["on_demand"]["completed"]
        assert (
            result["collections_ingested"]
            == delivered - frame["lost_responses"] + od_done
        ), (result["collections_ingested"], delivered, frame, od_done)
        if lossless:
            for counter in (
                collect["retransmits"],
                collect["exhausted_retries"],
                collect["stale_retries"],
                collect["reorders"],
                frame["retransmits"],
                frame["duplicates_injected"],
                frame["corrupt_decode"],
                frame["corrupt_tamper"],
                frame["exhausted"],
                hub["duplicates_dropped"],
            ):
                assert counter == 0, reliability
        if recovered:
            assert collect["retransmits"] > 0, "faulty run never retransmitted"
            assert frame["duplicates_injected"] > 0, "faulty run injected no duplicate"
            assert collect["unique_accepted"] == attempted, (
                "ARQ failed to recover every report",
                collect,
            )
            assert collect["exhausted_retries"] == 0, collect
            assert frame["exhausted"] == 0, frame
        if expect_crashes is not None:
            assert hub["crashes"] == expect_crashes * result["threads"], (
                hub,
                expect_crashes,
                result["threads"],
            )
            if expect_crashes > 0:
                assert hub["snapshot_bytes"] > 0, hub

        # Wire accounting. On a wire run every periodic collection crosses
        # the wire as part of an encoded frame and on-demand reports ride the
        # struct path, so frame-decoded accepts plus on-demand completions
        # must conserve the hub's ingestion total exactly. A struct run must
        # leave every wire counter at zero.
        wire = result["wire"]
        for key in ("frames", "bytes", "responses", "decoded_accepted", "decode_rejects"):
            assert wire[key] >= 0, (key, wire)
        assert wire["encode_wall_secs"] >= 0, wire
        assert wire["ingest_wall_secs"] >= 0, wire
        assert wire["decode_mib_per_sec"] >= 0, wire
        od_completed = result["on_demand"]["completed"]
        if result["delivery"] == "wire":
            assert wire["frames"] >= 1, "wire run encoded no frame"
            assert wire["bytes"] > 0, wire
            assert wire["responses"] == delivered, (wire, collections)
            assert (
                wire["decoded_accepted"] + od_completed
                == result["collections_ingested"]
            ), (wire, result["collections_ingested"], od_completed)
            assert wire["decode_rejects"] == 0, wire
            assert wire["decode_mib_per_sec"] > 0, wire
            if lossless and od_completed == 0:
                assert wire["decoded_accepted"] == result["collections_ingested"], (
                    wire,
                    result["collections_ingested"],
                )
        else:
            for key in ("frames", "bytes", "responses", "decoded_accepted", "decode_rejects"):
                assert wire[key] == 0, (key, wire)
            # Struct delivery never crosses the frame link, so every
            # frame-hop and hub reliability counter must stay at zero
            # (perfbench rejects the flag combinations up front).
            for counter in (
                frame["retransmits"],
                frame["duplicates_injected"],
                frame["corrupt_decode"],
                frame["corrupt_tamper"],
                frame["exhausted"],
                frame["lost_responses"],
                hub["duplicates_dropped"],
                hub["crashes"],
                hub["snapshot_bytes"],
            ):
                assert counter == 0, reliability

        assert result["lanes"] == doc["lanes"], result
        assert result["lane_jobs"] >= 0 and result["lane_remainder"] >= 0, result
        probe = result["lane_speedup"]
        assert probe is not None, "perfbench must attach the lane-speedup probe"
        assert probe["lanes"] == result["lanes"], (probe, result["lanes"])
        assert probe["scalar_measurements_per_sec"] > 0, probe
        assert probe["lane_measurements_per_sec"] > 0, probe
        assert probe["speedup"] > 0, probe
        if result["lanes"] > 1:
            assert result["lane_jobs"] > 0, "lane width > 1 but no multi-lane job ran"

        on_demand = result["on_demand"]
        assert on_demand["completed"] <= on_demand["attempted"], on_demand
        for key in ("latency_ms_p50", "latency_ms_p90", "latency_ms_p99"):
            assert on_demand[key] >= 0, on_demand
        assert on_demand["latency_ms_p50"] <= on_demand["latency_ms_p99"], on_demand

        shards = result["per_thread"]
        assert len(shards) == result["threads"], result
        assert sum(s["measurements"] for s in shards) == result["measurements_total"]
        assert sum(s["provers"] for s in shards) == result["provers"]
        assert sum(s["collections_attempted"] for s in shards) == attempted
        assert sum(s["collections_delivered"] for s in shards) == delivered
        assert sum(s["wire_frames"] for s in shards) == wire["frames"], result
        assert sum(s["wire_bytes"] for s in shards) == wire["bytes"], result
        assert sum(s["wire_accepted"] for s in shards) == wire["decoded_accepted"], result
        assert sum(s["events_scheduled"] for s in shards) == events["scheduled"], result
        assert sum(s["singleton_events"] for s in shards) == events["singleton"], result
        assert sum(s["coalesced_events"] for s in shards) == events["coalesced"], result
        assert (
            sum(s["event_pool_high_water"] for s in shards) == events["pool_high_water"]
        ), result
        assert sum(s["queue_pushes"] for s in shards) == events["queue_pushes"], result
        assert sum(s["queue_pops"] for s in shards) == events["queue_pops"], result
        assert (
            max(s["queue_max_pending"] for s in shards) == events["queue_max_pending"]
        ), result
        for shard in shards:
            assert (
                shard["coalesced_events"] + shard["singleton_events"]
                == shard["events_scheduled"]
            ), shard
            assert shard["queue_pushes"] == shard["queue_pops"], shard
        assert all(s["all_healthy"] for s in shards), result

    scaling = doc["scaling"]
    assert scaling, "scaling sweep missing"
    assert scaling[0]["threads"] == 1, scaling
    assert scaling[-1]["threads"] == doc["threads"], scaling
    for point in scaling:
        assert point["measurements_per_sec"] > 0, point
        assert point["verifications_per_sec"] > 0, point
        assert point["speedup"] > 0, point

    history_label = doc["history"]
    if history_label == "ring":
        history_label = f"ring({doc['ring_capacity']})"
    print(
        f"ok: {path}: {len(doc['results'])} algorithms, {doc['provers']} provers, "
        f"{doc['threads']} threads, {doc['lanes']} lane(s), {doc['delivery']} delivery, "
        f"{doc['scheduler']} scheduler, {history_label} history, seed {doc['seed']}, "
        f"{len(scaling)} scaling points"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report")
    parser.add_argument("--lossless", action="store_true")
    parser.add_argument("--recovered", action="store_true")
    parser.add_argument("--expect-seed", type=int, default=None)
    parser.add_argument("--expect-loss", type=float, default=None)
    parser.add_argument("--expect-lanes", type=int, default=None)
    parser.add_argument("--expect-delivery", choices=("wire", "struct"), default=None)
    parser.add_argument("--expect-crashes", type=int, default=None)
    parser.add_argument(
        "--expect-scheduler", choices=("calendar", "heap"), default=None
    )
    parser.add_argument(
        "--expect-history", choices=("ring", "unbounded"), default=None
    )
    parser.add_argument("--expect-ring-capacity", type=int, default=None)
    args = parser.parse_args()
    validate(
        args.report,
        args.lossless,
        args.recovered,
        args.expect_seed,
        args.expect_loss,
        args.expect_lanes,
        args.expect_delivery,
        args.expect_crashes,
        args.expect_scheduler,
        args.expect_history,
        args.expect_ring_capacity,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
