//! ERASMUS — Efficient Remote Attestation via Self-Measurement for
//! Unattended Settings.
//!
//! This is the facade crate of the reproduction workspace. It re-exports the
//! individual crates so that examples, integration tests and downstream users
//! can depend on a single crate:
//!
//! * [`crypto`] — SHA-1/SHA-256/HMAC/keyed-BLAKE2s/HMAC-DRBG implemented from
//!   scratch (the MAC *is* the measurement primitive).
//! * [`hw`] — simulated SMART+/HYDRA-class device hardware: memory map, MPU
//!   rules, ROM, reliable read-only clock, timers, cost and code-size models.
//! * [`sim`] — deterministic discrete-event simulation engine.
//! * [`core`] — the paper's contribution: self-measurement, rolling buffer,
//!   collection protocols (ERASMUS, ERASMUS+OD, on-demand), Quality of
//!   Attestation and malware models.
//! * [`swarm`] — swarm attestation on top of ERASMUS (Section 6).
//!
//! # Quickstart
//!
//! ```
//! use erasmus::prelude::*;
//!
//! # fn main() -> Result<(), erasmus::core::Error> {
//! // A low-end prover that self-measures every 10 simulated seconds and
//! // keeps the last 16 measurements in its rolling buffer.
//! let profile = DeviceProfile::msp430_8mhz(10 * 1024);
//! let config = ProverConfig::builder()
//!     .mac_algorithm(MacAlgorithm::HmacSha256)
//!     .measurement_interval(SimDuration::from_secs(10))
//!     .buffer_slots(16)
//!     .build()?;
//! let key = DeviceKey::from_bytes([0x42; 32]);
//! let mut prover = Prover::new(DeviceId::new(1), profile, key.clone(), config)?;
//! let mut verifier = Verifier::new(key, MacAlgorithm::HmacSha256);
//!
//! // Let the device run for a minute, then collect and verify its history.
//! let mut clock = SimClock::new();
//! for _ in 0..6 {
//!     clock.advance(SimDuration::from_secs(10));
//!     prover.self_measure(clock.now())?;
//! }
//! let response = prover.handle_collection(&CollectionRequest::latest(4), clock.now());
//! let report = verifier.verify_collection(&response, clock.now())?;
//! assert!(report.all_valid());
//! assert_eq!(report.measurements().len(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use erasmus_core as core;
pub use erasmus_crypto as crypto;
pub use erasmus_hw as hw;
pub use erasmus_sim as sim;
#[cfg(feature = "swarm")]
pub use erasmus_swarm as swarm;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use erasmus_core::{
        AttestationVerdict, CollectionRequest, CollectionResponse, DeviceId, DeviceKey,
        Measurement, MeasurementBuffer, Prover, ProverConfig, QoaParams, Verifier,
    };
    pub use erasmus_crypto::{Digest, MacAlgorithm, Sha256};
    pub use erasmus_hw::{DeviceProfile, SecurityArchitecture};
    pub use erasmus_sim::{SimClock, SimDuration, SimTime};
}
