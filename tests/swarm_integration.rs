//! Swarm integration tests spanning the core protocol engines, the topology
//! and mobility substrate and the QoSA reporting (Section 6).

use erasmus::sim::{SimDuration, SimRng, SimTime};
use erasmus::swarm::swarm::mobility_for_experiment;
use erasmus::swarm::{
    DeviceStatus, MobilityModel, QosaLevel, StaggeredSchedule, Swarm, SwarmConfig, SwarmError,
    Topology,
};
use proptest::prelude::*;

fn fleet(topology: Topology) -> Swarm {
    Swarm::new(SwarmConfig::default(), topology, b"integration fleet").expect("swarm builds")
}

#[test]
fn grid_swarm_full_collection_roundtrip() {
    let mut swarm = fleet(Topology::grid(4, 4));
    swarm
        .run_until(SimTime::from_secs(60))
        .expect("self-measurements");
    let outcome = swarm
        .erasmus_collection(0, SimTime::from_secs(60), 6)
        .expect("collection");
    assert_eq!(outcome.coverage(), 1.0);
    assert!(outcome.report.swarm_healthy());
    assert_eq!(outcome.report.summary(QosaLevel::Binary), "swarm healthy");
    assert_eq!(outcome.report.len(), 16);
    // The whole round is fast: the prover-side work is just reading buffers
    // and relaying packets.
    assert!(outcome.duration < SimDuration::from_secs(1));
}

#[test]
fn compromised_and_partitioned_devices_show_up_in_qosa() {
    let mut swarm = fleet(Topology::ring(10));
    swarm.run_until(SimTime::from_secs(30)).expect("run");
    swarm
        .infect_device(4, SimTime::from_secs(31))
        .expect("infect");
    swarm.run_until(SimTime::from_secs(60)).expect("run");
    // Partition device 7 completely.
    swarm.topology_mut().remove_link(6, 7);
    swarm.topology_mut().remove_link(7, 8);

    let outcome = swarm
        .erasmus_collection(0, SimTime::from_secs(60), 6)
        .expect("collection");
    assert_eq!(outcome.report.status(4), Some(DeviceStatus::Compromised));
    assert_eq!(outcome.report.status(7), Some(DeviceStatus::Unreachable));
    assert_eq!(outcome.report.unhealthy_devices(), vec![4, 7]);
    assert!(!outcome.report.swarm_healthy());
    assert!((outcome.coverage() - 0.9).abs() < 1e-9);
    let full = outcome.report.summary(QosaLevel::Full);
    assert!(full.contains("device 4: Compromised"));
    assert!(full.contains("device 7: Unreachable"));
}

#[test]
fn erasmus_collection_tolerates_mobility_better_than_on_demand() {
    let mut rng = SimRng::seed_from(97);
    let topology = Topology::random_connected(30, 3.0, &mut rng);
    let mut swarm = fleet(topology);
    swarm.run_until(SimTime::from_secs(60)).expect("run");

    let erasmus = swarm
        .erasmus_collection(0, SimTime::from_secs(60), 6)
        .expect("collection");

    let model = MobilityModel::churn(SimDuration::from_millis(100), 0.7);
    let mut mobility = mobility_for_experiment(model, 13);
    let on_demand = swarm
        .on_demand_attestation(0, SimTime::from_secs(61), &mut mobility)
        .expect("attestation");

    assert!(erasmus.coverage() > 0.95);
    assert!(erasmus.coverage() >= on_demand.coverage());
    assert!(on_demand.duration > erasmus.duration * 10);
    // The on-demand round burns real computation on every device.
    assert!(on_demand.total_prover_time > erasmus.total_prover_time * 100);
}

#[test]
fn staggered_schedule_limits_concurrent_measurement_load() {
    let swarm_size = 40;
    let schedule = StaggeredSchedule::new(swarm_size, 8, SimDuration::from_secs(40));
    assert_eq!(schedule.max_concurrent(), 5);
    assert!(schedule.max_busy_fraction() <= 0.125 + 1e-9);
    // Offsets partition the devices: every device gets exactly one group,
    // and groups are disjoint.
    let mut seen = vec![false; swarm_size];
    for group in 0..schedule.groups() {
        for device in schedule.devices_in_group(group) {
            assert!(!seen[device], "device {device} appears in two groups");
            seen[device] = true;
        }
    }
    assert!(seen.iter().all(|&s| s));
}

#[test]
fn swarm_errors_are_reported_per_device() {
    let mut swarm = fleet(Topology::ring(4));
    assert!(matches!(
        swarm.erasmus_collection(9, SimTime::from_secs(10), 2),
        Err(SwarmError::UnknownDevice { index: 9, size: 4 })
    ));
    assert!(matches!(
        swarm.prover(17),
        Err(SwarmError::UnknownDevice { .. })
    ));
    assert!(matches!(
        swarm.infect_device(17, SimTime::from_secs(1)),
        Err(SwarmError::UnknownDevice { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any connected topology, an ERASMUS collection from any root covers
    /// the whole swarm and reports it healthy when nothing is infected.
    #[test]
    fn any_connected_topology_gets_full_coverage(
        nodes in 2usize..20,
        degree in 2u32..5,
        root_pick in 0usize..20,
        seed in 0u64..1_000,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let topology = Topology::random_connected(nodes, degree as f64, &mut rng);
        prop_assume!(topology.is_connected());
        let root = root_pick % nodes;
        let mut swarm = fleet(topology);
        swarm.run_until(SimTime::from_secs(30)).expect("run");
        let outcome = swarm.erasmus_collection(root, SimTime::from_secs(30), 3).expect("collection");
        prop_assert_eq!(outcome.coverage(), 1.0);
        prop_assert!(outcome.report.swarm_healthy());
    }

    /// Infecting any single device is always localized: exactly that device
    /// is flagged, the rest stay healthy.
    #[test]
    fn single_infection_is_localized(nodes in 3usize..12, victim_pick in 0usize..12) {
        let victim = victim_pick % nodes;
        let mut swarm = fleet(Topology::full_mesh(nodes));
        swarm.run_until(SimTime::from_secs(20)).expect("run");
        swarm.infect_device(victim, SimTime::from_secs(21)).expect("infect");
        swarm.run_until(SimTime::from_secs(40)).expect("run");
        let outcome = swarm.erasmus_collection(0, SimTime::from_secs(40), 4).expect("collection");
        prop_assert_eq!(outcome.report.unhealthy_devices(), vec![victim]);
        prop_assert_eq!(outcome.report.count(DeviceStatus::Compromised), 1);
        prop_assert_eq!(outcome.report.count(DeviceStatus::Healthy), nodes - 1);
    }
}
