//! Security-property tests: unforgeability of measurements, tamper evidence,
//! key isolation, and the attacks the paper's assumptions rule out.

use erasmus::core::{
    AttestationVerdict, CollectionRequest, DeviceId, DeviceKey, Malware, MalwareBehavior,
    Measurement, MeasurementVerdict, OnDemandRequest, Prover, ProverConfig, TamperStrategy,
    Verifier,
};
use erasmus::crypto::{MacAlgorithm, MacTag};
use erasmus::hw::DeviceProfile;
use erasmus::sim::{SimDuration, SimTime};
use proptest::prelude::*;

const T_M: SimDuration = SimDuration::from_secs(10);

fn provision(seed: u64) -> (Prover, Verifier, DeviceKey) {
    let key = DeviceKey::derive(b"security properties", seed);
    let config = ProverConfig::builder()
        .measurement_interval(T_M)
        .buffer_slots(32)
        .build()
        .expect("valid config");
    let prover = Prover::new(
        DeviceId::new(seed),
        DeviceProfile::msp430_8mhz(2 * 1024),
        key.clone(),
        config,
    )
    .expect("provisioning");
    let mut verifier = Verifier::new(key.clone(), MacAlgorithm::HmacSha256);
    verifier.learn_reference_image(prover.mcu().app_memory());
    verifier.set_expected_interval(T_M);
    (prover, verifier, key)
}

#[test]
fn malware_cannot_read_the_device_key_region() {
    use erasmus::hw::{AccessKind, RegionKind, Subject};
    let (prover, _, _) = provision(1);
    // The rule table the device enforces: application code (and therefore any
    // malware running as the application) has no access to K.
    let mpu = prover.mcu().mpu();
    for access in [AccessKind::Read, AccessKind::Write, AccessKind::Execute] {
        assert!(
            !mpu.is_allowed(Subject::Application, RegionKind::Key, access),
            "{access:?} on the key region must be denied to the application"
        );
    }
}

#[test]
fn measurements_survive_collection_replay_and_are_bound_to_the_device_key() {
    let (mut prover, mut verifier, _) = provision(2);
    prover
        .run_until(SimTime::from_secs(100))
        .expect("measurements");
    let response =
        prover.handle_collection(&CollectionRequest::latest(10), SimTime::from_secs(100));

    // A verifier for a *different* device (different key) rejects the whole
    // history as forged.
    let other_key = DeviceKey::derive(b"security properties", 3);
    let mut other_verifier = Verifier::new(other_key, MacAlgorithm::HmacSha256);
    let report = other_verifier
        .verify_collection(&response, SimTime::from_secs(100))
        .expect("report");
    assert_eq!(report.verdict(), AttestationVerdict::TamperingDetected);
    assert!(report
        .measurements()
        .iter()
        .all(|vm| vm.verdict == MeasurementVerdict::Forged));

    // The right verifier accepts it.
    assert!(verifier
        .verify_collection(&response, SimTime::from_secs(100))
        .expect("report")
        .all_valid());
}

#[test]
fn physical_clock_rollback_enables_the_attack_the_rroc_prevents() {
    // Section 3.4: if the clock could be rolled back, malware could discard
    // the incriminating measurement and have a clean one recorded for the
    // same nominal instant. The RROC makes this impossible without physical
    // access; the simulation exposes a physical-attack hook to demonstrate
    // exactly what goes wrong.
    // Note the paper's caveat: the attack additionally assumes no collection
    // takes place while the malware is resident — so no baseline collection
    // happens here before the infection.
    let (mut prover, mut verifier, _) = provision(4);
    prover
        .run_until(SimTime::from_secs(20))
        .expect("measurements");

    // Malware arrives, is measured at t = 30 (incriminating), then rolls the
    // clock back, discards the evidence and waits for a "clean" re-measurement
    // of the same slot.
    let mut malware = Malware::new(
        MalwareBehavior::Mobile {
            dwell: SimDuration::from_secs(8),
        },
        TamperStrategy::DeleteIncriminating,
    );
    malware
        .infect(&mut prover, SimTime::from_secs(25))
        .expect("infect");
    prover
        .run_until(SimTime::from_secs(30))
        .expect("incriminating measurement");
    malware
        .depart(&mut prover, SimTime::from_secs(33))
        .expect("depart");

    // Physical attack: roll the clock back before t = 30 and re-measure.
    prover
        .mcu_mut()
        .rroc_mut_for_attack()
        .physical_rollback(SimTime::from_secs(29));
    prover
        .self_measure(SimTime::from_secs(30))
        .expect("clean re-measurement");
    prover.run_until(SimTime::from_secs(60)).expect("catch up");

    let response = prover.handle_collection(&CollectionRequest::latest(6), SimTime::from_secs(60));
    let report = verifier
        .verify_collection(&response, SimTime::from_secs(60))
        .expect("report");
    // With the clock rolled back the forged timeline looks complete and
    // healthy: the verifier is fooled. This is exactly why the RROC (which
    // cannot be rolled back by software) is part of the architecture.
    assert!(
        report.all_valid(),
        "demonstrates the attack the RROC requirement blocks: {report}"
    );
}

#[test]
fn without_clock_rollback_the_same_malware_is_caught() {
    let (mut prover, mut verifier, _) = provision(5);
    prover
        .run_until(SimTime::from_secs(20))
        .expect("measurements");
    // The verifier has already collected once, so it knows how many
    // measurements to expect per interval from here on.
    let baseline = prover.handle_collection(&CollectionRequest::latest(2), SimTime::from_secs(20));
    verifier
        .verify_collection(&baseline, SimTime::from_secs(20))
        .expect("baseline");
    let mut malware = Malware::new(
        MalwareBehavior::Mobile {
            dwell: SimDuration::from_secs(8),
        },
        TamperStrategy::DeleteIncriminating,
    );
    malware
        .infect(&mut prover, SimTime::from_secs(25))
        .expect("infect");
    prover
        .run_until(SimTime::from_secs(30))
        .expect("incriminating measurement");
    malware
        .depart(&mut prover, SimTime::from_secs(33))
        .expect("depart");
    prover.run_until(SimTime::from_secs(60)).expect("catch up");

    let response = prover.handle_collection(&CollectionRequest::latest(6), SimTime::from_secs(60));
    let report = verifier
        .verify_collection(&response, SimTime::from_secs(60))
        .expect("report");
    // The deleted slot shows up as a gap: tampering detected.
    assert_eq!(report.verdict(), AttestationVerdict::TamperingDetected);
    assert!(report.missing() >= 1);
}

#[test]
fn on_demand_request_forgery_and_replay_are_rejected() {
    let (mut prover, mut verifier, key) = provision(6);
    prover
        .run_until(SimTime::from_secs(100))
        .expect("measurements");

    // Forged request under a guessed key.
    let forged = OnDemandRequest::new(
        DeviceKey::derive(b"attacker", 0).as_bytes(),
        MacAlgorithm::HmacSha256,
        SimTime::from_secs(101),
        4,
    );
    assert!(prover
        .handle_on_demand(&forged, SimTime::from_secs(101))
        .is_err());

    // Legitimate request works once…
    let request = verifier.make_on_demand_request(4, SimTime::from_secs(102));
    assert!(request.verify(key.as_bytes(), MacAlgorithm::HmacSha256));
    prover
        .handle_on_demand(&request, SimTime::from_secs(102))
        .expect("accepted");
    // …and replaying it later is rejected (anti-DoS/replay, SMART+ rule).
    assert!(prover
        .handle_on_demand(&request, SimTime::from_secs(140))
        .is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No matter what bytes malware writes into the measurement store, it
    /// cannot fabricate evidence that verifies: a tampered entry is either
    /// flagged as forged or (if it deleted things) as missing.
    #[test]
    fn arbitrary_store_tampering_is_always_detected(
        slot in 0usize..8,
        timestamp_secs in 0u64..200,
        digest in proptest::collection::vec(any::<u8>(), 32),
        tag in proptest::collection::vec(any::<u8>(), 32),
    ) {
        let (mut prover, mut verifier, _) = provision(7);
        prover.run_until(SimTime::from_secs(80)).expect("measurements");
        // Baseline collection so gap detection is armed.
        let baseline = prover.handle_collection(&CollectionRequest::latest(8), SimTime::from_secs(80));
        verifier.verify_collection(&baseline, SimTime::from_secs(80)).expect("baseline");

        prover.run_until(SimTime::from_secs(160)).expect("measurements");
        let mut forged_digest = [0u8; 32];
        forged_digest.copy_from_slice(&digest);
        let forged = Measurement::from_parts(
            SimTime::from_secs(timestamp_secs),
            forged_digest,
            MacTag::new(tag),
        );
        let target_slot = slot % prover.buffer().capacity();
        prover.buffer_mut().tamper_replace(target_slot, forged);

        // The verifier asks for the full buffer, so the mangled entry is part
        // of the response no matter which slot it landed in.
        let response = prover.handle_collection(&CollectionRequest::all(), SimTime::from_secs(160));
        let report = verifier.verify_collection(&response, SimTime::from_secs(160)).expect("report");
        prop_assert_eq!(report.verdict(), AttestationVerdict::TamperingDetected);
    }

    /// Whatever the malware payload and wherever it lands in memory, a
    /// measurement taken while it is resident flags the device as
    /// compromised.
    #[test]
    fn any_resident_payload_is_visible_to_the_next_measurement(
        payload in proptest::collection::vec(1u8..=255, 1..64),
        offset in 0usize..1024,
    ) {
        let (mut prover, mut verifier, _) = provision(8);
        prover.run_until(SimTime::from_secs(20)).expect("measurements");
        let offset = offset.min(prover.mcu().app_memory_len() - payload.len());
        prover.mcu_mut().write_app_memory(offset, &payload).expect("infection");
        prover.run_until(SimTime::from_secs(40)).expect("measurements");

        let response = prover.handle_collection(&CollectionRequest::latest(4), SimTime::from_secs(40));
        let report = verifier.verify_collection(&response, SimTime::from_secs(40)).expect("report");
        prop_assert_eq!(report.verdict(), AttestationVerdict::CompromiseDetected);
    }
}
