//! End-to-end integration tests spanning the hardware substrate, the core
//! protocol engines and the verifier.

use erasmus::core::{
    AttestationVerdict, CollectionRequest, DeviceId, DeviceKey, MeasurementVerdict, Prover,
    ProverConfig, ScheduleKind, Verifier,
};
use erasmus::crypto::MacAlgorithm;
use erasmus::hw::{DeviceProfile, SecurityArchitecture};
use erasmus::sim::{SimDuration, SimTime};

fn provision(
    profile: DeviceProfile,
    alg: MacAlgorithm,
    t_m: SimDuration,
    slots: usize,
) -> (Prover, Verifier) {
    let key = DeviceKey::derive(b"end-to-end master seed", 99);
    let config = ProverConfig::builder()
        .mac_algorithm(alg)
        .measurement_interval(t_m)
        .buffer_slots(slots)
        .build()
        .expect("valid config");
    let prover =
        Prover::new(DeviceId::new(99), profile, key.clone(), config).expect("provisioning");
    let mut verifier = Verifier::new(key, alg);
    verifier.learn_reference_image(prover.mcu().app_memory());
    verifier.set_expected_interval(t_m);
    (prover, verifier)
}

#[test]
fn full_lifecycle_on_both_architectures_and_all_macs() {
    for profile in [
        DeviceProfile::msp430_8mhz(4 * 1024),
        DeviceProfile::imx6_sabre_lite(64 * 1024),
    ] {
        for alg in MacAlgorithm::ALL {
            let (mut prover, mut verifier) =
                provision(profile.clone(), alg, SimDuration::from_secs(30), 8);
            prover
                .run_until(SimTime::from_secs(240))
                .expect("measurements");
            assert_eq!(prover.measurements_taken(), 8);

            let response =
                prover.handle_collection(&CollectionRequest::latest(8), SimTime::from_secs(240));
            let report = verifier
                .verify_collection(&response, SimTime::from_secs(240))
                .expect("report");
            assert!(
                report.all_valid(),
                "{alg} on {}: {report}",
                profile.architecture()
            );
            assert_eq!(report.measurements().len(), 8);
        }
    }
}

#[test]
fn repeated_collections_cover_the_whole_history() {
    let (mut prover, mut verifier) = provision(
        DeviceProfile::msp430_8mhz(2 * 1024),
        MacAlgorithm::HmacSha256,
        SimDuration::from_secs(10),
        8,
    );
    // Collect every 60 s for 10 minutes; every collection must be healthy and
    // must contain exactly the 6 new measurements.
    for round in 1..=10u64 {
        let now = SimTime::from_secs(round * 60);
        prover.run_until(now).expect("measurements");
        let response = prover.handle_collection(&CollectionRequest::latest(6), now);
        let report = verifier.verify_collection(&response, now).expect("report");
        assert_eq!(
            report.verdict(),
            AttestationVerdict::AllHealthy,
            "round {round}"
        );
        assert_eq!(report.missing(), 0, "round {round}");
        assert_eq!(report.measurements().len(), 6);
    }
    assert_eq!(prover.measurements_taken(), 60);
}

#[test]
fn undersized_buffer_loses_history_and_the_verifier_notices() {
    // Buffer of 4 slots but a collection interval of 8·T_M: measurements get
    // overwritten before they are collected, which the verifier reports as a
    // gap (the deployment guidance T_C ≤ n·T_M is violated).
    let (mut prover, mut verifier) = provision(
        DeviceProfile::msp430_8mhz(1024),
        MacAlgorithm::HmacSha256,
        SimDuration::from_secs(10),
        4,
    );
    // Establish a baseline collection so gap detection has a reference point.
    prover
        .run_until(SimTime::from_secs(40))
        .expect("measurements");
    let response = prover.handle_collection(&CollectionRequest::latest(4), SimTime::from_secs(40));
    verifier
        .verify_collection(&response, SimTime::from_secs(40))
        .expect("baseline");

    prover
        .run_until(SimTime::from_secs(120))
        .expect("measurements");
    assert!(prover.buffer().overwrites() > 0);
    let response = prover.handle_collection(&CollectionRequest::latest(8), SimTime::from_secs(120));
    let report = verifier
        .verify_collection(&response, SimTime::from_secs(120))
        .expect("report");
    assert_eq!(report.verdict(), AttestationVerdict::TamperingDetected);
    assert!(report.missing() >= 4);
}

#[test]
fn erasmus_od_provides_maximal_freshness_between_scheduled_measurements() {
    let (mut prover, mut verifier) = provision(
        DeviceProfile::imx6_sabre_lite(64 * 1024),
        MacAlgorithm::KeyedBlake2s,
        SimDuration::from_secs(60),
        8,
    );
    prover
        .run_until(SimTime::from_secs(300))
        .expect("measurements");

    // Plain ERASMUS collection between measurements: freshness up to T_M.
    let response = prover.handle_collection(&CollectionRequest::latest(3), SimTime::from_secs(330));
    let report = verifier
        .verify_collection(&response, SimTime::from_secs(330))
        .expect("report");
    assert_eq!(report.freshness(), SimDuration::from_secs(30));

    // ERASMUS+OD at the same instant: the fresh measurement has zero age.
    let request = verifier.make_on_demand_request(3, SimTime::from_secs(331));
    let od_response = prover
        .handle_on_demand(&request, SimTime::from_secs(331))
        .expect("request accepted");
    let od_report = verifier
        .verify_on_demand(&request, &od_response, SimTime::from_secs(331))
        .expect("report");
    assert_eq!(od_report.freshness(), SimDuration::ZERO);
    assert!(od_report.all_valid());
    // And it costs the prover roughly the full measurement time (Table 2).
    assert!(od_response.prover_time > response.prover_time * 100);
}

#[test]
fn infection_between_collections_is_attributed_to_the_right_window() {
    let (mut prover, mut verifier) = provision(
        DeviceProfile::msp430_8mhz(2 * 1024),
        MacAlgorithm::HmacSha256,
        SimDuration::from_secs(10),
        16,
    );
    prover
        .run_until(SimTime::from_secs(60))
        .expect("measurements");
    let response = prover.handle_collection(&CollectionRequest::latest(6), SimTime::from_secs(60));
    assert!(verifier
        .verify_collection(&response, SimTime::from_secs(60))
        .expect("clean collection")
        .all_valid());

    // Persistent compromise at t = 73 s.
    prover
        .run_until(SimTime::from_secs(73))
        .expect("measurements");
    prover
        .mcu_mut()
        .write_app_memory(128, b"implant")
        .expect("infection");
    prover
        .run_until(SimTime::from_secs(120))
        .expect("measurements");

    let response = prover.handle_collection(&CollectionRequest::latest(6), SimTime::from_secs(120));
    let report = verifier
        .verify_collection(&response, SimTime::from_secs(120))
        .expect("report");
    assert_eq!(report.verdict(), AttestationVerdict::CompromiseDetected);
    // Measurements at 70 are healthy; 80..120 show the implant.
    let healthy: Vec<u64> = report
        .with_verdict(MeasurementVerdict::Healthy)
        .map(|vm| vm.measurement.timestamp().as_secs_f64() as u64)
        .collect();
    let compromised: Vec<u64> = report
        .with_verdict(MeasurementVerdict::Compromised)
        .map(|vm| vm.measurement.timestamp().as_secs_f64() as u64)
        .collect();
    assert_eq!(healthy, vec![70]);
    assert_eq!(compromised, vec![120, 110, 100, 90, 80]);
}

#[test]
fn irregular_schedule_keeps_verification_working() {
    let key = DeviceKey::derive(b"irregular", 1);
    let config = ProverConfig::builder()
        .measurement_interval(SimDuration::from_secs(10))
        .buffer_slots(64)
        .schedule(ScheduleKind::Irregular {
            lower: SimDuration::from_secs(5),
            upper: SimDuration::from_secs(15),
        })
        .build()
        .expect("valid config");
    let mut prover = Prover::new(
        DeviceId::new(5),
        DeviceProfile::msp430_8mhz(1024),
        key.clone(),
        config,
    )
    .expect("provisioning");
    let mut verifier = Verifier::new(key, MacAlgorithm::HmacSha256);
    verifier.learn_reference_image(prover.mcu().app_memory());

    prover
        .run_until(SimTime::from_secs(300))
        .expect("measurements");
    let response =
        prover.handle_collection(&CollectionRequest::latest(64), SimTime::from_secs(300));
    let report = verifier
        .verify_collection(&response, SimTime::from_secs(300))
        .expect("report");
    assert!(report.all_valid());
    // Somewhere between 20 and 60 measurements fit in 300 s with bounds [5, 15).
    assert!(report.measurements().len() >= 20 && report.measurements().len() <= 60);
}

#[test]
fn profiles_expose_expected_architectures() {
    assert_eq!(
        DeviceProfile::msp430_8mhz(1024).architecture(),
        SecurityArchitecture::SmartPlus
    );
    assert_eq!(
        DeviceProfile::imx6_sabre_lite(1024).architecture(),
        SecurityArchitecture::Hydra
    );
}
