//! Workspace smoke test: the `erasmus::prelude` quickstart path promised by
//! the facade crate's doc-comment (measure → collect → verify →
//! `report.all_valid()`) must keep working verbatim. If this test fails, the
//! README/crate-root example has rotted.

use erasmus::prelude::*;

#[test]
fn prelude_quickstart_path_measure_collect_verify() -> Result<(), erasmus::core::Error> {
    // A low-end prover that self-measures every 10 simulated seconds and
    // keeps the last 16 measurements in its rolling buffer.
    let profile = DeviceProfile::msp430_8mhz(10 * 1024);
    let config = ProverConfig::builder()
        .mac_algorithm(MacAlgorithm::HmacSha256)
        .measurement_interval(SimDuration::from_secs(10))
        .buffer_slots(16)
        .build()?;
    let key = DeviceKey::from_bytes([0x42; 32]);
    let mut prover = Prover::new(DeviceId::new(1), profile, key.clone(), config)?;
    let mut verifier = Verifier::new(key, MacAlgorithm::HmacSha256);

    // Let the device run for a minute, then collect and verify its history.
    let mut clock = SimClock::new();
    for _ in 0..6 {
        clock.advance(SimDuration::from_secs(10));
        prover.self_measure(clock.now())?;
    }
    let response = prover.handle_collection(&CollectionRequest::latest(4), clock.now());
    let report = verifier.verify_collection(&response, clock.now())?;
    assert!(report.all_valid());
    assert_eq!(report.measurements().len(), 4);
    Ok(())
}

#[test]
fn prelude_exposes_the_documented_surface() {
    // Compile-time check that the prelude keeps re-exporting the types the
    // documentation tells users to reach for.
    fn assert_exists<T>() {}
    assert_exists::<AttestationVerdict>();
    assert_exists::<CollectionResponse>();
    assert_exists::<Measurement>();
    assert_exists::<MeasurementBuffer>();
    assert_exists::<QoaParams>();
    assert_exists::<SecurityArchitecture>();
    assert_exists::<Sha256>();
    assert_exists::<SimTime>();
}
