//! QoA integration tests: the analytical formulas of Section 3.1 against the
//! discrete-event scenario runner, and the Figure 1 timeline.

use erasmus::core::{InfectionSpec, QoaParams, Scenario, TamperStrategy};
use erasmus::sim::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

#[test]
fn figure1_timeline_is_reproduced() {
    let outcome = Scenario::builder()
        .measurement_interval(SimDuration::from_secs(10))
        .collection_interval(SimDuration::from_secs(60))
        .duration(SimDuration::from_secs(300))
        .infection(InfectionSpec::mobile(
            SimTime::from_secs(12),
            SimDuration::from_secs(3),
        ))
        .infection(InfectionSpec::persistent(SimTime::from_secs(95)))
        .run()
        .expect("scenario runs");

    // Infection 1 (mobile, between measurements): undetected.
    assert!(!outcome.infections[0].detected);
    // Infection 2 (persistent): measured at t = 100, collected at t = 120.
    assert!(outcome.infections[1].detected);
    assert_eq!(
        outcome.infections[1].detected_at,
        Some(SimTime::from_secs(120))
    );

    // The timeline contains the expected event kinds.
    assert!(outcome.trace.of_kind("infection").count() == 2);
    assert!(outcome.trace.of_kind("departure").count() == 1);
    assert!(outcome.trace.of_kind("collection").count() >= 4);
    assert!(outcome.trace.of_kind("measurement").count() >= 29);
}

#[test]
fn detection_latency_is_bounded_by_tm_plus_tc_for_persistent_malware() {
    let t_m = SimDuration::from_secs(10);
    let t_c = SimDuration::from_secs(50);
    let qoa = QoaParams::new(t_m, t_c).expect("valid params");
    let bound = qoa.worst_case_detection_delay();

    let mut rng = SimRng::seed_from(31);
    for _ in 0..10 {
        let start = SimTime::ZERO
            + rng.gen_duration(SimDuration::from_secs(60), SimDuration::from_secs(150));
        let outcome = Scenario::builder()
            .measurement_interval(t_m)
            .collection_interval(t_c)
            .duration(SimDuration::from_secs(400))
            .infection(InfectionSpec::persistent(start))
            .run()
            .expect("scenario runs");
        let infection = &outcome.infections[0];
        assert!(
            infection.detected,
            "persistent malware starting at {start} must be detected"
        );
        let latency = infection.detection_latency().expect("latency");
        assert!(
            latency <= bound,
            "latency {latency} exceeds the worst-case bound {bound}"
        );
    }
}

#[test]
fn short_dwell_malware_is_missed_long_dwell_is_caught() {
    // Dwell much shorter than T_M and placed between measurement instants:
    // escapes. Dwell longer than T_M: always caught.
    let base = Scenario::builder()
        .measurement_interval(SimDuration::from_secs(10))
        .collection_interval(SimDuration::from_secs(60))
        .duration(SimDuration::from_secs(240));

    let escaped = base
        .clone()
        .infection(InfectionSpec::mobile(
            SimTime::from_secs(71),
            SimDuration::from_secs(4),
        ))
        .run()
        .expect("scenario runs");
    assert!(!escaped.infections[0].detected);

    let caught = base
        .infection(InfectionSpec::mobile(
            SimTime::from_secs(71),
            SimDuration::from_secs(12),
        ))
        .run()
        .expect("scenario runs");
    assert!(caught.infections[0].detected);
}

#[test]
fn qoa_buffer_sizing_rule_matches_scenario_behaviour() {
    let t_m = SimDuration::from_secs(10);
    let t_c = SimDuration::from_secs(80);
    let qoa = QoaParams::new(t_m, t_c).expect("valid params");
    // The rule says 8 slots are enough; 4 are not.
    assert_eq!(qoa.required_buffer_slots(), 8);
    assert!(!qoa.loses_measurements_with(8));
    assert!(qoa.loses_measurements_with(4));

    // A clean scenario with enough slots raises no alarm…
    let ok = Scenario::builder()
        .measurement_interval(t_m)
        .collection_interval(t_c)
        .buffer_slots(8)
        .history_per_collection(8)
        .duration(SimDuration::from_secs(400))
        .run()
        .expect("scenario runs");
    assert_eq!(ok.alarms, 0);

    // …while an undersized buffer loses history, which surfaces as alarms
    // even though no malware is present (a deployment error, not an attack).
    let lossy = Scenario::builder()
        .measurement_interval(t_m)
        .collection_interval(t_c)
        .buffer_slots(4)
        .history_per_collection(8)
        .duration(SimDuration::from_secs(400))
        .run()
        .expect("scenario runs");
    assert!(lossy.alarms > 0);
}

#[test]
fn buffer_wiping_malware_is_always_detected_even_with_tiny_dwell() {
    // Hit-and-run malware that also wipes the store: the dwell is too short
    // to be measured, but the wipe itself is self-incriminating.
    let outcome = Scenario::builder()
        .measurement_interval(SimDuration::from_secs(10))
        .collection_interval(SimDuration::from_secs(60))
        .duration(SimDuration::from_secs(240))
        .infection(
            InfectionSpec::mobile(SimTime::from_secs(75), SimDuration::from_secs(2))
                .with_tamper(TamperStrategy::ClearBuffer),
        )
        .run()
        .expect("scenario runs");
    assert!(outcome.infections[0].detected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulated detection outcome of a single mobile infection is always
    /// consistent with the analytical model: malware that covers a
    /// measurement instant is detected, malware that misses all of them is
    /// not (when it leaves no other trace).
    #[test]
    fn simulated_detection_matches_measurement_coverage(
        start_secs in 65u64..175,
        dwell_secs in 1u64..25,
    ) {
        let t_m = 10u64;
        let outcome = Scenario::builder()
            .measurement_interval(SimDuration::from_secs(t_m))
            .collection_interval(SimDuration::from_secs(60))
            .duration(SimDuration::from_secs(300))
            .infection(InfectionSpec::mobile(
                SimTime::from_secs(start_secs),
                SimDuration::from_secs(dwell_secs),
            ))
            .run()
            .expect("scenario runs");

        // Does the residency window contain a measurement instant? The
        // boundaries follow the event ordering of the scenario engine: any
        // measurement due exactly when the infection *arrives* is taken just
        // before the payload lands (clean), while one due exactly when the
        // malware *departs* is taken just before memory is restored
        // (incriminating). So detection requires a measurement instant in
        // the half-open window (start, start + dwell].
        let first_measurement_strictly_after_start = (start_secs / t_m + 1) * t_m;
        let covers_a_measurement =
            first_measurement_strictly_after_start <= start_secs + dwell_secs;
        prop_assert_eq!(
            outcome.infections[0].detected,
            covers_a_measurement,
            "start {} dwell {}",
            start_secs,
            dwell_secs
        );
    }

    /// Freshness reported at collection time never exceeds T_M for a healthy
    /// regular schedule.
    #[test]
    fn freshness_is_bounded_by_tm(t_m_secs in 5u64..30) {
        let qoa = QoaParams::new(
            SimDuration::from_secs(t_m_secs),
            SimDuration::from_secs(t_m_secs * 6),
        ).expect("valid params");
        prop_assert_eq!(qoa.worst_case_freshness(), SimDuration::from_secs(t_m_secs));
        prop_assert!(qoa.expected_freshness() <= qoa.worst_case_freshness());
        prop_assert_eq!(qoa.recommended_history(), 6);
    }
}
