//! Time-sensitive devices: irregular and lenient measurement schedules
//! (Sections 3.5 and 5).
//!
//! * The **irregular** schedule draws each measurement interval from a
//!   CSPRNG seeded with the device key, so schedule-aware mobile malware
//!   cannot time its visits around the measurements.
//! * The **lenient** schedule lets a time-critical task defer a pending
//!   measurement to the end of a `w × T_M` window instead of being
//!   interrupted for seconds.
//!
//! Run with: `cargo run --example time_sensitive_scheduling`

use erasmus::core::{DeviceId, DeviceKey, Prover, ProverConfig, ScheduleKind};
use erasmus::hw::DeviceProfile;
use erasmus::sim::{SimDuration, SimTime};

fn main() -> Result<(), erasmus::core::Error> {
    let t_m = SimDuration::from_secs(10);

    // --- irregular schedule -------------------------------------------------
    let irregular = ProverConfig::builder()
        .measurement_interval(t_m)
        .buffer_slots(64)
        .schedule(ScheduleKind::Irregular {
            lower: SimDuration::from_secs(5),
            upper: SimDuration::from_secs(15),
        })
        .build()?;
    let mut prover = Prover::new(
        DeviceId::new(1),
        DeviceProfile::msp430_8mhz(4 * 1024),
        DeviceKey::from_bytes([7; 32]),
        irregular,
    )?;
    let outcomes = prover.run_until(SimTime::from_secs(120))?;
    println!("=== irregular schedule (bounds 5 s .. 15 s) ===");
    let mut previous = SimTime::ZERO;
    for outcome in &outcomes {
        let gap = outcome
            .measurement
            .timestamp()
            .saturating_duration_since(previous);
        println!(
            "measurement at {:>7.1} s (gap {})",
            outcome.measurement.timestamp().as_secs_f64(),
            gap
        );
        previous = outcome.measurement.timestamp();
    }
    println!("malware cannot predict these instants without the device key\n");

    // --- lenient schedule -----------------------------------------------------
    let lenient = ProverConfig::builder()
        .measurement_interval(t_m)
        .buffer_slots(64)
        .schedule(ScheduleKind::Lenient { window_factor: 3.0 })
        .build()?;
    let mut prover = Prover::new(
        DeviceId::new(2),
        DeviceProfile::msp430_8mhz(4 * 1024),
        DeviceKey::from_bytes([8; 32]),
        lenient,
    )?;

    println!("=== lenient schedule (w = 3) ===");
    // The application runs a time-critical control loop that must not be
    // interrupted around t = 10 s and t = 20 s; both nominal measurements are
    // deferred to the end of their windows.
    for _ in 0..2 {
        let due = prover.next_measurement_due();
        match prover.defer_measurement(due) {
            Some(deferred) => println!(
                "measurement nominally due at {:.0} s deferred to {:.0} s",
                due.as_secs_f64(),
                deferred.as_secs_f64()
            ),
            None => println!("no deferral available at {:.0} s", due.as_secs_f64()),
        }
        let due = prover.next_measurement_due();
        prover.run_until(due)?;
        println!("measurement actually taken at {:.0} s", due.as_secs_f64());
    }
    println!(
        "deferred {} measurements, took {} in total",
        prover.aborted_measurements(),
        prover.measurements_taken()
    );

    assert!(prover.aborted_measurements() >= 1);
    assert!(prover.measurements_taken() >= 2);
    Ok(())
}
