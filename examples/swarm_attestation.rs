//! Swarm attestation under mobility (Section 6).
//!
//! A fleet of 24 devices self-measures on its own schedule. The verifier,
//! attached to device 0, runs two collective protocols:
//!
//! * an ERASMUS collection (LISA-α style relay of stored measurements) —
//!   finishes in tens of milliseconds, so even a highly mobile swarm is
//!   covered almost completely;
//! * an on-demand (SEDA-style) round — every device computes a fresh
//!   measurement, the topology must hold still for seconds, and mobility
//!   eats into coverage.
//!
//! Run with: `cargo run --example swarm_attestation`

use erasmus::sim::{SimDuration, SimRng, SimTime};
use erasmus::swarm::swarm::mobility_for_experiment;
use erasmus::swarm::{MobilityModel, QosaLevel, StaggeredSchedule, Swarm, SwarmConfig, Topology};

fn main() -> Result<(), erasmus::swarm::SwarmError> {
    let mut rng = SimRng::seed_from(2024);
    let topology = Topology::random_connected(24, 3.0, &mut rng);
    let mut swarm = Swarm::new(SwarmConfig::default(), topology, b"example fleet")?;

    // Let the fleet run unattended; every device self-measures on its own
    // T_M = 10 s schedule. Half-way through, one device gets compromised —
    // the subsequent self-measurements capture the infected memory.
    swarm.run_until(SimTime::from_secs(30))?;
    swarm.infect_device(17, SimTime::from_secs(35))?;
    swarm.run_until(SimTime::from_secs(60))?;

    // --- ERASMUS swarm collection -----------------------------------------
    let collection = swarm.erasmus_collection(0, SimTime::from_secs(60), 6)?;
    println!("=== ERASMUS swarm collection ===");
    println!("round duration: {}", collection.duration);
    println!("coverage: {:.0}%", collection.coverage() * 100.0);
    println!(
        "binary QoSA: {}",
        collection.report.summary(QosaLevel::Binary)
    );
    println!(
        "list QoSA:   {}",
        collection.report.summary(QosaLevel::List)
    );

    // --- on-demand (SEDA-style) baseline under high mobility ---------------
    let model = MobilityModel::churn(SimDuration::from_millis(100), 0.6);
    let mut mobility = mobility_for_experiment(model, 7);
    let on_demand = swarm.on_demand_attestation(0, SimTime::from_secs(61), &mut mobility)?;
    println!("\n=== on-demand swarm round (high mobility) ===");
    println!("round duration: {}", on_demand.duration);
    println!("coverage: {:.0}%", on_demand.coverage() * 100.0);
    println!(
        "unreachable devices: {:?}",
        on_demand.unreachable.iter().collect::<Vec<_>>()
    );

    // --- availability: staggered measurement schedule ----------------------
    let schedule = StaggeredSchedule::new(swarm.len(), 6, SimDuration::from_secs(10));
    println!("\n=== staggered measurement schedule ===");
    println!(
        "at most {} of {} devices ({:.0}%) measure at the same instant",
        schedule.max_concurrent(),
        schedule.devices(),
        schedule.max_busy_fraction() * 100.0
    );
    println!(
        "device 0 first measures at {}, device 3 at {}",
        schedule.first_measurement(0),
        schedule.first_measurement(3)
    );

    assert!(collection.coverage() >= on_demand.coverage());
    assert_eq!(collection.report.unhealthy_devices(), vec![17]);
    Ok(())
}
