//! Quickstart: provision one ERASMUS prover, let it self-measure on a
//! schedule, then collect and verify its history.
//!
//! Run with: `cargo run --example quickstart`

use erasmus::prelude::*;
use erasmus_core::DeviceKey;

fn main() -> Result<(), erasmus::core::Error> {
    // 1. Provision a low-end (SMART+/MSP430-class) device with 10 KiB of
    //    measured memory. The key is shared with the verifier out of band.
    let key = DeviceKey::from_bytes([0x42; 32]);
    let profile = DeviceProfile::msp430_8mhz(10 * 1024);
    let config = ProverConfig::builder()
        .mac_algorithm(MacAlgorithm::HmacSha256)
        .measurement_interval(SimDuration::from_secs(60)) // T_M = 1 minute
        .buffer_slots(16) // n = 16 rolling slots
        .build()?;
    let mut prover = Prover::new(DeviceId::new(1), profile, key.clone(), config)?;

    // 2. The verifier holds the same key, knows the healthy software image
    //    and the measurement interval.
    let mut verifier = Verifier::new(key, MacAlgorithm::HmacSha256);
    verifier.learn_reference_image(prover.mcu().app_memory());
    verifier.set_expected_interval(SimDuration::from_secs(60));

    // 3. The device runs unattended for ten minutes, self-measuring every
    //    T_M. No verifier interaction happens during this phase.
    let mut clock = SimClock::new();
    clock.advance(SimDuration::from_secs(600));
    let taken = prover.run_until(clock.now())?;
    println!(
        "prover took {} self-measurements while unattended",
        taken.len()
    );
    println!(
        "total prover time spent measuring: {} (collection will cost almost nothing)",
        prover.total_busy_time()
    );

    // 4. The verifier shows up and collects the last 10 measurements — the
    //    collection phase involves no cryptography on the prover.
    let request = CollectionRequest::latest(10);
    let response = prover.handle_collection(&request, clock.now());
    println!(
        "collection served in {} of prover time ({} measurements, {} bytes)",
        response.prover_time,
        response.measurements.len(),
        response.payload_bytes()
    );

    // 5. Verify the history: every MAC is checked, gaps are detected, and
    //    the memory digests are compared against the known-good image.
    let report = verifier.verify_collection(&response, clock.now())?;
    println!("verdict: {}", report.verdict());
    println!("freshness of newest measurement: {}", report.freshness());
    for vm in report.measurements().iter().take(3) {
        println!("  {} -> {}", vm.measurement, vm.verdict);
    }
    assert!(report.all_valid());
    println!("device history is authentic and healthy");
    Ok(())
}
