//! Experiment definitions shared by the `repro` binary and the Criterion
//! benches.
//!
//! Every table and figure of the paper's evaluation has a function here that
//! produces its rows/series from the reproduction. The `repro` binary prints
//! them; the benches in `benches/` time the underlying operations; and
//! `EXPERIMENTS.md` records how the reproduced values compare with the
//! paper's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer_sizing;
pub mod fig1;
pub mod fleet;
pub mod hwcost;
pub mod protocol_figures;
pub mod qoa_sweep;
pub mod runtime;
pub mod scheduling;
pub mod swarm_mobility;
pub mod table1;
pub mod table2;

/// Formats a floating-point seconds value the way the paper's figures label
/// their axes.
pub fn fmt_seconds(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.3} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(0.0000005), "0.500 us");
        assert_eq!(fmt_seconds(0.0025), "2.500 ms");
        assert_eq!(fmt_seconds(7.0), "7.000 s");
    }
}
