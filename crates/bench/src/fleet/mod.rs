//! Fleet-scale throughput harness: how many self-measurements and
//! collection verifications per second the reproduction sustains on the
//! host.
//!
//! The paper's evaluation prices a *single* prover (Figures 6/8, Table 2);
//! the ROADMAP's north star is millions of unattended devices. This module
//! drives N provers through their measurement schedules and periodic
//! collections end to end — the same `Prover`/`Verifier` hot paths the
//! protocol tests use, with the precomputed [`erasmus_crypto::KeyedMac`]
//! schedules derived once per device — and reports wall-clock throughput.
//!
//! The fleet is partitioned into per-thread **shards** (the private `shard`
//! module): each
//! scoped `std::thread` worker owns its `(Prover, Verifier)` pairs outright
//! and drives them through its own [`erasmus_sim::Engine`] as one
//! event-driven timeline. Measurements fire at their staggered
//! [`erasmus_swarm::StaggeredSchedule`] instants (the Section 6 availability
//! argument); collection responses travel through a deterministic
//! [`erasmus_sim::NetworkModel`] (latency, jitter, loss — all drawn per device from the
//! run's seed); responses arriving at the same instant form one burst that
//! is serialized into framed batch buffers
//! ([`erasmus_core::encode_collection_batch`]'s wire format) and folded
//! into the shard's [`erasmus_core::VerifierHub`] straight off the bytes
//! via [`erasmus_core::VerifierHub::ingest_frame`] — or, with
//! [`FleetConfig::wire`] off, verified as in-memory structs; on-demand
//! requests (ERASMUS+OD, Figure 4) and device churn interleave with the
//! schedule on the same timeline. Because every random draw is keyed by the
//! *global* device index, totals are thread-count-invariant by
//! construction, lossy runs included — and bit-identical across the wire
//! and struct delivery paths.
//!
//! With `lanes` ≥ 4 each shard coalesces same-instant measurements —
//! devices sharing a stagger-group offset — into lane-interleaved hash jobs
//! ([`erasmus_crypto::Sha256xN`] via
//! [`erasmus_core::Measurement::compute_keyed_batch`]), falling back to the
//! scalar path for ragged remainders; totals stay bit-identical at every
//! lane width (see [`lanes`]).
//!
//! Injected faults ride the same deterministic draws: duplicated frames
//! are deduplicated by the hubs' per-flow sequence windows, reordered
//! deliveries pick up extra in-flight delay, corrupted frames hit the
//! strict decoder's and the MAC verifier's live rejection paths, and — with
//! [`FleetConfig::retries`] > 0 — every drop is retransmitted under an
//! exponential-backoff ARQ loop ([`erasmus_core::RetryPolicy`]). Scheduled
//! [`FleetConfig::hub_crashes`] serialize each shard hub to its wire-format
//! snapshot ([`erasmus_core::encode_hub_snapshot`]) and restore it
//! bit-identically mid-run.
//!
//! Per-device verifier state is governed by [`FleetConfig::history`]:
//! [`erasmus_core::HistoryMode::Ring`] (the `perfbench` default) caps every
//! device at a fixed-size retained window plus a rollup summary and a
//! PCR-style hash chain over the evicted entries, so the merged hub's
//! resident footprint
//! is O(devices × capacity) regardless of run length — the property the
//! million-prover run demonstrates. Lifetime totals are bit-identical to
//! unbounded retention whenever the capacity covers each device's
//! reordering window, and the perf-smoke CI job cross-checks exactly that.
//! After the merge an [`erasmus_swarm::AggregationTree`] folds every chain
//! head into one root digest ([`AggregationReport`]).
//!
//! Shard results are merged into one [`FleetReport`]; the per-thread
//! breakdown, the per-algorithm scalar-vs-lane speedup probe and the 1→N
//! scaling sweep (see [`scaling`]) are serialized by the `perfbench` binary
//! into `BENCH_fleet.json` (schema `erasmus-perfbench/v8`) so successive
//! PRs accumulate a perf trajectory.
//!
//! Each shard engine schedules on the calendar-queue backend by default
//! ([`erasmus_sim::Scheduler::Calendar`]); [`FleetConfig::scheduler`] can
//! pin the binary-heap oracle instead, and every total is bit-identical
//! between the two — the perf-smoke CI job cross-checks it on every push.

pub mod lanes;
pub mod reservoir;
pub mod scaling;
mod shard;

pub use lanes::LaneSpeedup;
pub use reservoir::{LatencyReservoir, RESERVOIR_CAP};
pub use shard::ShardReport;

use std::time::Duration;

use erasmus_core::{DeviceHistory, HistoryEntry, HistoryMode, VerifierHub};
use erasmus_crypto::MacAlgorithm;
use erasmus_sim::{NetworkConfig, QueueStats, Scheduler, SimDuration, SimRng, SimTime};
use erasmus_swarm::{digest_hex, AggregationTree, StaggeredSchedule};

use shard::Shard;

/// Seed used when none is given: any seed reproduces identical lossless
/// runs, but recording one keeps lossy runs replayable from the JSON alone.
pub const DEFAULT_SEED: u64 = 42;

/// Stream salt for the fleet-wide on-demand plan.
const ON_DEMAND_STREAM: u64 = 0x6f6e_6465_6d61_6e64;

/// Parameters of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of simulated prover devices.
    pub provers: usize,
    /// Scheduled self-measurements each prover takes per collection round.
    pub measurements_per_round: usize,
    /// Collection rounds: after each, every device's buffer is collected
    /// and (if the response survives the network) verified.
    pub rounds: usize,
    /// Application-memory size hashed by every measurement, in bytes.
    pub memory_bytes: usize,
    /// Phase groups for the staggered measurement schedule: devices are
    /// spread over this many offsets within `T_M`, so at most
    /// `⌈provers / stagger_groups⌉` devices measure at the same simulated
    /// instant (Section 6 availability). Clamped to at least 1.
    pub stagger_groups: usize,
    /// MAC construction provisioned on every device.
    pub algorithm: MacAlgorithm,
    /// Seed for every deterministic draw of the run (network fates, churn
    /// plan, on-demand targeting). Recorded in the JSON report.
    pub seed: u64,
    /// Link model between devices and the verifier side. The ideal default
    /// reproduces lossless, zero-latency behaviour bit-for-bit.
    pub network: NetworkConfig,
    /// Probability that a device leaves the fleet once mid-run and rejoins
    /// later (losing the measurements and collections in between).
    pub churn: f64,
    /// ARQ retransmission budget per collection response and per batch
    /// frame: a dropped or corrupted transmission is retried up to this
    /// many times with exponential backoff
    /// ([`erasmus_core::RetryPolicy`]). 0 disables retransmission.
    pub retries: u32,
    /// Scheduled verifier-hub crash/restart cycles per shard: at each, the
    /// hub state is serialized to its wire-format snapshot, dropped, and
    /// restored from the bytes alone — recovery must be bit-identical.
    pub hub_crashes: usize,
    /// Fleet-wide count of authenticated on-demand requests (ERASMUS+OD)
    /// injected at deterministic instants during the run.
    pub on_demand: usize,
    /// Upper bound on the lane width for batched measurement hashing: 1
    /// runs the scalar per-device path; ≥ 4 coalesces same-instant
    /// measurements into lane-interleaved hash jobs of the widest supported
    /// width not exceeding this value (see [`lanes::effective_width`]).
    /// Totals are bit-identical at every width.
    pub lanes: usize,
    /// Wire-native delivery (the default): shards serialize every
    /// same-instant burst of collection responses into framed batch buffers
    /// ([`erasmus_core::encode_collection_batch_into`]) and the verifier
    /// side decodes and verifies straight off the frames through
    /// [`erasmus_core::VerifierHub::ingest_frame`] — zero-copy, no
    /// per-report allocation. `false` keeps the legacy in-memory struct
    /// path; totals are bit-identical either way.
    pub wire: bool,
    /// Event-queue backend every shard engine schedules on. The calendar
    /// queue (default) is the O(1) rotating-wheel scheduler; the binary
    /// heap is retained as the bit-compatible oracle — every total is
    /// identical under either backend (`--scheduler heap` cross-checks it
    /// in CI).
    pub scheduler: Scheduler,
    /// Per-device verifier-history retention. [`HistoryMode::Unbounded`]
    /// (default) keeps every entry; [`HistoryMode::Ring`] caps resident
    /// state at O(capacity) per device, sealing evicted entries into the
    /// hash chain. Lifetime totals (`history_entries`, verdict counts) are
    /// mode-invariant whenever the capacity covers each device's in-flight
    /// reordering window — `--history ring` cross-checks it in CI.
    pub history: HistoryMode,
}

impl FleetConfig {
    /// A lossless, churn-free configuration with the given shape — the
    /// baseline every scenario knob perturbs.
    pub fn new(
        provers: usize,
        measurements_per_round: usize,
        rounds: usize,
        memory_bytes: usize,
        stagger_groups: usize,
        algorithm: MacAlgorithm,
    ) -> Self {
        Self {
            provers,
            measurements_per_round,
            rounds,
            memory_bytes,
            stagger_groups,
            algorithm,
            seed: DEFAULT_SEED,
            network: NetworkConfig::IDEAL,
            churn: 0.0,
            retries: 0,
            hub_crashes: 0,
            on_demand: 0,
            lanes: 1,
            wire: true,
            scheduler: Scheduler::Calendar,
            history: HistoryMode::Unbounded,
        }
    }

    /// CI-sized run: ≥ 1,000 provers but only a few schedule ticks, so the
    /// whole sweep finishes in seconds even on a busy runner.
    pub fn quick(algorithm: MacAlgorithm) -> Self {
        Self::new(1_000, 4, 2, 1024, 4, algorithm)
    }

    /// Default full-size run.
    pub fn full(algorithm: MacAlgorithm) -> Self {
        Self::new(4_096, 8, 4, 4 * 1024, 4, algorithm)
    }

    /// Total measurements the schedule will produce when every device stays
    /// online (churn removes some; on-demand requests add fresh ones).
    pub fn total_measurements(&self) -> u64 {
        (self.provers * self.measurements_per_round * self.rounds) as u64
    }

    /// Total scheduled collection attempts.
    pub fn total_collection_attempts(&self) -> u64 {
        (self.provers * self.rounds) as u64
    }

    /// The staggered schedule the run drives its provers with.
    pub fn schedule(&self) -> StaggeredSchedule {
        StaggeredSchedule::new(
            self.provers,
            self.stagger_groups.max(1),
            MEASUREMENT_INTERVAL,
        )
    }
}

/// The fleet-wide on-demand plan: `(global device, issue instant)` pairs,
/// sorted by time. Drawn from the run seed alone, before the fleet is
/// partitioned, so every shard (at any thread count) agrees on it.
pub(crate) fn on_demand_plan(config: &FleetConfig) -> Vec<(usize, SimTime)> {
    if config.on_demand == 0 || config.provers == 0 {
        return Vec::new();
    }
    let span = MEASUREMENT_INTERVAL * (config.measurements_per_round * config.rounds).max(1) as u64;
    let mut rng = SimRng::seed_from(config.seed ^ ON_DEMAND_STREAM);
    let mut plan: Vec<(usize, SimTime)> = (0..config.on_demand)
        .map(|_| {
            let device = rng.gen_range(0, config.provers as u64) as usize;
            let at = rng.gen_range(span.as_nanos() / 4, span.as_nanos());
            (device, SimTime::from_nanos(at))
        })
        .collect();
    plan.sort_by_key(|&(device, at)| (at, device));
    plan
}

/// Fan-out of the hierarchical aggregation tree built over the merged hub:
/// each sub-verifier folds up to this many children into one fixed-size
/// subtree aggregate (SANA/slimIoT style, Section 6 scale argument).
pub const AGGREGATION_FANOUT: usize = 64;

/// Summary of the [`erasmus_swarm::AggregationTree`] built over the merged
/// hub after a run: the root verifier's view of the whole fleet in one
/// fixed-size record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AggregationReport {
    /// Children per internal node.
    pub fanout: usize,
    /// Leaf aggregates — one per tracked device.
    pub leaves: usize,
    /// Total aggregate nodes across all levels, leaves included.
    pub nodes: usize,
    /// Levels in the tree, leaves included (0 for an empty fleet).
    pub depth: usize,
    /// Devices whose history carries no compromise verdict.
    pub healthy_devices: u64,
    /// Lifetime history entries summed up to the root — must equal
    /// `history_entries`.
    pub root_entries: u64,
    /// Hex-encoded root digest binding every per-device chain head
    /// (empty string for an empty fleet).
    pub root_digest: String,
}

impl AggregationReport {
    fn from_hub(hub: &VerifierHub) -> Self {
        let tree = AggregationTree::from_hub(hub, AGGREGATION_FANOUT);
        let stats = tree.stats();
        Self {
            fanout: stats.fanout,
            leaves: stats.leaves,
            nodes: stats.nodes,
            depth: stats.depth,
            healthy_devices: tree.root().map_or(0, |root| root.healthy_devices),
            root_entries: tree.root().map_or(0, |root| root.entries),
            root_digest: tree
                .root()
                .map_or_else(String::new, |root| digest_hex(&root.digest)),
        }
    }
}

/// The `"history"` label a [`HistoryMode`] serializes as.
pub fn history_mode_label(mode: HistoryMode) -> &'static str {
    match mode {
        HistoryMode::Unbounded => "unbounded",
        HistoryMode::Ring(_) => "ring",
    }
}

/// The `"ring_capacity"` a [`HistoryMode`] serializes as (0 = unbounded).
pub fn history_capacity(mode: HistoryMode) -> usize {
    match mode {
        HistoryMode::Unbounded => 0,
        HistoryMode::Ring(capacity) => capacity.max(1),
    }
}

/// Wall-clock throughput and scenario accounting of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The configuration that produced this report.
    pub config: FleetConfig,
    /// Worker threads (shards) the fleet was partitioned into.
    pub threads: usize,
    /// Self-measurements taken across the fleet (scheduled + on-demand).
    pub measurements_total: u64,
    /// Individual measurement MACs verified across all delivered reports.
    pub verifications_total: u64,
    /// Wall-clock time of the measurement work: the *slowest shard's*
    /// accumulated measurement time, since shards run concurrently
    /// (provisioning is excluded; key schedules are derived once).
    pub measure_wall: Duration,
    /// Wall-clock time of the collection/verification work, same
    /// slowest-shard convention.
    pub verify_wall: Duration,
    /// Aggregate *simulated* prover busy time, for cross-checking against
    /// the paper's cost model.
    pub simulated_busy: SimDuration,
    /// Whether the run stayed healthy: no forged or compromised
    /// measurement anywhere, no hub rejection — and, in a gap-free run (no
    /// loss, no churn), every delivered report fully `AllHealthy`.
    pub all_healthy: bool,
    /// Devices tracked by the merged verifier-side history hub.
    pub devices_tracked: usize,
    /// Distinct measurements recorded across all per-device histories
    /// (lifetime count — mode-invariant, evicted entries included).
    pub history_entries: u64,
    /// Entries resident in the per-device windows after the merge. Equals
    /// `history_entries` in unbounded mode; bounded by
    /// `devices_tracked × ring capacity` in ring mode.
    pub history_resident: u64,
    /// Entries evicted from bounded rings into their sealed hash chains.
    /// Conservation (checked by `ci/validate_perfbench.py`):
    /// `history_evictions + history_resident == history_entries`.
    pub history_evictions: u64,
    /// Arrivals discarded because they fell behind an already-sealed ring
    /// window. Always 0 in unbounded mode.
    pub history_stale_discards: u64,
    /// Device histories whose head digest re-verified as `chain` folded
    /// over the resident window — must equal `devices_tracked`.
    pub chains_verified: u64,
    /// Resident verifier state across the merged hub, in bytes: per-device
    /// fixed struct size plus the retained entries. In ring mode this is
    /// O(devices × capacity) regardless of run length — the bound the
    /// million-prover run demonstrates.
    pub resident_state_bytes: u64,
    /// Hierarchical swarm aggregation built over the merged hub.
    pub aggregation: AggregationReport,
    /// Collection reports folded into the hub across the whole run.
    pub collections_ingested: u64,
    /// Scheduled collection attempts across the fleet.
    pub collections_attempted: u64,
    /// Collection responses that reached the verifier side.
    pub collections_delivered: u64,
    /// Collection attempts lost to the network or to absent devices.
    pub collections_dropped: u64,
    /// Collect-hop retransmissions sent under the ARQ policy.
    pub collect_retransmits: u64,
    /// Responses lost for good after the retry budget ran out.
    pub exhausted_retries: u64,
    /// Collection attempts lost because the device was absent (churn);
    /// counted inside `collections_dropped`.
    pub churn_losses: u64,
    /// Retransmission timers that fired after the device had churned — the
    /// stale copy is discarded; counted inside `collections_dropped`.
    pub stale_retries: u64,
    /// Deliveries that drew a reorder fault (extra in-flight delay).
    pub reorders: u64,
    /// `retry_histogram[a]` = deliveries that took `a` retransmissions
    /// (length = retry budget + 1; element-wise sum over shards).
    pub retry_histogram: Vec<u64>,
    /// Frame-hop retransmissions sent under the ARQ policy.
    pub frame_retransmits: u64,
    /// Duplicate frame copies the network injected on the frame link.
    pub frame_duplicates: u64,
    /// Corrupted frame copies the strict decoder rejected live.
    pub corrupt_decode_drops: u64,
    /// Corrupted frame copies that decoded but failed MAC verification.
    pub corrupt_tamper_drops: u64,
    /// Frames lost for good after the retry budget ran out.
    pub frames_exhausted: u64,
    /// Response records carried by those exhausted frames.
    pub frame_lost_responses: u64,
    /// Duplicate frames the hubs' dedup windows dropped — must equal
    /// `frame_duplicates` (exactly-once delivery).
    pub hub_duplicates: u64,
    /// Hub crash/restart cycles survived via snapshot recovery.
    pub hub_crashes: u64,
    /// Total bytes of the recovery snapshots taken at those crashes.
    pub snapshot_bytes: u64,
    /// Delivery bursts folded into shard hubs via `ingest_batch`.
    pub hub_batches: u64,
    /// Largest single delivery burst.
    pub largest_batch: u64,
    /// Encoded collection batch frames ingested across all shards (wire
    /// delivery only; 0 on the struct path).
    pub wire_frames: u64,
    /// Total bytes of those frames, count headers included.
    pub wire_bytes: u64,
    /// Response records carried by the ingested frames.
    pub wire_responses: u64,
    /// Frame-decoded responses whose reports the hubs accepted. On a
    /// lossless wire run this equals `collections_ingested` — the validator
    /// cross-checks it.
    pub decoded_accepted: u64,
    /// Frames the strict decoder rejected. Always 0 for harness-encoded
    /// frames; the field exists so the JSON schema matches the fuzz
    /// harness's accounting.
    pub decode_rejects: u64,
    /// Wall-clock time the slowest shard spent serializing frames
    /// (excluded from `verify_wall`; the struct path has no encode leg).
    pub encode_wall: Duration,
    /// Wall-clock time of the slowest shard's frame-ingest spans (decode +
    /// verify + hub fold, included in `verify_wall`): the denominator of
    /// [`FleetReport::decode_mib_per_sec`].
    pub wire_ingest_wall: Duration,
    /// On-demand requests issued across the fleet.
    pub on_demand_attempted: u64,
    /// On-demand exchanges that completed end to end.
    pub on_demand_completed: u64,
    /// Median simulated end-to-end on-demand latency.
    pub on_demand_p50: SimDuration,
    /// 90th-percentile on-demand latency.
    pub on_demand_p90: SimDuration,
    /// 99th-percentile on-demand latency.
    pub on_demand_p99: SimDuration,
    /// Devices that left and rejoined during the run.
    pub devices_churned: u64,
    /// Multi-lane hash jobs executed across all shards (0 when `lanes` is
    /// 1 or no cohort filled a lane group).
    pub lane_jobs: u64,
    /// Measurements that fell back to the scalar path as ragged cohort
    /// remainders (fewer than 4 devices left after the lane groups);
    /// scalar catch-up drains outside the cohort path are not counted.
    pub lane_remainder: u64,
    /// Measurement events that went through the coalesced cohort path:
    /// every due device of a `MeasureCohort` firing counts once.
    pub events_scheduled: u64,
    /// `MeasureCohort` queue slots actually popped to deliver those
    /// measurements — the insertion-time coalescing means one slot per
    /// `(instant, cohort)` regardless of how many devices are due.
    pub singleton_events: u64,
    /// Queue slots *saved* by coalescing: measurement events that rode an
    /// already-scheduled cohort slot. Conservation invariant (checked by
    /// `ci/validate_perfbench.py`):
    /// `coalesced_events + singleton_events == events_scheduled`.
    pub coalesced_events: u64,
    /// High-water mark of live pooled event payloads (collection responses
    /// and on-demand exchanges) summed over shards. Bounded by in-flight
    /// traffic, not run length — the leak guard for long churn runs.
    pub event_pool_high_water: u64,
    /// Merged event-queue counters: pushes/pops/overflow summed over
    /// shards, `max_pending` the per-shard maximum, bucket geometry from
    /// the backend (0 for the heap).
    pub queue: QueueStats,
    /// Scalar-vs-lane digest throughput probe, attached by `perfbench`
    /// (`None` for plain `run_threaded` calls).
    pub lane_speedup: Option<LaneSpeedup>,
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<ShardReport>,
}

impl FleetReport {
    /// Measurements per wall-clock second.
    pub fn measurements_per_sec(&self) -> f64 {
        per_second(self.measurements_total, self.measure_wall)
    }

    /// Verified measurements per wall-clock second.
    pub fn verifications_per_sec(&self) -> f64 {
        per_second(self.verifications_total, self.verify_wall)
    }

    /// Frame-ingest throughput in MiB/s: encoded bytes over the wall time
    /// of the decode + verify + hub-fold spans (0.0 on the struct path).
    pub fn decode_mib_per_sec(&self) -> f64 {
        per_second(self.wire_bytes, self.wire_ingest_wall) / (1024.0 * 1024.0)
    }
}

/// Smallest wall time a phase is credited with when computing rates. Quick
/// runs on fast hosts can complete a phase below timer resolution; dividing
/// by a raw zero used to report `0.0` throughput into `BENCH_fleet.json`,
/// which downstream tooling reads as "infinitely slow". Clamping keeps the
/// rate finite, positive and, at worst, *under*stated.
const MIN_RATE_WALL: Duration = Duration::from_micros(1);

fn per_second(count: u64, wall: Duration) -> f64 {
    if count == 0 {
        return 0.0;
    }
    count as f64 / wall.as_secs_f64().max(MIN_RATE_WALL.as_secs_f64())
}

/// The latency at quantile `q` (in `[0, 1]`) of a sorted sample.
fn percentile(sorted: &[SimDuration], q: f64) -> SimDuration {
    if sorted.is_empty() {
        return SimDuration::ZERO;
    }
    let index = ((sorted.len() - 1) as f64 * q).floor() as usize;
    sorted[index.min(sorted.len() - 1)]
}

pub(crate) const MEASUREMENT_INTERVAL: SimDuration = SimDuration::from_secs(10);

/// Single-threaded fleet run: [`run_threaded`] with one shard.
///
/// # Panics
///
/// Panics if a prover refuses a measurement or a verifier rejects a
/// delivered collection response — both would be bugs in the reproduction,
/// not load conditions.
pub fn run(config: &FleetConfig) -> FleetReport {
    run_threaded(config, 1)
}

/// Provisions a sharded fleet and drives it on `threads` scoped worker
/// threads — each running its own event-driven engine — then merges the
/// shard results.
///
/// The partition only changes *which worker* drives a device; every device
/// performs identical simulated work, and every packet suffers the same
/// deterministic fate, regardless of `threads` — so all totals (including
/// delivered/dropped splits under loss) are identical across thread counts.
///
/// # Panics
///
/// Panics if `threads` is zero, or if a prover refuses a measurement or a
/// verifier rejects a delivered collection response — the latter two would
/// be bugs in the reproduction, not load conditions.
pub fn run_threaded(config: &FleetConfig, threads: usize) -> FleetReport {
    assert!(threads > 0, "at least one worker thread is required");
    let threads = threads.min(config.provers.max(1));
    let schedule = config.schedule();
    let plan = on_demand_plan(config);

    // Provisioning: per-device keys, precomputed MAC schedules, reference
    // digests, scenario plans. Deliberately outside the timed sections —
    // this happens once per device lifetime. The partition is balanced: the
    // remainder is spread over the first shards, so no worker idles while
    // another owns two extra devices.
    let base = config.provers / threads;
    let remainder = config.provers % threads;
    let mut start = 0usize;
    let mut shards: Vec<Shard> = (0..threads)
        .map(|index| {
            let size = base + usize::from(index < remainder);
            let range = start..start + size;
            start += size;
            Shard::provision(index, config, &schedule, range, &plan)
        })
        .collect();

    let shard_reports: Vec<ShardReport> = if shards.len() == 1 {
        // Keep a single-threaded run literally single-threaded so its
        // timings carry no spawn/join overhead.
        vec![shards[0].run(config)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter_mut()
                .map(|shard| scope.spawn(move || shard.run(config)))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("fleet shard thread panicked"))
                .collect()
        })
    };

    let mut hub = VerifierHub::with_history(config.history);
    for shard in shards {
        hub.merge(shard.into_hub());
    }

    let mut measurements_total = 0u64;
    let mut verifications_total = 0u64;
    let mut measure_wall = Duration::ZERO;
    let mut verify_wall = Duration::ZERO;
    let mut simulated_busy = SimDuration::ZERO;
    let mut all_healthy = true;
    let mut collections_attempted = 0u64;
    let mut collections_delivered = 0u64;
    let mut collections_dropped = 0u64;
    let mut collect_retransmits = 0u64;
    let mut exhausted_retries = 0u64;
    let mut churn_losses = 0u64;
    let mut stale_retries = 0u64;
    let mut reorders = 0u64;
    let mut retry_histogram = vec![0u64; config.retries as usize + 1];
    let mut frame_retransmits = 0u64;
    let mut frame_duplicates = 0u64;
    let mut corrupt_decode_drops = 0u64;
    let mut corrupt_tamper_drops = 0u64;
    let mut frames_exhausted = 0u64;
    let mut frame_lost_responses = 0u64;
    let mut hub_crashes = 0u64;
    let mut snapshot_bytes = 0u64;
    let mut hub_batches = 0u64;
    let mut largest_batch = 0u64;
    let mut wire_frames = 0u64;
    let mut wire_bytes = 0u64;
    let mut wire_responses = 0u64;
    let mut decoded_accepted = 0u64;
    let mut decode_rejects = 0u64;
    let mut encode_wall = Duration::ZERO;
    let mut wire_ingest_wall = Duration::ZERO;
    let mut on_demand_attempted = 0u64;
    let mut on_demand_completed = 0u64;
    let mut devices_churned = 0u64;
    let mut lane_jobs = 0u64;
    let mut lane_remainder = 0u64;
    let mut events_scheduled = 0u64;
    let mut singleton_events = 0u64;
    let mut coalesced_events = 0u64;
    let mut event_pool_high_water = 0u64;
    let mut queue = QueueStats::default();
    let mut latency_sample = LatencyReservoir::with_default_cap();
    for report in &shard_reports {
        measurements_total += report.measurements;
        verifications_total += report.verifications;
        measure_wall = measure_wall.max(report.measure_wall);
        verify_wall = verify_wall.max(report.verify_wall);
        simulated_busy += report.simulated_busy;
        all_healthy &= report.all_healthy;
        collections_attempted += report.collections_attempted;
        collections_delivered += report.collections_delivered;
        collections_dropped += report.collections_dropped;
        collect_retransmits += report.collect_retransmits;
        exhausted_retries += report.exhausted_retries;
        churn_losses += report.churn_losses;
        stale_retries += report.stale_retries;
        reorders += report.reorders;
        for (total, shard) in retry_histogram.iter_mut().zip(&report.retry_histogram) {
            *total += shard;
        }
        frame_retransmits += report.frame_retransmits;
        frame_duplicates += report.frame_duplicates;
        corrupt_decode_drops += report.corrupt_decode_drops;
        corrupt_tamper_drops += report.corrupt_tamper_drops;
        frames_exhausted += report.frames_exhausted;
        frame_lost_responses += report.frame_lost_responses;
        hub_crashes += report.hub_crashes;
        snapshot_bytes += report.snapshot_bytes;
        hub_batches += report.hub_batches;
        largest_batch = largest_batch.max(report.largest_batch);
        wire_frames += report.wire_frames;
        wire_bytes += report.wire_bytes;
        wire_responses += report.wire_responses;
        decoded_accepted += report.wire_accepted;
        decode_rejects += report.wire_decode_rejects;
        encode_wall = encode_wall.max(report.encode_wall);
        wire_ingest_wall = wire_ingest_wall.max(report.wire_ingest_wall);
        on_demand_attempted += report.on_demand_attempted;
        on_demand_completed += report.on_demand_completed;
        devices_churned += report.devices_churned;
        lane_jobs += report.lane_jobs;
        lane_remainder += report.lane_remainder;
        events_scheduled += report.events_scheduled;
        singleton_events += report.singleton_events;
        coalesced_events += report.coalesced_events;
        event_pool_high_water += report.event_pool_high_water;
        queue.pushes += report.queue.pushes;
        queue.pops += report.queue.pops;
        queue.overflow_pushes += report.queue.overflow_pushes;
        queue.max_pending = queue.max_pending.max(report.queue.max_pending);
        queue.buckets = queue.buckets.max(report.queue.buckets);
        queue.bucket_width_nanos = queue
            .bucket_width_nanos
            .max(report.queue.bucket_width_nanos);
        latency_sample.merge(report.on_demand_latencies.clone());
    }
    let latencies = latency_sample.sorted_latencies();
    all_healthy &= hub.all_healthy() && hub.rejected() == 0;
    let hub_duplicates = hub.duplicates();

    let history_resident = hub.total_resident();
    let aggregation = AggregationReport::from_hub(&hub);
    // Informational estimate of the merged hub's resident footprint: the
    // fixed per-device struct plus the retained window entries. Ring mode
    // keeps this O(devices × capacity) no matter how long the run was.
    let resident_state_bytes = hub.len() as u64 * std::mem::size_of::<DeviceHistory>() as u64
        + history_resident * std::mem::size_of::<HistoryEntry>() as u64;

    FleetReport {
        config: config.clone(),
        threads,
        measurements_total,
        verifications_total,
        measure_wall,
        verify_wall,
        simulated_busy,
        all_healthy,
        devices_tracked: hub.len(),
        history_entries: hub.total_entries(),
        history_resident,
        history_evictions: hub.total_evictions(),
        history_stale_discards: hub.total_stale_discards(),
        chains_verified: hub.verified_chains() as u64,
        resident_state_bytes,
        aggregation,
        collections_ingested: hub.total_collections(),
        collections_attempted,
        collections_delivered,
        collections_dropped,
        collect_retransmits,
        exhausted_retries,
        churn_losses,
        stale_retries,
        reorders,
        retry_histogram,
        frame_retransmits,
        frame_duplicates,
        corrupt_decode_drops,
        corrupt_tamper_drops,
        frames_exhausted,
        frame_lost_responses,
        hub_duplicates,
        hub_crashes,
        snapshot_bytes,
        hub_batches,
        largest_batch,
        wire_frames,
        wire_bytes,
        wire_responses,
        decoded_accepted,
        decode_rejects,
        encode_wall,
        wire_ingest_wall,
        on_demand_attempted,
        on_demand_completed,
        on_demand_p50: percentile(&latencies, 0.50),
        on_demand_p90: percentile(&latencies, 0.90),
        on_demand_p99: percentile(&latencies, 0.99),
        devices_churned,
        lane_jobs,
        lane_remainder,
        events_scheduled,
        singleton_events,
        coalesced_events,
        event_pool_high_water,
        queue,
        lane_speedup: None,
        shards: shard_reports,
    }
}

/// Renders one report as the JSON object used inside `BENCH_fleet.json`.
pub fn report_json(report: &FleetReport, indent: &str) -> String {
    let per_thread: Vec<String> = report
        .shards
        .iter()
        .map(|shard| shard.to_json(&format!("{indent}    ")))
        .collect();
    format!(
        "{indent}{{\n\
         {indent}  \"algorithm\": \"{alg}\",\n\
         {indent}  \"provers\": {provers},\n\
         {indent}  \"measurements_per_round\": {mpr},\n\
         {indent}  \"rounds\": {rounds},\n\
         {indent}  \"memory_bytes\": {memory},\n\
         {indent}  \"stagger_groups\": {groups},\n\
         {indent}  \"threads\": {threads},\n\
         {indent}  \"lanes\": {lanes},\n\
         {indent}  \"seed\": {seed},\n\
         {indent}  \"network\": {{ \"latency_ms\": {lat:.3}, \"jitter_ms\": {jit:.3}, \"loss\": {loss}, \
         \"duplicate\": {dup}, \"reorder\": {reord}, \"corrupt\": {corr} }},\n\
         {indent}  \"churn\": {churn},\n\
         {indent}  \"measurements_total\": {mt},\n\
         {indent}  \"verifications_total\": {vt},\n\
         {indent}  \"measure_wall_secs\": {mw:.6},\n\
         {indent}  \"verify_wall_secs\": {vw:.6},\n\
         {indent}  \"measurements_per_sec\": {mps:.1},\n\
         {indent}  \"verifications_per_sec\": {vps:.1},\n\
         {indent}  \"simulated_busy_secs\": {busy:.3},\n\
         {indent}  \"all_healthy\": {healthy},\n\
         {indent}  \"devices_tracked\": {tracked},\n\
         {indent}  \"history_entries\": {entries},\n\
         {indent}  \"history\": {{ \"mode\": \"{h_mode}\", \"ring_capacity\": {h_cap}, \
         \"resident\": {h_res}, \"evictions\": {h_evict}, \"stale_discards\": {h_stale}, \
         \"chains_verified\": {h_chains}, \"resident_state_bytes\": {h_bytes} }},\n\
         {indent}  \"aggregation\": {{ \"fanout\": {a_fanout}, \"leaves\": {a_leaves}, \
         \"nodes\": {a_nodes}, \"depth\": {a_depth}, \"healthy_devices\": {a_healthy}, \
         \"root_entries\": {a_entries}, \"root_digest\": \"{a_digest}\" }},\n\
         {indent}  \"collections_ingested\": {ingested},\n\
         {indent}  \"collections\": {{ \"attempted\": {att}, \"delivered\": {del}, \"dropped\": {dropped} }},\n\
         {indent}  \"hub_batches\": {batches},\n\
         {indent}  \"largest_batch\": {largest},\n\
         {indent}  \"delivery\": \"{delivery}\",\n\
         {indent}  \"wire\": {{ \"frames\": {wframes}, \"bytes\": {wbytes}, \
         \"responses\": {wresp}, \"decoded_accepted\": {waccepted}, \"decode_rejects\": {wrejects}, \
         \"encode_wall_secs\": {wenc:.6}, \"ingest_wall_secs\": {wing:.6}, \
         \"decode_mib_per_sec\": {wmibs:.3} }},\n\
         {indent}  \"lane_jobs\": {lane_jobs},\n\
         {indent}  \"lane_remainder\": {lane_remainder},\n\
         {indent}  \"lane_speedup\": {lane_speedup},\n\
         {indent}  \"scheduler\": \"{scheduler}\",\n\
         {indent}  \"events\": {{ \"scheduled\": {ev_sched}, \"singleton\": {ev_single}, \
         \"coalesced\": {ev_coal}, \"pool_high_water\": {ev_pool}, \
         \"queue_pushes\": {q_push}, \"queue_pops\": {q_pop}, \
         \"queue_overflow_pushes\": {q_ovf}, \"queue_max_pending\": {q_max}, \
         \"queue_buckets\": {q_buckets}, \"queue_bucket_width_nanos\": {q_width} }},\n\
         {indent}  \"devices_churned\": {churned},\n\
         {indent}  \"on_demand\": {{ \"attempted\": {od_att}, \"completed\": {od_done}, \
         \"latency_ms_p50\": {p50:.3}, \"latency_ms_p90\": {p90:.3}, \"latency_ms_p99\": {p99:.3} }},\n\
         {indent}  \"reliability\": {{\n\
         {indent}    \"retries\": {retries},\n\
         {indent}    \"collect\": {{ \"attempted\": {att}, \"unique_accepted\": {del}, \
         \"retransmits\": {c_rtx}, \"exhausted_retries\": {c_exh}, \"churn_losses\": {c_churn}, \
         \"stale_retries\": {c_stale}, \"reorders\": {c_reord}, \"retry_histogram\": [{histogram}] }},\n\
         {indent}    \"frame\": {{ \"retransmits\": {f_rtx}, \"duplicates_injected\": {f_dup}, \
         \"corrupt_decode\": {f_cdec}, \"corrupt_tamper\": {f_ctam}, \"exhausted\": {f_exh}, \
         \"lost_responses\": {f_lost} }},\n\
         {indent}    \"hub\": {{ \"duplicates_dropped\": {h_dup}, \"crashes\": {h_crash}, \
         \"snapshot_bytes\": {h_snap} }}\n\
         {indent}  }},\n\
         {indent}  \"per_thread\": [\n{pt}\n{indent}  ]\n\
         {indent}}}",
        alg = report.config.algorithm,
        provers = report.config.provers,
        mpr = report.config.measurements_per_round,
        rounds = report.config.rounds,
        memory = report.config.memory_bytes,
        groups = report.config.stagger_groups,
        threads = report.threads,
        lanes = lanes::effective_width(report.config.lanes),
        seed = report.config.seed,
        lat = report.config.network.base_latency.as_millis_f64(),
        jit = report.config.network.jitter.as_millis_f64(),
        loss = report.config.network.loss,
        dup = report.config.network.duplicate,
        reord = report.config.network.reorder,
        corr = report.config.network.corrupt,
        churn = report.config.churn,
        mt = report.measurements_total,
        vt = report.verifications_total,
        mw = report.measure_wall.as_secs_f64(),
        vw = report.verify_wall.as_secs_f64(),
        mps = report.measurements_per_sec(),
        vps = report.verifications_per_sec(),
        busy = report.simulated_busy.as_secs_f64(),
        healthy = report.all_healthy,
        tracked = report.devices_tracked,
        entries = report.history_entries,
        h_mode = history_mode_label(report.config.history),
        h_cap = history_capacity(report.config.history),
        h_res = report.history_resident,
        h_evict = report.history_evictions,
        h_stale = report.history_stale_discards,
        h_chains = report.chains_verified,
        h_bytes = report.resident_state_bytes,
        a_fanout = report.aggregation.fanout,
        a_leaves = report.aggregation.leaves,
        a_nodes = report.aggregation.nodes,
        a_depth = report.aggregation.depth,
        a_healthy = report.aggregation.healthy_devices,
        a_entries = report.aggregation.root_entries,
        a_digest = report.aggregation.root_digest,
        ingested = report.collections_ingested,
        att = report.collections_attempted,
        del = report.collections_delivered,
        dropped = report.collections_dropped,
        batches = report.hub_batches,
        largest = report.largest_batch,
        delivery = if report.config.wire { "wire" } else { "struct" },
        wframes = report.wire_frames,
        wbytes = report.wire_bytes,
        wresp = report.wire_responses,
        waccepted = report.decoded_accepted,
        wrejects = report.decode_rejects,
        wenc = report.encode_wall.as_secs_f64(),
        wing = report.wire_ingest_wall.as_secs_f64(),
        wmibs = report.decode_mib_per_sec(),
        lane_jobs = report.lane_jobs,
        lane_remainder = report.lane_remainder,
        scheduler = report.config.scheduler,
        ev_sched = report.events_scheduled,
        ev_single = report.singleton_events,
        ev_coal = report.coalesced_events,
        ev_pool = report.event_pool_high_water,
        q_push = report.queue.pushes,
        q_pop = report.queue.pops,
        q_ovf = report.queue.overflow_pushes,
        q_max = report.queue.max_pending,
        q_buckets = report.queue.buckets,
        q_width = report.queue.bucket_width_nanos,
        lane_speedup = report
            .lane_speedup
            .as_ref()
            .map_or_else(|| "null".to_owned(), LaneSpeedup::to_json),
        churned = report.devices_churned,
        od_att = report.on_demand_attempted,
        od_done = report.on_demand_completed,
        p50 = report.on_demand_p50.as_millis_f64(),
        p90 = report.on_demand_p90.as_millis_f64(),
        p99 = report.on_demand_p99.as_millis_f64(),
        retries = report.config.retries,
        c_rtx = report.collect_retransmits,
        c_exh = report.exhausted_retries,
        c_churn = report.churn_losses,
        c_stale = report.stale_retries,
        c_reord = report.reorders,
        histogram = report
            .retry_histogram
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        f_rtx = report.frame_retransmits,
        f_dup = report.frame_duplicates,
        f_cdec = report.corrupt_decode_drops,
        f_ctam = report.corrupt_tamper_drops,
        f_exh = report.frames_exhausted,
        f_lost = report.frame_lost_responses,
        h_dup = report.hub_duplicates,
        h_crash = report.hub_crashes,
        h_snap = report.snapshot_bytes,
        pt = per_thread.join(",\n"),
    )
}

/// Renders the whole `BENCH_fleet.json` document for a set of per-algorithm
/// runs sharing one mode label, plus the 1→N scaling sweep.
pub fn document_json(
    mode: &str,
    threads: usize,
    reports: &[FleetReport],
    sweep: &[scaling::ScalingPoint],
) -> String {
    let provers = reports.first().map_or(0, |r| r.config.provers);
    let seed = reports.first().map_or(DEFAULT_SEED, |r| r.config.seed);
    let lane_width = reports
        .first()
        .map_or(1, |r| lanes::effective_width(r.config.lanes));
    let delivery = reports
        .first()
        .map_or("wire", |r| if r.config.wire { "wire" } else { "struct" });
    let scheduler = reports
        .first()
        .map_or(Scheduler::Calendar, |r| r.config.scheduler);
    let history = reports
        .first()
        .map_or(HistoryMode::Unbounded, |r| r.config.history);
    let entries: Vec<String> = reports.iter().map(|r| report_json(r, "    ")).collect();
    let scaling_entries: Vec<String> = sweep.iter().map(|point| point.to_json("    ")).collect();
    format!(
        "{{\n  \"schema\": \"erasmus-perfbench/v8\",\n  \"mode\": \"{mode}\",\n  \
         \"provers\": {provers},\n  \"threads\": {threads},\n  \"lanes\": {lane_width},\n  \
         \"delivery\": \"{delivery}\",\n  \"scheduler\": \"{scheduler}\",\n  \
         \"history\": \"{history_label}\",\n  \"ring_capacity\": {ring_capacity},\n  \
         \"seed\": {seed},\n  \
         \"results\": [\n{}\n  ],\n  \"scaling\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
        scaling_entries.join(",\n"),
        history_label = history_mode_label(history),
        ring_capacity = history_capacity(history),
    )
}

/// Renders a human-readable summary table.
pub fn render(reports: &[FleetReport]) -> String {
    let mut out = String::from(
        "Fleet throughput (host wall-clock)\n\
         algorithm       provers  threads  measurements     meas/s     verifs     verif/s  delivered/attempted\n",
    );
    for report in reports {
        out.push_str(&format!(
            "{:<15} {:>7}  {:>7}  {:>12}  {:>9.0}  {:>9}  {:>10.0}  {:>9}/{}\n",
            report.config.algorithm.to_string(),
            report.config.provers,
            report.threads,
            report.measurements_total,
            report.measurements_per_sec(),
            report.verifications_total,
            report.verifications_per_sec(),
            report.collections_delivered,
            report.collections_attempted,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use erasmus_core::DeviceId;
    use erasmus_sim::NetworkConfig;

    fn tiny(algorithm: MacAlgorithm) -> FleetConfig {
        FleetConfig::new(8, 2, 2, 256, 4, algorithm)
    }

    #[test]
    fn fleet_run_counts_add_up() {
        let config = tiny(MacAlgorithm::HmacSha256);
        let report = run(&config);
        assert_eq!(report.measurements_total, config.total_measurements());
        assert_eq!(report.measurements_total, 8 * 2 * 2);
        // Every measurement taken in a round is collected and verified.
        assert_eq!(report.verifications_total, report.measurements_total);
        assert!(report.all_healthy);
        assert!(report.simulated_busy > SimDuration::ZERO);
        // The hub saw every device and every measurement exactly once.
        assert_eq!(report.devices_tracked, config.provers);
        assert_eq!(report.history_entries, report.measurements_total);
        // Unbounded retention: everything stays resident, nothing is sealed
        // into a chain, and every (empty) chain still verifies.
        assert_eq!(report.history_resident, report.history_entries);
        assert_eq!(report.history_evictions, 0);
        assert_eq!(report.history_stale_discards, 0);
        assert_eq!(report.chains_verified, config.provers as u64);
        assert!(report.resident_state_bytes > 0);
        // The aggregation tree covers the whole fleet up to its root.
        assert_eq!(report.aggregation.fanout, AGGREGATION_FANOUT);
        assert_eq!(report.aggregation.leaves, config.provers);
        assert_eq!(report.aggregation.healthy_devices, config.provers as u64);
        assert_eq!(report.aggregation.root_entries, report.history_entries);
        assert_eq!(report.aggregation.root_digest.len(), 64);
        assert_eq!(
            report.collections_ingested,
            (config.provers * config.rounds) as u64
        );
        // The ideal network delivers everything.
        assert_eq!(report.collections_attempted, (8 * 2) as u64);
        assert_eq!(report.collections_delivered, report.collections_attempted);
        assert_eq!(report.collections_dropped, 0);
        assert_eq!(report.collections_ingested, report.collections_delivered);
        assert_eq!(report.on_demand_attempted, 0);
        assert_eq!(report.devices_churned, 0);
        // Wire delivery is the default: every delivered response travelled
        // as an encoded frame record, and every decoded record was
        // accepted — `ingested == decoded_accepted` on a lossless run.
        assert!(report.config.wire);
        assert_eq!(report.wire_responses, report.collections_delivered);
        assert_eq!(report.decoded_accepted, report.collections_ingested);
        assert_eq!(report.decode_rejects, 0);
        assert!(report.wire_frames >= 1);
        assert!(report.wire_bytes > 0);
    }

    #[test]
    fn fleet_runs_for_every_algorithm() {
        for alg in MacAlgorithm::ALL {
            let report = run(&tiny(alg));
            assert!(report.all_healthy, "{alg}");
            assert!(report.measurements_per_sec() > 0.0, "{alg}");
            assert!(report.verifications_per_sec() > 0.0, "{alg}");
        }
    }

    #[test]
    fn threaded_run_matches_single_threaded_totals() {
        let config = tiny(MacAlgorithm::HmacSha256);
        let single = run_threaded(&config, 1);
        let threaded = run_threaded(&config, 4);
        assert_eq!(threaded.threads, 4);
        assert_eq!(threaded.shards.len(), 4);
        assert_eq!(single.measurements_total, threaded.measurements_total);
        assert_eq!(single.verifications_total, threaded.verifications_total);
        assert_eq!(single.all_healthy, threaded.all_healthy);
        assert_eq!(single.devices_tracked, threaded.devices_tracked);
        assert_eq!(single.history_entries, threaded.history_entries);
        // Shard totals add up to the fleet totals.
        let shard_meas: u64 = threaded.shards.iter().map(|s| s.measurements).sum();
        assert_eq!(shard_meas, threaded.measurements_total);
        let shard_provers: usize = threaded.shards.iter().map(|s| s.provers).sum();
        assert_eq!(shard_provers, config.provers);
    }

    #[test]
    fn lossy_runs_are_thread_invariant_and_conserve_attempts() {
        let mut config = tiny(MacAlgorithm::HmacSha256);
        config.network = NetworkConfig {
            base_latency: SimDuration::from_millis(15),
            jitter: SimDuration::from_millis(10),
            loss: 0.25,
            ..NetworkConfig::IDEAL
        };
        config.seed = 9;
        let single = run_threaded(&config, 1);
        let threaded = run_threaded(&config, 3);
        assert_eq!(
            single.collections_delivered + single.collections_dropped,
            single.collections_attempted
        );
        assert!(single.collections_dropped > 0, "no drop at 25% loss");
        assert_eq!(single.collections_delivered, threaded.collections_delivered);
        assert_eq!(single.collections_dropped, threaded.collections_dropped);
        assert_eq!(single.verifications_total, threaded.verifications_total);
        assert_eq!(single.history_entries, threaded.history_entries);
        assert_eq!(single.collections_ingested, single.collections_delivered);
        // Loss drops evidence, it does not fabricate compromise.
        assert!(single.all_healthy);
    }

    #[test]
    fn wire_and_struct_delivery_agree_bit_for_bit() {
        // The wire path decodes and verifies straight off encoded frames;
        // every total — including per-device histories via the ingested /
        // history_entries counts — must match the in-memory struct path.
        let mut config = tiny(MacAlgorithm::HmacSha256);
        config.on_demand = 3; // exercise the mixed struct+wire burst path
        let wire = run(&config);
        config.wire = false;
        let legacy = run(&config);
        assert_eq!(wire.measurements_total, legacy.measurements_total);
        assert_eq!(wire.verifications_total, legacy.verifications_total);
        assert_eq!(wire.collections_ingested, legacy.collections_ingested);
        assert_eq!(wire.history_entries, legacy.history_entries);
        assert_eq!(wire.hub_batches, legacy.hub_batches);
        assert_eq!(wire.largest_batch, legacy.largest_batch);
        assert_eq!(wire.all_healthy, legacy.all_healthy);
        // Only the wire run moved bytes.
        assert!(wire.wire_bytes > 0);
        assert_eq!(legacy.wire_bytes, 0);
        assert_eq!(legacy.wire_frames, 0);
        assert_eq!(
            wire.decoded_accepted,
            wire.collections_ingested - wire.on_demand_completed
        );
    }

    #[test]
    fn ring_history_bounds_state_and_matches_unbounded_totals() {
        // Ring(2) against 4 lifetime entries per device: evictions must
        // fire, resident state must cap at devices × capacity, and every
        // lifetime total — head digests included, hence the aggregation
        // root — must match the unbounded run bit for bit.
        let unbounded = run(&tiny(MacAlgorithm::HmacSha256));
        let mut config = tiny(MacAlgorithm::HmacSha256);
        config.history = HistoryMode::Ring(2);
        let ring = run(&config);

        assert_eq!(ring.measurements_total, unbounded.measurements_total);
        assert_eq!(ring.verifications_total, unbounded.verifications_total);
        assert_eq!(ring.collections_ingested, unbounded.collections_ingested);
        assert_eq!(ring.history_entries, unbounded.history_entries);
        assert_eq!(ring.all_healthy, unbounded.all_healthy);
        assert_eq!(
            ring.aggregation.root_digest,
            unbounded.aggregation.root_digest
        );
        assert_eq!(ring.aggregation.root_entries, ring.history_entries);

        assert_eq!(ring.history_resident, (8 * 2) as u64);
        assert_eq!(
            ring.history_evictions + ring.history_resident,
            ring.history_entries
        );
        assert!(ring.history_evictions > 0);
        assert_eq!(ring.history_stale_discards, 0);
        assert_eq!(ring.chains_verified, 8);
        assert!(ring.resident_state_bytes < unbounded.resident_state_bytes);
    }

    #[test]
    fn faulty_ring_run_is_thread_and_mode_invariant() {
        // The acceptance bar: under loss + duplication + reordering with
        // ARQ retries, ring-mode totals must match the unbounded run at
        // every thread count, as long as the capacity covers each device's
        // in-flight reordering window.
        let mut config = tiny(MacAlgorithm::HmacSha256);
        config.network = NetworkConfig {
            base_latency: SimDuration::from_millis(10),
            jitter: SimDuration::from_millis(8),
            loss: 0.2,
            duplicate: 0.1,
            reorder: 0.1,
            ..NetworkConfig::IDEAL
        };
        config.retries = 2;
        config.seed = 17;
        config.history = HistoryMode::Ring(8);
        let ring1 = run_threaded(&config, 1);
        let ring4 = run_threaded(&config, 4);
        config.history = HistoryMode::Unbounded;
        let flat = run_threaded(&config, 1);

        assert!(
            flat.collect_retransmits + flat.frame_retransmits > 0,
            "faults never fired"
        );
        for faulty in [&ring1, &ring4] {
            assert_eq!(faulty.history_entries, flat.history_entries);
            assert_eq!(faulty.verifications_total, flat.verifications_total);
            assert_eq!(faulty.collections_ingested, flat.collections_ingested);
            assert_eq!(faulty.collections_dropped, flat.collections_dropped);
            assert_eq!(faulty.history_stale_discards, 0);
            assert_eq!(
                faulty.history_evictions + faulty.history_resident,
                faulty.history_entries
            );
            assert_eq!(faulty.chains_verified, faulty.devices_tracked as u64);
            assert_eq!(faulty.aggregation.root_digest, flat.aggregation.root_digest);
        }
    }

    #[test]
    fn on_demand_latency_percentiles_are_ordered() {
        let mut config = tiny(MacAlgorithm::HmacSha256);
        config.on_demand = 6;
        config.network = NetworkConfig {
            base_latency: SimDuration::from_millis(10),
            jitter: SimDuration::from_millis(5),
            loss: 0.0,
            ..NetworkConfig::IDEAL
        };
        let report = run(&config);
        assert_eq!(report.on_demand_attempted, 6);
        assert!(report.on_demand_completed > 0);
        assert!(report.on_demand_p50 >= SimDuration::from_millis(20)); // two legs
        assert!(report.on_demand_p50 <= report.on_demand_p90);
        assert!(report.on_demand_p90 <= report.on_demand_p99);
        // Each completed exchange added one fresh measurement and verified
        // the fresh + k buffered ones.
        assert_eq!(
            report.measurements_total,
            config.total_measurements() + report.on_demand_completed
        );
    }

    #[test]
    fn thread_count_clamped_to_fleet_size() {
        let config = FleetConfig {
            provers: 3,
            ..tiny(MacAlgorithm::HmacSha256)
        };
        let report = run_threaded(&config, 16);
        assert_eq!(report.threads, 3);
        assert!(report.shards.iter().all(|s| s.provers == 1));
        assert_eq!(report.measurements_total, config.total_measurements());
    }

    #[test]
    fn partition_is_balanced_with_no_empty_shard() {
        let config = FleetConfig {
            provers: 9,
            ..tiny(MacAlgorithm::HmacSha256)
        };
        let report = run_threaded(&config, 4);
        let sizes: Vec<usize> = report.shards.iter().map(|s| s.provers).collect();
        assert_eq!(sizes, vec![3, 2, 2, 2]);
        assert_eq!(report.measurements_total, config.total_measurements());
    }

    #[test]
    fn staggering_spreads_offsets_but_keeps_counts() {
        let config = tiny(MacAlgorithm::KeyedBlake2s);
        let schedule = config.schedule();
        assert_eq!(schedule.groups(), 4);
        assert_eq!(schedule.max_concurrent(), 2);
        // Offsets stay inside T_M, so every device still completes the same
        // number of measurements per round.
        for device in 0..config.provers {
            assert!(schedule.offset(device) < MEASUREMENT_INTERVAL);
        }
        let report = run(&config);
        assert_eq!(report.measurements_total, config.total_measurements());
    }

    #[test]
    fn more_stagger_groups_than_provers_still_covers_every_device() {
        // Groups clamp to the fleet size; every device keeps a distinct
        // offset strictly inside T_M and the totals are unchanged.
        let config = FleetConfig::new(3, 2, 2, 128, 64, MacAlgorithm::HmacSha256);
        let schedule = config.schedule();
        assert_eq!(schedule.groups(), 3);
        assert_eq!(schedule.max_concurrent(), 1);
        for device in 0..config.provers {
            assert!(schedule.offset(device) < MEASUREMENT_INTERVAL);
        }
        let report = run(&config);
        assert_eq!(report.measurements_total, config.total_measurements());
        assert_eq!(report.verifications_total, report.measurements_total);
        assert!(report.all_healthy);
    }

    #[test]
    fn per_second_is_positive_even_below_timer_resolution() {
        // The regression: a quick phase finishing in "zero" wall time used
        // to serialize measurements_per_sec = 0.0 into BENCH_fleet.json.
        assert!(per_second(1_000, Duration::ZERO) > 0.0);
        assert_eq!(per_second(0, Duration::ZERO), 0.0);
        assert_eq!(per_second(10, Duration::from_secs(2)), 5.0);
    }

    #[test]
    fn percentiles_of_empty_and_singleton_samples() {
        assert_eq!(percentile(&[], 0.5), SimDuration::ZERO);
        let one = [SimDuration::from_millis(7)];
        assert_eq!(percentile(&one, 0.5), SimDuration::from_millis(7));
        assert_eq!(percentile(&one, 0.99), SimDuration::from_millis(7));
        let many: Vec<SimDuration> = (1..=100).map(SimDuration::from_millis).collect();
        assert_eq!(percentile(&many, 0.5), SimDuration::from_millis(50));
        assert_eq!(percentile(&many, 0.99), SimDuration::from_millis(99));
    }

    #[test]
    fn hub_histories_are_per_device() {
        let config = tiny(MacAlgorithm::HmacSha256);
        let report = run(&config);
        // Each device contributed measurements_per_round × rounds entries;
        // a cross-device leak would inflate one history and starve another.
        assert_eq!(
            report.history_entries,
            (config.provers * config.measurements_per_round * config.rounds) as u64
        );
        assert_eq!(report.devices_tracked, config.provers);
        let _ = DeviceId::new(0); // device ids are dense 0..provers by construction
    }

    #[test]
    fn json_document_shape() {
        let report = run_threaded(&tiny(MacAlgorithm::KeyedBlake2s), 2);
        let sweep = vec![scaling::ScalingPoint {
            threads: 1,
            measurements_per_sec: report.measurements_per_sec(),
            verifications_per_sec: report.verifications_per_sec(),
            speedup: 1.0,
        }];
        let doc = document_json("test", 2, std::slice::from_ref(&report), &sweep);
        assert!(doc.starts_with("{\n"));
        assert!(doc.contains("\"schema\": \"erasmus-perfbench/v8\""));
        assert!(doc.contains("\"scheduler\": \"calendar\""));
        assert!(doc.contains("\"history\": \"unbounded\""));
        assert!(doc.contains("\"ring_capacity\": 0"));
        assert!(doc.contains(
            "\"history\": { \"mode\": \"unbounded\", \"ring_capacity\": 0, \"resident\": 32, \
             \"evictions\": 0, \"stale_discards\": 0, \"chains_verified\": 8, \
             \"resident_state_bytes\": "
        ));
        assert!(doc.contains(
            "\"aggregation\": { \"fanout\": 64, \"leaves\": 8, \
             \"nodes\": 9, \"depth\": 2, \"healthy_devices\": 8, \"root_entries\": 32, \
             \"root_digest\": \""
        ));
        assert!(doc.contains("\"events\": {"));
        assert!(doc.contains("\"pool_high_water\""));
        assert!(doc.contains("\"queue_overflow_pushes\""));
        assert!(doc.contains("\"queue_buckets\": 1024"));
        assert!(doc.contains("\"delivery\": \"wire\""));
        assert!(doc.contains("\"wire\": {"));
        assert!(doc.contains("\"decoded_accepted\""));
        assert!(doc.contains("\"decode_rejects\": 0"));
        assert!(doc.contains("\"decode_mib_per_sec\""));
        assert!(doc.contains("\"lanes\": 1"));
        assert!(doc.contains("\"lane_jobs\": 0"));
        assert!(doc.contains("\"lane_speedup\": null"));
        assert!(doc.contains("\"mode\": \"test\""));
        assert!(doc.contains("\"provers\": 8"));
        assert!(doc.contains("\"threads\": 2"));
        assert!(doc.contains(&format!("\"seed\": {DEFAULT_SEED}")));
        assert!(doc.contains(
            "\"network\": { \"latency_ms\": 0.000, \"jitter_ms\": 0.000, \"loss\": 0, \
             \"duplicate\": 0, \"reorder\": 0, \"corrupt\": 0 }"
        ));
        assert!(doc.contains("\"measurements_per_sec\""));
        assert!(doc.contains("\"verifications_per_sec\""));
        assert!(doc.contains("\"algorithm\": \"Keyed BLAKE2S\""));
        assert!(doc
            .contains("\"collections\": { \"attempted\": 16, \"delivered\": 16, \"dropped\": 0 }"));
        assert!(doc.contains("\"on_demand\""));
        assert!(doc.contains("\"latency_ms_p99\""));
        assert!(doc.contains("\"reliability\": {"));
        assert!(doc.contains("\"retries\": 0"));
        assert!(doc.contains(
            "\"collect\": { \"attempted\": 16, \"unique_accepted\": 16, \"retransmits\": 0, \
             \"exhausted_retries\": 0, \"churn_losses\": 0, \"stale_retries\": 0, \
             \"reorders\": 0, \"retry_histogram\": [16] }"
        ));
        assert!(doc.contains(
            "\"frame\": { \"retransmits\": 0, \"duplicates_injected\": 0, \"corrupt_decode\": 0, \
             \"corrupt_tamper\": 0, \"exhausted\": 0, \"lost_responses\": 0 }"
        ));
        assert!(doc.contains(
            "\"hub\": { \"duplicates_dropped\": 0, \"crashes\": 0, \"snapshot_bytes\": 0 }"
        ));
        assert!(doc.contains("\"hub_batches\""));
        assert!(doc.contains("\"per_thread\""));
        assert!(doc.contains("\"shard\": 0"));
        assert!(doc.contains("\"scaling\""));
        assert!(doc.contains("\"speedup\": 1.00"));
        assert!(doc.contains("\"devices_tracked\": 8"));
        // Balanced braces/brackets — the cheap structural JSON check.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn heap_scheduler_matches_calendar_bit_for_bit() {
        // The heap backend is the oracle: a faulty, churny, on-demand run
        // must produce the identical report under either scheduler — only
        // the queue-geometry stats may differ.
        let mut config = tiny(MacAlgorithm::HmacSha256);
        config.network = NetworkConfig {
            base_latency: SimDuration::from_millis(12),
            jitter: SimDuration::from_millis(8),
            loss: 0.1,
            duplicate: 0.05,
            reorder: 0.05,
            corrupt: 0.05,
        };
        config.churn = 0.25;
        config.retries = 3;
        config.on_demand = 4;
        config.hub_crashes = 1;
        let calendar = run(&config);
        assert_eq!(calendar.config.scheduler, Scheduler::Calendar);
        config.scheduler = Scheduler::Heap;
        let heap = run(&config);
        assert_eq!(heap.queue.buckets, 0, "heap reports no bucket geometry");
        assert!(calendar.queue.buckets > 0);
        // Every observable total agrees; normalize the fields that are
        // allowed to differ (config, queue geometry, wall clocks).
        let mut normalized = heap.clone();
        normalized.config.scheduler = Scheduler::Calendar;
        normalized.queue = calendar.queue;
        normalized.measure_wall = calendar.measure_wall;
        normalized.verify_wall = calendar.verify_wall;
        normalized.encode_wall = calendar.encode_wall;
        normalized.wire_ingest_wall = calendar.wire_ingest_wall;
        for (a, b) in normalized.shards.iter_mut().zip(&calendar.shards) {
            a.queue = b.queue;
            a.measure_wall = b.measure_wall;
            a.verify_wall = b.verify_wall;
            a.encode_wall = b.encode_wall;
            a.wire_ingest_wall = b.wire_ingest_wall;
        }
        assert_eq!(normalized, calendar);
    }

    #[test]
    fn coalescing_ledger_conserves_scheduled_events() {
        // coalesced + singleton == scheduled, in every mode — and with
        // more devices than stagger groups the cohort path must actually
        // save queue slots.
        for lanes in [1usize, 8] {
            let mut config = tiny(MacAlgorithm::HmacSha256);
            config.provers = 64;
            config.stagger_groups = 4;
            config.lanes = lanes;
            let report = run_threaded(&config, 2);
            assert_eq!(
                report.coalesced_events + report.singleton_events,
                report.events_scheduled,
                "lanes={lanes}"
            );
            assert_eq!(report.events_scheduled, report.measurements_total);
            assert!(
                report.coalesced_events > 0,
                "16 devices per stagger group must coalesce (lanes={lanes})"
            );
            assert!(report.event_pool_high_water > 0);
            // Queue accounting: every push is eventually popped.
            assert_eq!(report.queue.pushes, report.queue.pops);
            assert!(report.queue.max_pending > 0);
        }
    }

    #[test]
    fn render_mentions_each_algorithm() {
        let reports: Vec<FleetReport> = MacAlgorithm::ALL.iter().map(|&a| run(&tiny(a))).collect();
        let text = render(&reports);
        for alg in MacAlgorithm::ALL {
            assert!(text.contains(&alg.to_string()), "{text}");
        }
    }

    #[test]
    fn on_demand_plan_is_sorted_and_in_range() {
        let mut config = tiny(MacAlgorithm::HmacSha256);
        config.on_demand = 32;
        let plan = on_demand_plan(&config);
        assert_eq!(plan.len(), 32);
        let span = MEASUREMENT_INTERVAL * (config.measurements_per_round * config.rounds) as u64;
        for window in plan.windows(2) {
            assert!(window[0].1 <= window[1].1, "plan not time-sorted");
        }
        for &(device, at) in &plan {
            assert!(device < config.provers);
            assert!(at >= SimTime::ZERO + span / 4 && at < SimTime::ZERO + span);
        }
        // The plan is a pure function of the seed.
        assert_eq!(plan, on_demand_plan(&config));
        let mut reseeded = config.clone();
        reseeded.seed = 1;
        assert_ne!(plan, on_demand_plan(&reseeded));
    }

    #[test]
    fn quick_config_meets_the_fleet_floor() {
        let quick = FleetConfig::quick(MacAlgorithm::HmacSha256);
        assert!(quick.provers >= 1_000);
        let full = FleetConfig::full(MacAlgorithm::HmacSha256);
        assert!(full.provers >= quick.provers);
    }
}
