//! Per-thread fleet shards, driven by a discrete-event engine.
//!
//! [`Shard`] is the unit of parallelism of the fleet harness: a contiguous
//! slice of the fleet whose `(Prover, Verifier)` pairs are *owned* by one
//! scoped worker thread, so the hot loops run without any cross-thread
//! sharing or locking. Each shard owns an [`erasmus_sim::Engine`] and runs
//! its slice of the fleet as one interleaved timeline of [`FleetEvent`]s:
//! self-measurements, collection requests arriving at devices, responses
//! travelling back through the [`NetworkModel`], on-demand attestations
//! racing the schedule, and devices leaving/rejoining the fleet (churn).
//!
//! Devices keep their global fleet index for key derivation, for their
//! [`StaggeredSchedule`] phase offset and for their network flows, which
//! makes shard boundaries invisible to the simulated protocol: a device
//! performs the same measurements at the same simulated instants — and its
//! packets suffer the same fates — whether the fleet runs on one thread or
//! sixteen.
//!
//! Delivered collection responses are verified at their (per-device,
//! latency-shifted) arrival instants; responses arriving at the same
//! instant form one burst. Under wire delivery (the default) the burst is
//! serialized into framed batch buffers — chunked at
//! [`MAX_BATCH_RESPONSES`] — and folded into the shard's [`VerifierHub`]
//! straight off the bytes through
//! [`VerifierHub::ingest_sequenced_frame`], verifying each record
//! zero-copy off the frame; with [`FleetConfig::wire`] off, the burst is
//! verified as in-memory structs and folded through
//! [`VerifierHub::ingest_batch`]. Both paths produce bit-identical totals
//! and hub histories.
//!
//! # Reliability
//!
//! Two hops can fail, and each recovers through its own ARQ loop:
//!
//! * **Collect hop** (device → collector, event-driven): the network model
//!   drops and delays responses as before; *reorder* faults add a
//!   deterministic extra delay so late packets genuinely overtake earlier
//!   ones. With [`FleetConfig::retries`] > 0, a dropped response is
//!   retransmitted after an exponential [`RetryPolicy`] backoff. Retry
//!   events carry the device's churn `epoch`: a device that left the fleet
//!   mid-backoff never replays stale evidence.
//! * **Frame hop** (collector → hub, synchronous): each encoded batch
//!   frame is numbered on a per-shard flow and ingested through
//!   [`VerifierHub::ingest_sequenced_frame`], whose `Ok(Some(_))` return
//!   doubles as the hub's ack. *Duplicate* faults deliver a frame twice —
//!   the hub's dedup window drops the echo. *Corrupt* faults flip a byte
//!   on the wire: a damaged count header hits the strict decoder's live
//!   `DecodeError` path, a damaged digest parses fine but fails MAC
//!   verification (`TamperingDetected`) on a scratch verifier before the
//!   frame is acked; both trigger a retransmission of the pristine frame
//!   until the retry budget runs out.
//!
//! Every fault and retry draw is keyed by global device index or shard
//! base, so recovered totals stay thread-count-invariant and — with a
//! sufficient budget — bit-identical to the fault-free run.
//!
//! # Runtime layout
//!
//! The shard is built for event throughput, not just correctness:
//!
//! * The engine schedules on the calendar-queue backend by default
//!   ([`FleetConfig::scheduler`] selects the binary-heap compatibility
//!   backend, which must produce bit-identical totals).
//! * Per-device hot state is struct-of-arrays ([`DeviceState`]): schedule
//!   cursors, epoch tags, horizons and sequence counters live in parallel
//!   vecs indexed by dense local slot, so cohort due-scans and lane
//!   batching walk contiguous columns instead of hopping across large
//!   `(Prover, Verifier)` pairs. The `next_due` column caches
//!   `Prover::next_measurement_due()` and is refreshed after every
//!   schedule-mutating prover call.
//! * Heavy event payloads (collection responses riding the ARQ loop,
//!   on-demand exchanges) live in [`EventPool`] slabs; events carry a
//!   4-byte [`SlotId`]. Every path that abandons an event — stale retries
//!   after churn, exhausted budgets — takes its slot back, so a long churn
//!   run cannot grow the pools unboundedly (the fleet determinism tests
//!   assert the high-water mark).
//! * Self-measurements are coalesced at insertion: one `MeasureCohort`
//!   event per (instant, stagger cohort) in *every* mode (the scalar path
//!   simply runs width-1 jobs), instead of one queue entry per device.
//!   The per-shard ledger keeps the conservation invariant
//!   `coalesced_events + singleton_events == events_scheduled`.

use std::ops::Range;
use std::time::{Duration, Instant};

use erasmus_core::{
    decode_hub_snapshot, encode_collection_batch_into, encode_hub_snapshot, AttestationVerdict,
    CollectionReport, CollectionRequest, CollectionResponse, DeviceId, FrameView,
    MeasurementVerdict, OnDemandRequest, OnDemandResponse, Prover, ProverConfig, RetryPolicy,
    Verifier, VerifierHub, MAX_BATCH_RESPONSES,
};
use erasmus_hw::{DeviceKey, DeviceProfile};
use erasmus_sim::{
    Corruption, Delivery, Engine, EventPool, NetworkModel, QueueStats, ScheduledEvent, SimDuration,
    SimRng, SimTime, SlotId,
};
use erasmus_swarm::StaggeredSchedule;

use super::reservoir::{sample_priority, LatencyReservoir};
use super::{FleetConfig, MEASUREMENT_INTERVAL};

/// Network channel tags: a device's flows are `global_id * CHANNELS + tag`,
/// so its collection stream, the two on-demand legs and its ARQ
/// retransmissions draw independent randomness.
const CHANNELS: u64 = 4;
const CHANNEL_COLLECT: u64 = 0;
const CHANNEL_OD_REQUEST: u64 = 1;
const CHANNEL_OD_RESPONSE: u64 = 2;
const CHANNEL_RETRY: u64 = 3;

/// Stream salt for the per-device churn draws (seeds a fresh [`SimRng`] per
/// device, so the plan is independent of the shard partition).
const CHURN_STREAM: u64 = 0x6368_7572_6e21_7331;

/// Flow salt for the collector → hub frame link. Frame flows are per
/// shard (`FRAME_STREAM ^ base`): frame composition already depends on the
/// partition, so frame-hop fault draws may too — recovered totals do not.
const FRAME_STREAM: u64 = 0x6672_616d_6521_7331;

fn flow(global: u64, channel: u64) -> u64 {
    global * CHANNELS + channel
}

/// Struct-of-arrays device state: every hot per-device scalar lives in its
/// own parallel vec, indexed by dense local slot.
///
/// Cohort due-scans read only the `active`/`next_due`/`horizon` columns —
/// a few bytes per device, contiguous — and lane batching selects disjoint
/// `&mut Prover`s straight out of the `provers` column. A device's global
/// fleet index (keys, phase offsets, network flows) is `base + local`;
/// it is never stored per device.
struct DeviceState {
    provers: Vec<Prover>,
    verifiers: Vec<Verifier>,
    /// Stagger phase offsets.
    offsets: Vec<SimDuration>,
    /// Each device's last collection instant; no measurement is scheduled
    /// past it.
    horizons: Vec<SimTime>,
    /// Cached `Prover::next_measurement_due()`, refreshed after every
    /// schedule-mutating prover call (measure, batch measure, catch-up
    /// drain, rejoin skip): the cohort scan never touches the prover.
    next_due: Vec<SimTime>,
    /// Whether the device is currently part of the fleet (churn).
    active: Vec<bool>,
    /// Bumped on every churn transition: outstanding retry events from
    /// before the churn are recognized as stale and discarded.
    epochs: Vec<u32>,
    collect_seqs: Vec<u64>,
    od_request_seqs: Vec<u64>,
    od_response_seqs: Vec<u64>,
}

impl DeviceState {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            provers: Vec::with_capacity(capacity),
            verifiers: Vec::with_capacity(capacity),
            offsets: Vec::with_capacity(capacity),
            horizons: Vec::with_capacity(capacity),
            next_due: Vec::with_capacity(capacity),
            active: Vec::with_capacity(capacity),
            epochs: Vec::with_capacity(capacity),
            collect_seqs: Vec::with_capacity(capacity),
            od_request_seqs: Vec::with_capacity(capacity),
            od_response_seqs: Vec::with_capacity(capacity),
        }
    }

    fn push(&mut self, prover: Prover, verifier: Verifier, offset: SimDuration, horizon: SimTime) {
        self.next_due.push(prover.next_measurement_due());
        self.provers.push(prover);
        self.verifiers.push(verifier);
        self.offsets.push(offset);
        self.horizons.push(horizon);
        self.active.push(true);
        self.epochs.push(0);
        self.collect_seqs.push(0);
        self.od_request_seqs.push(0);
        self.od_response_seqs.push(0);
    }

    fn len(&self) -> usize {
        self.provers.len()
    }
}

/// The events a shard's timeline is made of.
///
/// Heavy payloads do not ride in the queue: collection responses and
/// on-demand exchanges live in the [`RunState`] event pools and the events
/// carry [`SlotId`]s, so a queued event is a couple of words regardless of
/// how much evidence it moves.
enum FleetEvent {
    /// A stagger cohort's scheduled self-measurements are due: every active
    /// member measures at this instant — in lane-interleaved groups when
    /// lanes are on, scalar width-1 jobs otherwise. One queue slot per
    /// (instant, cohort), coalesced at insertion.
    MeasureCohort { cohort: usize },
    /// The verifier's collection request reaches a device.
    CollectArrive { device: usize },
    /// A collection response reaches the verifier side.
    CollectDeliver {
        device: usize,
        /// The pooled [`CollectionResponse`].
        slot: SlotId,
        /// How many retransmissions this copy took (0 = first send).
        attempt: u32,
    },
    /// A dropped collection response's retransmission timer fires.
    CollectRetry {
        device: usize,
        /// The pooled [`CollectionResponse`] awaiting retransmission.
        slot: SlotId,
        /// The original send's collect sequence number: retry fault draws
        /// key off `(CHANNEL_RETRY, seq << 8 | attempt)`, so they never
        /// collide with first-send draws and stay partition-invariant.
        seq: u64,
        attempt: u32,
        /// Churn epoch at the original send: a device that left (or left
        /// and rejoined) mid-backoff must not replay stale evidence.
        epoch: u32,
    },
    /// The verifier hub crashes and restarts from a state snapshot.
    HubCrash,
    /// An authenticated on-demand request reaches a device.
    OnDemand {
        device: usize,
        request: OnDemandRequest,
        issued: SimTime,
    },
    /// An on-demand response reaches the verifier side; the exchange is
    /// pooled.
    OnDemandDeliver { slot: SlotId },
    /// A device drops out of the fleet.
    DeviceLeave { device: usize },
    /// A device rejoins the fleet and resumes its (phase-aligned) schedule.
    DeviceJoin { device: usize },
}

/// Pooled payload of an [`FleetEvent::OnDemandDeliver`] event.
struct OnDemandExchange {
    device: usize,
    request: OnDemandRequest,
    response: OnDemandResponse,
    issued: SimTime,
}

/// Mutable per-run accounting threaded through the event loop as the
/// [`Engine::run_with`] context.
struct RunState {
    request: CollectionRequest,
    /// Whether the run is expected to be gap-free (no loss, no churn,
    /// latency bounded below `T_M`): only then does a non-`AllHealthy`
    /// report verdict flag the run.
    strict: bool,
    /// Run seed, for latency-sample priorities.
    seed: u64,
    /// ARQ retry policy shared by the collect and frame hops.
    policy: RetryPolicy,
    measurements: u64,
    verifications: u64,
    measure_wall: Duration,
    verify_wall: Duration,
    all_healthy: bool,
    collect_attempted: u64,
    collect_delivered: u64,
    collect_dropped: u64,
    /// Collect-hop retransmissions actually sent.
    collect_retransmits: u64,
    /// Responses lost for good after the retry budget ran out.
    exhausted_retries: u64,
    /// Collection attempts lost because the device was absent (churn).
    churn_losses: u64,
    /// Retransmission timers that fired after the device left (or left and
    /// rejoined) — the stale copy is discarded, never replayed.
    stale_retries: u64,
    /// Deliveries that drew a reorder fault (extra in-flight delay).
    reorders: u64,
    /// `retry_histogram[a]` = deliveries that took `a` retransmissions.
    retry_histogram: Vec<u64>,
    od_attempted: u64,
    od_completed: u64,
    od_dropped: u64,
    od_latencies: LatencyReservoir,
    /// Verified reports of the current burst awaiting `ingest_batch` — the
    /// on-demand leg in wire mode, every delivery in struct mode.
    pending: Vec<CollectionReport>,
    /// Raw responses of the current burst awaiting frame encode + ingest
    /// (wire mode only; empty in struct mode).
    pending_responses: Vec<CollectionResponse>,
    pending_at: Option<SimTime>,
    batches: u64,
    largest_batch: u64,
    /// Wire delivery: serialize bursts and verify off the frames.
    wire: bool,
    wire_frames: u64,
    wire_bytes: u64,
    wire_responses: u64,
    wire_accepted: u64,
    wire_decode_rejects: u64,
    encode_wall: Duration,
    wire_ingest_wall: Duration,
    /// Reusable frame buffer, so steady-state encoding allocates nothing.
    frame_buf: Vec<u8>,
    /// Per-shard frame-link sequence counter (wire mode).
    frame_seq: u64,
    /// Frame-hop retransmissions actually sent.
    frame_retransmits: u64,
    /// Duplicate frame copies injected by the network (and deduplicated by
    /// the hub's flow window).
    frame_duplicates: u64,
    /// Corrupted frame copies the strict decoder rejected.
    corrupt_decode_drops: u64,
    /// Corrupted frame copies that decoded but failed MAC verification.
    corrupt_tamper_drops: u64,
    /// Frames lost for good after the retry budget ran out.
    frames_exhausted: u64,
    /// Response records carried by those exhausted frames.
    frame_lost_responses: u64,
    /// Hub crash/restart cycles survived via snapshot recovery.
    hub_crashes: u64,
    /// Total bytes of the recovery snapshots taken at those crashes.
    snapshot_bytes: u64,
    lane_jobs: u64,
    lane_remainder: u64,
    /// Pooled collection responses in flight through the ARQ loop.
    response_pool: EventPool<CollectionResponse>,
    /// Pooled on-demand exchanges in flight to the verifier.
    od_pool: EventPool<OnDemandExchange>,
    /// Reusable due-member scratch for cohort fires (no per-fire alloc).
    due_scratch: Vec<usize>,
    /// Measurement firings that went through the coalesced cohort path.
    events_scheduled: u64,
    /// Cohort fires: queue slots that actually carried due measurements.
    singleton_events: u64,
    /// Measurements that rode an already-occupied (instant, cohort) slot
    /// instead of their own queue entry.
    coalesced_events: u64,
}

impl RunState {
    fn new(
        strict: bool,
        wire: bool,
        seed: u64,
        policy: RetryPolicy,
        request: CollectionRequest,
    ) -> Self {
        let histogram_slots = policy.budget as usize + 1;
        Self {
            request,
            strict,
            seed,
            policy,
            measurements: 0,
            verifications: 0,
            measure_wall: Duration::ZERO,
            verify_wall: Duration::ZERO,
            all_healthy: true,
            collect_attempted: 0,
            collect_delivered: 0,
            collect_dropped: 0,
            collect_retransmits: 0,
            exhausted_retries: 0,
            churn_losses: 0,
            stale_retries: 0,
            reorders: 0,
            retry_histogram: vec![0; histogram_slots],
            od_attempted: 0,
            od_completed: 0,
            od_dropped: 0,
            od_latencies: LatencyReservoir::with_default_cap(),
            pending: Vec::new(),
            pending_responses: Vec::new(),
            pending_at: None,
            batches: 0,
            largest_batch: 0,
            wire,
            wire_frames: 0,
            wire_bytes: 0,
            wire_responses: 0,
            wire_accepted: 0,
            wire_decode_rejects: 0,
            encode_wall: Duration::ZERO,
            wire_ingest_wall: Duration::ZERO,
            frame_buf: Vec::new(),
            frame_seq: 0,
            frame_retransmits: 0,
            frame_duplicates: 0,
            corrupt_decode_drops: 0,
            corrupt_tamper_drops: 0,
            frames_exhausted: 0,
            frame_lost_responses: 0,
            hub_crashes: 0,
            snapshot_bytes: 0,
            lane_jobs: 0,
            lane_remainder: 0,
            response_pool: EventPool::new(),
            od_pool: EventPool::new(),
            due_scratch: Vec::new(),
            events_scheduled: 0,
            singleton_events: 0,
            coalesced_events: 0,
        }
    }

    /// Folds one verified report into the health verdict. Gap verdicts
    /// (missing/tampering) only count against a gap-free run; authentic
    /// evidence of forged or compromised measurements always does.
    fn note_health(&mut self, report: &CollectionReport, scheduled: bool) {
        if self.strict && scheduled {
            self.all_healthy &= report.all_valid();
        } else {
            self.all_healthy &= report_is_clean(report);
        }
    }
}

fn report_is_clean(report: &CollectionReport) -> bool {
    report
        .with_verdict(MeasurementVerdict::Forged)
        .next()
        .is_none()
        && report
            .with_verdict(MeasurementVerdict::Compromised)
            .next()
            .is_none()
}

/// One stagger cohort: the local devices sharing a phase offset, i.e.
/// exactly the devices whose self-measurements fire at the same simulated
/// instants. Cohorts drive measurement in every mode — the queue holds one
/// `MeasureCohort` slot per (instant, cohort), never one event per device.
struct Cohort {
    /// Local device indices, ascending (provision order).
    members: Vec<usize>,
    /// Time of the authoritative pending [`FleetEvent::MeasureCohort`]
    /// event, if any. Events firing at any other time are superseded
    /// duplicates and ignored; scheduling only ever moves this earlier.
    scheduled: Option<SimTime>,
}

/// A worker thread's slice of the fleet.
pub(crate) struct Shard {
    index: usize,
    /// Global fleet index of the shard's first device: the range is
    /// contiguous, so `global - base` recovers the local index when a
    /// decoded frame record is routed back to its verifier.
    base: usize,
    devices: DeviceState,
    hub: VerifierHub,
    engine: Engine<FleetEvent>,
    /// `(local index, leave, rejoin)` churn plan, drawn per global device.
    churn: Vec<(usize, SimTime, SimTime)>,
    /// `(local index, issue instant)` on-demand plan, sorted by time.
    on_demand: Vec<(usize, SimTime)>,
    /// Effective lane width for batched measurement (1 = scalar jobs).
    lane_width: usize,
    /// Stagger cohorts (one per phase offset present in this shard).
    cohorts: Vec<Cohort>,
    /// Local device index → cohort index.
    cohort_of: Vec<usize>,
}

/// What one shard contributed to a fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index (0-based, matches spawn order).
    pub shard: usize,
    /// Devices driven by this shard.
    pub provers: usize,
    /// Self-measurements taken by this shard's devices.
    pub measurements: u64,
    /// Measurement MACs verified from this shard's delivered reports.
    pub verifications: u64,
    /// Wall-clock time this shard spent taking measurements.
    pub measure_wall: Duration,
    /// Wall-clock time this shard spent collecting and verifying.
    pub verify_wall: Duration,
    /// Simulated busy time accumulated by this shard's provers.
    pub simulated_busy: SimDuration,
    /// Whether every delivered report of this shard verified healthy (see
    /// `FleetReport::all_healthy` for the loss/churn semantics).
    pub all_healthy: bool,
    /// Scheduled collection attempts against this shard's devices.
    pub collections_attempted: u64,
    /// Collection responses that reached the verifier side.
    pub collections_delivered: u64,
    /// Collection attempts lost to the network or to absent devices.
    pub collections_dropped: u64,
    /// Collect-hop retransmissions sent under the ARQ policy.
    pub collect_retransmits: u64,
    /// Responses lost for good after the retry budget ran out.
    pub exhausted_retries: u64,
    /// Collection attempts lost because the device was absent (churn);
    /// counted inside `collections_dropped`.
    pub churn_losses: u64,
    /// Retransmission timers that fired after the device had left — the
    /// stale copy is discarded; counted inside `collections_dropped`.
    pub stale_retries: u64,
    /// Deliveries that drew a reorder fault (extra in-flight delay).
    pub reorders: u64,
    /// `retry_histogram[a]` = deliveries that took `a` retransmissions
    /// (length = retry budget + 1).
    pub retry_histogram: Vec<u64>,
    /// Frame-hop retransmissions sent under the ARQ policy.
    pub frame_retransmits: u64,
    /// Duplicate frame copies injected by the network.
    pub frame_duplicates: u64,
    /// Corrupted frame copies the strict decoder rejected live.
    pub corrupt_decode_drops: u64,
    /// Corrupted frame copies that decoded but failed MAC verification.
    pub corrupt_tamper_drops: u64,
    /// Frames lost for good after the retry budget ran out.
    pub frames_exhausted: u64,
    /// Response records carried by those exhausted frames.
    pub frame_lost_responses: u64,
    /// Duplicate frames the hub's dedup window dropped.
    pub hub_duplicates: u64,
    /// Hub crash/restart cycles survived via snapshot recovery.
    pub hub_crashes: u64,
    /// Total bytes of the recovery snapshots taken at those crashes.
    pub snapshot_bytes: u64,
    /// Delivery bursts folded into the shard hub via `ingest_batch`.
    pub hub_batches: u64,
    /// Largest single delivery burst.
    pub largest_batch: u64,
    /// Encoded collection batch frames this shard ingested (wire mode; 0
    /// on the struct path).
    pub wire_frames: u64,
    /// Total bytes of those frames, count headers included.
    pub wire_bytes: u64,
    /// Response records carried by the ingested frames.
    pub wire_responses: u64,
    /// Frame-decoded responses whose reports the hub accepted.
    pub wire_accepted: u64,
    /// Frames the strict decoder rejected — always 0 for the shard's own
    /// well-formed frames; tracked so the fleet report's accounting
    /// mirrors the fuzz harness's.
    pub wire_decode_rejects: u64,
    /// Wall-clock time spent serializing frames (not part of
    /// `verify_wall`: the struct path has no encode leg).
    pub encode_wall: Duration,
    /// Wall-clock time of the frame-ingest spans (decode + verify + hub
    /// fold); included in `verify_wall`.
    pub wire_ingest_wall: Duration,
    /// On-demand requests issued against this shard's devices.
    pub on_demand_attempted: u64,
    /// On-demand exchanges that completed end to end.
    pub on_demand_completed: u64,
    /// Bounded, merge-invariant sample of the simulated end-to-end
    /// latencies of completed on-demand exchanges.
    pub on_demand_latencies: LatencyReservoir,
    /// Devices of this shard that leave and rejoin during the run.
    pub devices_churned: u64,
    /// Multi-lane hash jobs this shard executed (lane-batched mode).
    pub lane_jobs: u64,
    /// Measurements that fell back to the scalar path as the ragged
    /// remainder of a lane-batched cohort (fewer than 4 devices left after
    /// the lane groups). Catch-up drains outside the cohort path (e.g. a
    /// device collected mid-lattice under extreme latency) are scalar too
    /// but are not counted here.
    pub lane_remainder: u64,
    /// Measurement firings that went through the coalesced cohort path.
    pub events_scheduled: u64,
    /// Cohort fires — queue slots that carried at least one due
    /// measurement.
    pub singleton_events: u64,
    /// Measurements that rode an already-occupied (instant, cohort) queue
    /// slot. Conservation: `coalesced_events + singleton_events ==
    /// events_scheduled`.
    pub coalesced_events: u64,
    /// Peak live slots across the shard's event payload pools — bounded
    /// even under heavy churn, because every abandoned event recycles its
    /// slot.
    pub event_pool_high_water: u64,
    /// Lifetime counters of the shard engine's event queue.
    pub queue: QueueStats,
}

impl ShardReport {
    /// Renders the shard as one JSON object of the `per_thread` array.
    pub fn to_json(&self, indent: &str) -> String {
        format!(
            "{indent}{{ \"shard\": {shard}, \"provers\": {provers}, \
             \"measurements\": {meas}, \"verifications\": {verif}, \
             \"measure_wall_secs\": {mw:.6}, \"verify_wall_secs\": {vw:.6}, \
             \"collections_attempted\": {att}, \"collections_delivered\": {del}, \
             \"collections_dropped\": {drop}, \"hub_batches\": {batches}, \
             \"largest_batch\": {largest}, \"wire_frames\": {wframes}, \
             \"wire_bytes\": {wbytes}, \"wire_accepted\": {waccepted}, \
             \"encode_wall_secs\": {wenc:.6}, \"wire_ingest_wall_secs\": {wing:.6}, \
             \"lane_jobs\": {lane_jobs}, \
             \"events_scheduled\": {ev_sched}, \"singleton_events\": {ev_single}, \
             \"coalesced_events\": {ev_coal}, \"event_pool_high_water\": {pool_hw}, \
             \"queue_pushes\": {q_push}, \"queue_pops\": {q_pop}, \
             \"queue_overflow_pushes\": {q_ovf}, \"queue_max_pending\": {q_max}, \
             \"all_healthy\": {healthy} }}",
            shard = self.shard,
            provers = self.provers,
            meas = self.measurements,
            verif = self.verifications,
            mw = self.measure_wall.as_secs_f64(),
            vw = self.verify_wall.as_secs_f64(),
            att = self.collections_attempted,
            del = self.collections_delivered,
            drop = self.collections_dropped,
            batches = self.hub_batches,
            largest = self.largest_batch,
            wframes = self.wire_frames,
            wbytes = self.wire_bytes,
            waccepted = self.wire_accepted,
            wenc = self.encode_wall.as_secs_f64(),
            wing = self.wire_ingest_wall.as_secs_f64(),
            lane_jobs = self.lane_jobs,
            ev_sched = self.events_scheduled,
            ev_single = self.singleton_events,
            ev_coal = self.coalesced_events,
            pool_hw = self.event_pool_high_water,
            q_push = self.queue.pushes,
            q_pop = self.queue.pops,
            q_ovf = self.queue.overflow_pushes,
            q_max = self.queue.max_pending,
            healthy = self.all_healthy,
        )
    }
}

impl Shard {
    /// Provisions the devices with global fleet indices `range`: per-device
    /// keys, precomputed MAC schedules, reference digests, phase offsets —
    /// plus the shard's slices of the deterministic churn and on-demand
    /// plans.
    ///
    /// `on_demand_plan` is the fleet-wide `(global device, issue instant)`
    /// plan (time-sorted); the shard keeps the entries that fall into its
    /// range. The churn plan is drawn here, from a per-device RNG keyed by
    /// the global index, so both plans are independent of the partition.
    pub(crate) fn provision(
        index: usize,
        config: &FleetConfig,
        schedule: &StaggeredSchedule,
        range: Range<usize>,
        on_demand_plan: &[(usize, SimTime)],
    ) -> Self {
        let buffer_slots = config.measurements_per_round.max(1);
        let round_span = MEASUREMENT_INTERVAL * config.measurements_per_round as u64;
        let span = round_span * config.rounds as u64;
        let mut devices = DeviceState::with_capacity(range.len());
        for i in range.clone() {
            // The device's phase offset goes into its *prover schedule*:
            // measurements genuinely fire at `offset + k·T_M`, so at any
            // simulated instant only one stagger group is busy measuring.
            let offset = schedule.offset(i);
            let prover_config = ProverConfig::builder()
                .measurement_interval(MEASUREMENT_INTERVAL)
                .buffer_slots(buffer_slots)
                .mac_algorithm(config.algorithm)
                .phase_offset(offset)
                .build()
                .expect("fleet prover config is valid");
            let key = DeviceKey::derive(b"erasmus-fleet", i as u64);
            let prover = Prover::new(
                DeviceId::new(i as u64),
                DeviceProfile::msp430_8mhz(config.memory_bytes),
                key.clone(),
                prover_config,
            )
            .expect("fleet prover provisions");
            let mut verifier = Verifier::new(key, config.algorithm);
            verifier.learn_reference_image(prover.mcu().app_memory());
            verifier.set_expected_interval(MEASUREMENT_INTERVAL);
            devices.push(prover, verifier, offset, SimTime::ZERO + span + offset);
        }

        let churn = if config.churn > 0.0 {
            range
                .clone()
                .filter_map(|i| {
                    let mut rng = SimRng::seed_from(
                        config.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ CHURN_STREAM,
                    );
                    if !rng.gen_bool(config.churn) {
                        return None;
                    }
                    let leave = rng.gen_range(span.as_nanos() / 4, span.as_nanos() / 2);
                    let dwell = rng.gen_range(span.as_nanos() / 8, span.as_nanos() / 4);
                    Some((
                        i - range.start,
                        SimTime::from_nanos(leave),
                        SimTime::from_nanos(leave + dwell),
                    ))
                })
                .collect()
        } else {
            Vec::new()
        };

        let on_demand = on_demand_plan
            .iter()
            .filter(|(device, _)| range.contains(device))
            .map(|&(device, at)| (device - range.start, at))
            .collect();

        // Group the shard's devices into stagger cohorts — one cohort per
        // phase offset, i.e. per set of devices whose measurements are due
        // at the same simulated instants. Cohorts drive measurement in
        // every mode: the queue holds one coalesced event per (instant,
        // cohort) whether the jobs then run lane-batched or scalar.
        let lane_width = super::lanes::effective_width(config.lanes);
        let mut cohorts: Vec<Cohort> = Vec::new();
        let mut cohort_of: Vec<usize> = Vec::with_capacity(devices.len());
        let mut by_group: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for local in 0..devices.len() {
            let group = schedule.group_of(range.start + local);
            let cohort = *by_group.entry(group).or_insert_with(|| {
                cohorts.push(Cohort {
                    members: Vec::new(),
                    scheduled: None,
                });
                cohorts.len() - 1
            });
            cohorts[cohort].members.push(local);
            cohort_of.push(cohort);
        }

        Self {
            index,
            base: range.start,
            devices,
            hub: VerifierHub::with_history(config.history),
            engine: Engine::with_scheduler(config.scheduler),
            churn,
            on_demand,
            lane_width,
            cohorts,
            cohort_of,
        }
    }

    /// Drives this shard's event loop to completion.
    ///
    /// A device with phase offset `o` measures at `o + k·T_M` and is
    /// collected at its *own* staggered instants `r·round_span + o`, so
    /// staggering shifts whole timelines without changing how many
    /// measurements a round yields: offsets stay strictly inside `T_M`,
    /// hence exactly `measurements_per_round` measurements fall into every
    /// device's collection window regardless of its group. Loss, latency,
    /// churn and on-demand traffic perturb that timeline only through
    /// deterministic per-device draws, keeping every total thread-count-
    /// invariant.
    pub(crate) fn run(&mut self, config: &FleetConfig) -> ShardReport {
        let network = NetworkModel::new(config.network, config.seed);
        // Strict (AllHealthy-or-bust) health accounting is only sound when
        // nothing can legitimately open a gap: no loss, no churn, no
        // injected faults (an exhausted frame or a reorder-delayed delivery
        // legitimately shifts coverage windows), and latency small against
        // `T_M` — a delivery shifted by `T_M` or more moves the verifier's
        // coverage window enough to report a missing measurement on a
        // perfectly healthy fleet.
        let strict = config.network.loss == 0.0
            && config.churn == 0.0
            && !config.network.has_faults()
            && config.network.base_latency + config.network.jitter < MEASUREMENT_INTERVAL;
        let mut state = RunState::new(
            strict,
            config.wire,
            config.seed,
            RetryPolicy::with_budget(config.retries),
            CollectionRequest::latest(config.measurements_per_round),
        );
        let round_span = MEASUREMENT_INTERVAL * config.measurements_per_round as u64;
        let span = round_span * config.rounds as u64;
        let mut engine = std::mem::take(&mut self.engine);

        // Seed the timeline. Hub crashes go in FIRST: the engine breaks
        // time ties FIFO, so crash events scheduled before everything else
        // fire before any same-instant delivery — the crash boundary never
        // splits a burst differently across thread counts.
        for k in 1..=config.hub_crashes {
            let at = SimTime::ZERO
                + SimDuration::from_nanos(
                    span.as_nanos() / (config.hub_crashes as u64 + 1) * k as u64,
                );
            engine.schedule_at(at, FleetEvent::HubCrash);
        }
        // Then every scheduled collection arrival, one coalesced measure
        // event per cohort (never one per device), the churn plan, and the
        // on-demand plan (whose requests are built now, in issue order, so
        // each device's `t_req` values are strictly increasing).
        for local in 0..self.devices.len() {
            for round in 1..=config.rounds {
                let at = SimTime::ZERO + round_span * round as u64 + self.devices.offsets[local];
                engine.schedule_at(at, FleetEvent::CollectArrive { device: local });
            }
        }
        for (index, cohort) in self.cohorts.iter_mut().enumerate() {
            let next = cohort
                .members
                .iter()
                .filter_map(|&member| {
                    let due = self.devices.next_due[member];
                    (due <= self.devices.horizons[member]).then_some(due)
                })
                .min();
            if let Some(at) = next {
                cohort.scheduled = Some(at);
                engine.schedule_at(at, FleetEvent::MeasureCohort { cohort: index });
            }
        }
        for &(local, leave, rejoin) in &self.churn {
            engine.schedule_at(leave, FleetEvent::DeviceLeave { device: local });
            engine.schedule_at(rejoin, FleetEvent::DeviceJoin { device: local });
        }
        let plan = std::mem::take(&mut self.on_demand);
        for &(local, issued) in &plan {
            let request = self.devices.verifiers[local]
                .make_on_demand_request(config.measurements_per_round, issued);
            state.od_attempted += 1;
            let seq = self.devices.od_request_seqs[local];
            self.devices.od_request_seqs[local] += 1;
            let global = (self.base + local) as u64;
            match network.sample(flow(global, CHANNEL_OD_REQUEST), seq) {
                Delivery::Dropped => state.od_dropped += 1,
                Delivery::Delivered(latency) => engine.schedule_at(
                    issued + latency,
                    FleetEvent::OnDemand {
                        device: local,
                        request,
                        issued,
                    },
                ),
            }
        }
        self.on_demand = plan;

        engine.run_with(&mut state, |engine, state, event| {
            self.handle(engine, state, &network, event);
            true
        });
        self.flush_batch(&mut state, &network);
        // Every delivered or abandoned event gave its pooled slot back; a
        // drained queue with live slots would be a leak.
        assert!(
            state.response_pool.is_empty(),
            "all pooled collection responses are consumed"
        );
        assert!(
            state.od_pool.is_empty(),
            "all pooled on-demand exchanges are consumed"
        );
        let queue = engine.queue_stats();
        self.engine = engine;

        let simulated_busy = self
            .devices
            .provers
            .iter()
            .map(|prover| prover.total_busy_time())
            .fold(SimDuration::ZERO, |acc, busy| acc + busy);

        ShardReport {
            shard: self.index,
            provers: self.devices.len(),
            measurements: state.measurements,
            verifications: state.verifications,
            measure_wall: state.measure_wall,
            verify_wall: state.verify_wall,
            simulated_busy,
            all_healthy: state.all_healthy,
            collections_attempted: state.collect_attempted,
            collections_delivered: state.collect_delivered,
            collections_dropped: state.collect_dropped,
            collect_retransmits: state.collect_retransmits,
            exhausted_retries: state.exhausted_retries,
            churn_losses: state.churn_losses,
            stale_retries: state.stale_retries,
            reorders: state.reorders,
            retry_histogram: state.retry_histogram,
            frame_retransmits: state.frame_retransmits,
            frame_duplicates: state.frame_duplicates,
            corrupt_decode_drops: state.corrupt_decode_drops,
            corrupt_tamper_drops: state.corrupt_tamper_drops,
            frames_exhausted: state.frames_exhausted,
            frame_lost_responses: state.frame_lost_responses,
            hub_duplicates: self.hub.duplicates(),
            hub_crashes: state.hub_crashes,
            snapshot_bytes: state.snapshot_bytes,
            hub_batches: state.batches,
            largest_batch: state.largest_batch,
            wire_frames: state.wire_frames,
            wire_bytes: state.wire_bytes,
            wire_responses: state.wire_responses,
            wire_accepted: state.wire_accepted,
            wire_decode_rejects: state.wire_decode_rejects,
            encode_wall: state.encode_wall,
            wire_ingest_wall: state.wire_ingest_wall,
            on_demand_attempted: state.od_attempted,
            on_demand_completed: state.od_completed,
            on_demand_latencies: state.od_latencies,
            devices_churned: self.churn.len() as u64,
            lane_jobs: state.lane_jobs,
            lane_remainder: state.lane_remainder,
            events_scheduled: state.events_scheduled,
            singleton_events: state.singleton_events,
            coalesced_events: state.coalesced_events,
            event_pool_high_water: (state.response_pool.high_water() + state.od_pool.high_water())
                as u64,
            queue,
        }
    }

    /// One event of the shard timeline.
    fn handle(
        &mut self,
        engine: &mut Engine<FleetEvent>,
        state: &mut RunState,
        network: &NetworkModel,
        event: ScheduledEvent<FleetEvent>,
    ) {
        let now = event.time;
        match event.payload {
            FleetEvent::MeasureCohort { cohort } => {
                if self.cohorts[cohort].scheduled != Some(now) {
                    return; // superseded by an earlier reschedule
                }
                self.cohorts[cohort].scheduled = None;
                self.measure_cohort(engine, state, cohort, now);
            }
            FleetEvent::CollectArrive { device } => {
                state.collect_attempted += 1;
                // If this device's cohort is due at this very instant, fire
                // the whole batch first — otherwise the per-device drain
                // below would take this device's measurement scalar and
                // shrink the lane group (and, in every mode, cohort members
                // must measure before any same-instant collection reads a
                // buffer).
                let cohort = self.cohort_of[device];
                if self.cohorts[cohort].scheduled == Some(now) {
                    self.cohorts[cohort].scheduled = None;
                    self.measure_cohort(engine, state, cohort, now);
                }
                if !self.devices.active[device] {
                    // An absent device answers nothing: the attempt is lost.
                    state.collect_dropped += 1;
                    state.churn_losses += 1;
                    return;
                }
                // `run_until` semantics: a measurement due exactly at the
                // collection instant happens before the buffer is read.
                if self.devices.next_due[device] <= now {
                    self.devices.next_due[device] =
                        drain_due_measurements(&mut self.devices.provers[device], now, state);
                }
                let started = Instant::now();
                let response = self.devices.provers[device].handle_collection(&state.request, now);
                state.verify_wall += started.elapsed();
                let seq = self.devices.collect_seqs[device];
                self.devices.collect_seqs[device] += 1;
                let epoch = self.devices.epochs[device];
                let slot = state.response_pool.insert(response);
                self.dispatch_collection(engine, state, network, device, slot, seq, 0, epoch, now);
            }
            FleetEvent::CollectRetry {
                device,
                slot,
                seq,
                attempt,
                epoch,
            } => {
                if !self.devices.active[device] || self.devices.epochs[device] != epoch {
                    // The device churned mid-backoff: the buffered copy is
                    // stale evidence and must not be replayed — and its
                    // pooled slot is recycled, so churn can never grow the
                    // pool unboundedly.
                    state.collect_dropped += 1;
                    state.stale_retries += 1;
                    state
                        .response_pool
                        .take(slot)
                        .expect("stale retry still owns its slot");
                    return;
                }
                state.collect_retransmits += 1;
                self.dispatch_collection(
                    engine, state, network, device, slot, seq, attempt, epoch, now,
                );
            }
            FleetEvent::CollectDeliver {
                device,
                slot,
                attempt,
            } => {
                state.collect_delivered += 1;
                state.retry_histogram[attempt as usize] += 1;
                let response = state
                    .response_pool
                    .take(slot)
                    .expect("delivered response owns its slot");
                if state.wire {
                    // Wire delivery: the response joins the current burst
                    // as-is; the whole burst is frame-encoded, decoded and
                    // verified off the bytes when it seals (`flush_batch`).
                    self.push_response(state, network, now, response);
                } else {
                    let started = Instant::now();
                    let report = self.devices.verifiers[device]
                        .verify_collection(&response, now)
                        .expect("fleet collection verifies");
                    state.verify_wall += started.elapsed();
                    state.verifications += report.measurements().len() as u64;
                    state.note_health(&report, true);
                    self.push_report(state, network, now, report);
                }
            }
            FleetEvent::OnDemand {
                device,
                request,
                issued,
            } => {
                if !self.devices.active[device] {
                    state.od_dropped += 1;
                    return;
                }
                // The fresh measurement dominates the cost of serving the
                // request, so the exchange is timed as measurement work.
                let started = Instant::now();
                let outcome = self.devices.provers[device].handle_on_demand(&request, now);
                state.measure_wall += started.elapsed();
                self.devices.next_due[device] = self.devices.provers[device].next_measurement_due();
                match outcome {
                    // Rejected requests (e.g. reordered arrivals tripping
                    // the anti-replay check) fail the exchange, not the run.
                    Err(_) => state.od_dropped += 1,
                    Ok(response) => {
                        state.measurements += 1; // the fresh M_0
                        let seq = self.devices.od_response_seqs[device];
                        self.devices.od_response_seqs[device] += 1;
                        let global = (self.base + device) as u64;
                        match network.sample(flow(global, CHANNEL_OD_RESPONSE), seq) {
                            Delivery::Dropped => state.od_dropped += 1,
                            Delivery::Delivered(latency) => {
                                let slot = state.od_pool.insert(OnDemandExchange {
                                    device,
                                    request,
                                    response,
                                    issued,
                                });
                                engine.schedule_at(
                                    now + latency,
                                    FleetEvent::OnDemandDeliver { slot },
                                );
                            }
                        }
                    }
                }
            }
            FleetEvent::OnDemandDeliver { slot } => {
                let exchange = state
                    .od_pool
                    .take(slot)
                    .expect("delivered exchange owns its slot");
                let device = exchange.device;
                let started = Instant::now();
                let verified = self.devices.verifiers[device].verify_on_demand(
                    &exchange.request,
                    &exchange.response,
                    now,
                );
                state.verify_wall += started.elapsed();
                match verified {
                    Ok(report) => {
                        state.od_completed += 1;
                        let global = (self.base + device) as u64;
                        let priority =
                            sample_priority(state.seed, global, exchange.issued.as_nanos());
                        state
                            .od_latencies
                            .push(priority, now.saturating_duration_since(exchange.issued));
                        state.verifications += report.measurements().len() as u64;
                        state.note_health(&report, false);
                        self.push_report(state, network, now, report);
                    }
                    Err(_) => state.od_dropped += 1,
                }
            }
            FleetEvent::HubCrash => {
                // Crash boundary. The burst in flight flushes first (frames
                // already on the wire are the network's problem, not the
                // restarting verifier's), then the hub is checkpointed,
                // dropped, and rebuilt from the snapshot bytes alone — and
                // the rebuilt state must be bit-identical.
                self.flush_batch(state, network);
                let snapshot = encode_hub_snapshot(&self.hub);
                let restored = decode_hub_snapshot(&snapshot).expect("hub snapshot round-trips");
                assert_eq!(restored, self.hub, "hub restores bit-identically");
                self.hub = restored;
                state.hub_crashes += 1;
                state.snapshot_bytes += snapshot.len() as u64;
            }
            FleetEvent::DeviceLeave { device } => {
                if self.devices.active[device] {
                    self.devices.active[device] = false;
                    self.devices.epochs[device] += 1;
                }
            }
            FleetEvent::DeviceJoin { device } => {
                if !self.devices.active[device] {
                    self.devices.active[device] = true;
                    self.devices.epochs[device] += 1;
                    let prover = &mut self.devices.provers[device];
                    prover.skip_missed_measurements(now);
                    let next = prover.next_measurement_due();
                    self.devices.next_due[device] = next;
                    if next <= self.devices.horizons[device] {
                        // The rejoin stays on the cohort lattice
                        // (skip_until is phase-aligned), so pulling the
                        // cohort's next event forward covers it.
                        let cohort = self.cohort_of[device];
                        self.schedule_cohort_at(engine, cohort, next);
                    }
                }
            }
        }
    }

    /// Puts one copy of a collection response on the wire (first send or
    /// retransmission) and schedules what its fate implies.
    ///
    /// Attempt 0 draws on the device's collection flow with the original
    /// sequence — bit-compatible with the pre-ARQ timeline — while
    /// retransmissions draw on the dedicated retry channel keyed by
    /// `(seq, attempt)`, so every copy's fate is an independent,
    /// partition-invariant function of the run seed. A reorder fault
    /// stretches the copy's in-flight latency, letting later sends
    /// genuinely overtake it; a drop either arms the backoff timer or,
    /// with the budget spent, loses the response for good — recycling its
    /// pooled slot.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_collection(
        &mut self,
        engine: &mut Engine<FleetEvent>,
        state: &mut RunState,
        network: &NetworkModel,
        device: usize,
        slot: SlotId,
        seq: u64,
        attempt: u32,
        epoch: u32,
        now: SimTime,
    ) {
        let global = (self.base + device) as u64;
        let (fault_flow, fault_seq) = if attempt == 0 {
            (flow(global, CHANNEL_COLLECT), seq)
        } else {
            (flow(global, CHANNEL_RETRY), (seq << 8) | attempt as u64)
        };
        match network.sample(fault_flow, fault_seq) {
            Delivery::Delivered(latency) => {
                let mut latency = latency;
                if let Some(extra) = network.sample_faults(fault_flow, fault_seq).reorder {
                    latency += extra;
                    state.reorders += 1;
                }
                engine.schedule_at(
                    now + latency,
                    FleetEvent::CollectDeliver {
                        device,
                        slot,
                        attempt,
                    },
                );
            }
            Delivery::Dropped => {
                if state.policy.allows_retry(attempt) {
                    engine.schedule_at(
                        now + state.policy.backoff(attempt),
                        FleetEvent::CollectRetry {
                            device,
                            slot,
                            seq,
                            attempt: attempt + 1,
                            epoch,
                        },
                    );
                } else {
                    state.collect_dropped += 1;
                    state.exhausted_retries += 1;
                    state
                        .response_pool
                        .take(slot)
                        .expect("exhausted response owns its slot");
                }
            }
        }
    }

    /// Fires every due measurement of a stagger cohort at `now` as
    /// lane-interleaved batch jobs: groups of `lane_width` (with a narrower
    /// 4-lane pass when an 8-lane shard leaves 4–7 devices over) hash their
    /// memory images in lockstep through `Prover::self_measure_batch`; the
    /// ragged remainder falls back to the scalar path. Every device's
    /// measurement is bit-identical to the scalar timeline, so totals,
    /// health and hub coverage do not depend on the lane width.
    fn measure_cohort(
        &mut self,
        engine: &mut Engine<FleetEvent>,
        state: &mut RunState,
        cohort: usize,
        now: SimTime,
    ) {
        // The due-scan touches only the active/next_due columns — dense,
        // contiguous reads — and reuses one scratch vec across fires.
        let mut due = std::mem::take(&mut state.due_scratch);
        due.clear();
        for &local in &self.cohorts[cohort].members {
            if !self.devices.active[local] {
                continue;
            }
            let next = self.devices.next_due[local];
            if next < now {
                // A member that fell behind the lattice (e.g. drained at a
                // collect instant under extreme latency) catches up scalar.
                self.devices.next_due[local] =
                    drain_due_measurements(&mut self.devices.provers[local], now, state);
                continue;
            }
            if next == now {
                due.push(local);
            }
        }

        if !due.is_empty() {
            // Coalescing ledger: these measurements ride ONE queue slot.
            state.events_scheduled += due.len() as u64;
            state.singleton_events += 1;
            state.coalesced_events += due.len() as u64 - 1;
            let started = Instant::now();
            let mut rest: &[usize] = &due;
            if self.lane_width >= 8 {
                while rest.len() >= 8 {
                    let (group, tail) = rest.split_at(8);
                    self.measure_lane_group::<8>(group.try_into().expect("8 lanes"), now, state);
                    rest = tail;
                }
            }
            if self.lane_width >= 4 {
                while rest.len() >= 4 {
                    let (group, tail) = rest.split_at(4);
                    self.measure_lane_group::<4>(group.try_into().expect("4 lanes"), now, state);
                    rest = tail;
                }
            }
            for &local in rest {
                self.devices.provers[local]
                    .self_measure(now)
                    .expect("fleet measurement");
                self.devices.next_due[local] = self.devices.provers[local].next_measurement_due();
                state.measurements += 1;
                if self.lane_width > 1 {
                    state.lane_remainder += 1;
                }
            }
            state.measure_wall += started.elapsed();
        }
        due.clear();
        state.due_scratch = due;

        self.schedule_cohort_next(engine, cohort);
    }

    /// One multi-lane measurement job over `N` cohort members (ascending
    /// local indices), selected as disjoint `&mut Prover`s straight out of
    /// the SoA prover column.
    fn measure_lane_group<const N: usize>(
        &mut self,
        group: [usize; N],
        now: SimTime,
        state: &mut RunState,
    ) {
        let provers = select_mut(&mut self.devices.provers, &group);
        Prover::self_measure_batch(provers, now).expect("fleet lane measurement");
        for &local in &group {
            self.devices.next_due[local] = self.devices.provers[local].next_measurement_due();
        }
        state.measurements += N as u64;
        state.lane_jobs += 1;
    }

    /// Schedules a cohort's next authoritative measure event at the
    /// earliest due time among its active members (within their horizon).
    /// Reads only the SoA columns — no prover access.
    fn schedule_cohort_next(&mut self, engine: &mut Engine<FleetEvent>, cohort: usize) {
        let next = self.cohorts[cohort]
            .members
            .iter()
            .filter_map(|&member| {
                if !self.devices.active[member] {
                    return None;
                }
                let due = self.devices.next_due[member];
                (due <= self.devices.horizons[member]).then_some(due)
            })
            .min();
        if let Some(at) = next {
            self.schedule_cohort_at(engine, cohort, at);
        }
    }

    /// Makes `at` the cohort's authoritative next measure instant if it is
    /// earlier than the currently scheduled one. The superseded event stays
    /// queued and is ignored when it fires (time mismatch).
    fn schedule_cohort_at(&mut self, engine: &mut Engine<FleetEvent>, cohort: usize, at: SimTime) {
        let entry = &mut self.cohorts[cohort];
        match entry.scheduled {
            Some(current) if current <= at => {}
            _ => {
                entry.scheduled = Some(at);
                engine.schedule_at(at, FleetEvent::MeasureCohort { cohort });
            }
        }
    }

    /// Buffers a verified report into the current delivery burst; a new
    /// arrival instant seals the previous burst into the hub.
    fn push_report(
        &mut self,
        state: &mut RunState,
        network: &NetworkModel,
        at: SimTime,
        report: CollectionReport,
    ) {
        if state.pending_at != Some(at) {
            self.flush_batch(state, network);
            state.pending_at = Some(at);
        }
        state.pending.push(report);
    }

    /// Buffers a raw collection response into the current delivery burst
    /// (wire mode), under the same sealing rule as [`Shard::push_report`]:
    /// mixed bursts — frame-bound collections plus struct-path on-demand
    /// reports landing at the same instant — seal and flush together.
    fn push_response(
        &mut self,
        state: &mut RunState,
        network: &NetworkModel,
        at: SimTime,
        response: CollectionResponse,
    ) {
        if state.pending_at != Some(at) {
            self.flush_batch(state, network);
            state.pending_at = Some(at);
        }
        state.pending_responses.push(response);
    }

    /// Seals the buffered burst into the shard hub.
    ///
    /// Wire mode first: the burst's raw responses are serialized into
    /// framed batch buffers — chunked at [`MAX_BATCH_RESPONSES`], since a
    /// single-group stagger can put a whole shard into one instant — and
    /// carried across the frame link by [`Shard::deliver_frame`]'s ARQ
    /// loop, which verifies each record zero-copy off the frame, at the
    /// burst's arrival instant, by the device's own verifier. Any
    /// already-verified struct reports (the on-demand leg, or everything
    /// in struct mode) then fold in via `ingest_batch`. A mixed burst
    /// still counts as *one* batch with its combined size, so burst
    /// accounting is bit-identical across delivery modes. Encoding is
    /// timed separately (`encode_wall`); the ingest span lands in both
    /// `wire_ingest_wall` and `verify_wall`, which is where the struct
    /// path's verification time lives.
    fn flush_batch(&mut self, state: &mut RunState, network: &NetworkModel) {
        if state.pending.is_empty() && state.pending_responses.is_empty() {
            state.pending_at = None;
            return;
        }
        let burst = (state.pending.len() + state.pending_responses.len()) as u64;
        if !state.pending_responses.is_empty() {
            let at = state
                .pending_at
                .expect("a non-empty burst has an arrival instant");
            let mut responses = std::mem::take(&mut state.pending_responses);
            let mut frame = std::mem::take(&mut state.frame_buf);
            let frame_flow = FRAME_STREAM ^ self.base as u64;
            for chunk in responses.chunks(MAX_BATCH_RESPONSES) {
                frame.clear();
                let started = Instant::now();
                encode_collection_batch_into(&mut frame, chunk);
                state.encode_wall += started.elapsed();
                // First-send accounting: however many times the ARQ loop
                // below re-carries this frame, it counts once here, so the
                // wire totals stay comparable across fault settings.
                state.wire_frames += 1;
                state.wire_bytes += frame.len() as u64;
                let frame_seq = state.frame_seq;
                state.frame_seq += 1;
                self.deliver_frame(state, network, frame_flow, frame_seq, &frame, chunk, at);
            }
            responses.clear();
            state.pending_responses = responses;
            state.frame_buf = frame;
        }
        if !state.pending.is_empty() {
            let outcome = self.hub.ingest_batch(state.pending.iter());
            state.all_healthy &= outcome.rejected == 0;
            state.pending.clear();
        }
        state.batches += 1;
        state.largest_batch = state.largest_batch.max(burst);
        state.pending_at = None;
    }

    /// Carries one encoded batch frame across the collector → hub link
    /// until the hub acknowledges it or the retry budget runs out.
    ///
    /// Each copy's fate is drawn from the fault stream at
    /// `(frame_flow, frame_seq << 8 | attempt)`. A corrupted copy is
    /// damaged and delivered so the verifier side rejects it *live* —
    /// through the strict decoder for structural damage, through MAC
    /// verification for payload damage — and the pristine frame is then
    /// retransmitted. A clean copy goes through
    /// [`VerifierHub::ingest_sequenced_frame`], whose fresh acceptance is
    /// the ack; a duplicate fault re-delivers the acked copy and the
    /// hub's dedup window must swallow the echo. The frame link itself
    /// does not lose frames (the collector and hub are co-located; loss
    /// lives on the device radio hop), so only corruption consumes
    /// retries here.
    #[allow(clippy::too_many_arguments)]
    fn deliver_frame(
        &mut self,
        state: &mut RunState,
        network: &NetworkModel,
        frame_flow: u64,
        frame_seq: u64,
        frame: &[u8],
        chunk: &[CollectionResponse],
        at: SimTime,
    ) {
        let base = self.base as u64;
        let mut attempt: u32 = 0;
        loop {
            let draw = network.sample_faults(frame_flow, (frame_seq << 8) | attempt as u64);
            if let Some(corruption) = draw.corrupt {
                self.deliver_corrupt_copy(state, frame, chunk, corruption, at);
                if state.policy.allows_retry(attempt) {
                    state.frame_retransmits += 1;
                    attempt += 1;
                    continue;
                }
                state.frames_exhausted += 1;
                state.frame_lost_responses += chunk.len() as u64;
                return;
            }
            let verifiers = &mut self.devices.verifiers;
            let started = Instant::now();
            let outcome = self
                .hub
                .ingest_sequenced_frame(frame_flow, frame_seq, frame, |view| {
                    let local = (view.device().value() - base) as usize;
                    let report = verifiers[local]
                        .verify_frame_response(&view, at)
                        .expect("fleet collection verifies");
                    state.verifications += report.measurements().len() as u64;
                    state.note_health(&report, true);
                    Some(report)
                })
                .expect("shard-encoded frame decodes")
                .expect("first acceptance of a fresh sequence");
            let elapsed = started.elapsed();
            state.wire_ingest_wall += elapsed;
            state.verify_wall += elapsed;
            state.wire_responses += outcome.responses;
            state.wire_accepted += outcome.accepted;
            state.all_healthy &= outcome.rejected == 0 && outcome.verify_failed == 0;
            if draw.duplicate.is_some() {
                // The link re-delivers the acked copy; the dedup window
                // must drop the echo without running any verification.
                let echo = self
                    .hub
                    .ingest_sequenced_frame(frame_flow, frame_seq, frame, |_| {
                        unreachable!("duplicate frames are dropped before verification")
                    })
                    .expect("duplicate copy still decodes");
                assert!(echo.is_none(), "hub dedup window drops the echo");
                state.frame_duplicates += 1;
            }
            return;
        }
    }

    /// Delivers one corrupted copy of `frame` and checks that the verifier
    /// side rejects it without perturbing any live state, so the
    /// retransmitted pristine copy is still fresh.
    ///
    /// Structural damage flips a count-header byte: the strict decoder
    /// must throw a [`DecodeError`] before the dedup window or any
    /// verifier is touched. Payload damage flips a digest byte inside the
    /// first non-empty response: the frame still parses, but the record's
    /// MAC no longer matches — checked on a *clone* of the device's
    /// verifier (collection verification advances `last_collection`, and
    /// a discarded frame must not move the live coverage window).
    fn deliver_corrupt_copy(
        &mut self,
        state: &mut RunState,
        frame: &[u8],
        chunk: &[CollectionResponse],
        corruption: Corruption,
        at: SimTime,
    ) {
        // First digest byte of the first response that carries evidence:
        // response records are `device u64 | count u16`, then measurements
        // of `t u64 | dlen u16 | digest ...` — 20 bytes from the record
        // start to the digest.
        let mut digest_target: Option<(usize, usize)> = None;
        let mut offset = 2;
        for (index, response) in chunk.iter().enumerate() {
            if !response.measurements.is_empty() {
                digest_target = Some((index, offset + 20));
                break;
            }
            offset += 10 + response.payload_bytes() + 4 * response.measurements.len();
        }
        let started = Instant::now();
        let mut damaged = frame.to_vec();
        match digest_target {
            // A frame of empty responses has no authenticated payload, so
            // any damage to it is structural.
            Some((index, digest_at)) if !corruption.structural => {
                damaged[digest_at] ^= corruption.mask;
                let parsed =
                    FrameView::parse(&damaged).expect("payload corruption preserves framing");
                let view = parsed
                    .responses()
                    .nth(index)
                    .expect("damaged response still present");
                let local = (view.device().value() - self.base as u64) as usize;
                let report = self.devices.verifiers[local]
                    .clone()
                    .verify_frame_response(&view, at)
                    .expect("corrupted evidence still verifies to a report");
                assert_eq!(
                    report.verdict(),
                    AttestationVerdict::TamperingDetected,
                    "flipped digest byte must surface as tampering"
                );
                state.corrupt_tamper_drops += 1;
            }
            _ => {
                // Flip a count-header byte: the decoder must reject the
                // frame outright, leaving the hub (dedup window included)
                // untouched.
                damaged[0] ^= corruption.mask;
                self.hub
                    .ingest_sequenced_frame(
                        FRAME_STREAM ^ self.base as u64,
                        u64::MAX,
                        &damaged,
                        |_| unreachable!("structurally corrupt frames fail decode"),
                    )
                    .expect_err("damaged count header fails the strict decoder");
                state.corrupt_decode_drops += 1;
            }
        }
        let elapsed = started.elapsed();
        state.wire_ingest_wall += elapsed;
        state.verify_wall += elapsed;
    }

    /// Surrenders the shard's history hub for merging into the fleet-wide
    /// view.
    pub(crate) fn into_hub(self) -> VerifierHub {
        self.hub
    }
}

/// Disjoint mutable borrows of `indices` (strictly ascending) out of
/// `items`, via progressive `split_at_mut` — no unsafe, O(N) total.
fn select_mut<'a, T, const N: usize>(items: &'a mut [T], indices: &[usize; N]) -> [&'a mut T; N] {
    let mut rest: &'a mut [T] = items;
    let mut consumed = 0usize;
    let mut out: [Option<&'a mut T>; N] = [const { None }; N];
    for (slot, &index) in out.iter_mut().zip(indices) {
        let (_, tail) = rest.split_at_mut(index - consumed);
        let (first, tail) = tail.split_first_mut().expect("index within the shard");
        *slot = Some(first);
        consumed = index + 1;
        rest = tail;
    }
    out.map(|item| item.expect("every lane selected"))
}

/// Takes every scheduled self-measurement due at or before `now`, exactly
/// like `Prover::run_until` but without allocating per-event outcome
/// vectors. Returns the prover's new `next_measurement_due`, which the
/// caller writes back into the SoA `next_due` column.
fn drain_due_measurements(prover: &mut Prover, now: SimTime, state: &mut RunState) -> SimTime {
    let mut next = prover.next_measurement_due();
    if next > now {
        return next;
    }
    let started = Instant::now();
    while next <= now {
        prover.self_measure(next).expect("fleet measurement");
        state.measurements += 1;
        next = prover.next_measurement_due();
    }
    state.measure_wall += started.elapsed();
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use erasmus_crypto::MacAlgorithm;
    use erasmus_sim::NetworkConfig;

    fn config() -> FleetConfig {
        FleetConfig::new(6, 3, 2, 256, 3, MacAlgorithm::HmacSha256)
    }

    fn shard_for(config: &FleetConfig, range: Range<usize>, index: usize) -> Shard {
        let schedule = config.schedule();
        Shard::provision(
            index,
            config,
            &schedule,
            range,
            &super::super::on_demand_plan(config),
        )
    }

    #[test]
    fn shard_drives_only_its_range() {
        let config = config();
        let mut shard = shard_for(&config, 2..5, 1);
        let report = shard.run(&config);
        assert_eq!(report.shard, 1);
        assert_eq!(report.provers, 3);
        assert_eq!(report.measurements, 3 * 3 * 2);
        assert_eq!(report.verifications, report.measurements);
        assert!(report.all_healthy);
        assert!(report.simulated_busy > SimDuration::ZERO);
        assert_eq!(report.collections_attempted, 3 * 2);
        assert_eq!(report.collections_delivered, 3 * 2);
        assert_eq!(report.collections_dropped, 0);
        assert!(report.hub_batches >= 1);
        assert!(report.largest_batch >= 1);

        // The hub tracks exactly the shard's devices, under their *global*
        // fleet ids.
        let hub = shard.into_hub();
        assert_eq!(hub.len(), 3);
        for id in 2..5u64 {
            let history = hub.history(DeviceId::new(id)).expect("tracked");
            assert_eq!(history.len(), 3 * 2);
            assert_eq!(history.collections(), 2);
        }
        assert!(hub.history(DeviceId::new(0)).is_none());
    }

    #[test]
    fn measurement_instants_are_genuinely_staggered() {
        let config = config(); // 6 devices, 3 stagger groups over T_M = 10 s
        let schedule = config.schedule();
        let mut shard = shard_for(&config, 0..3, 0);
        shard.run(&config);
        let hub = shard.into_hub();
        // Devices 0/1/2 sit in groups 0/1/2: their k-th measurements fire at
        // 10k, 10k + 3.33…, 10k + 6.66… seconds — never the same instant.
        let firsts: Vec<_> = (0..3u64)
            .map(|id| {
                hub.history(DeviceId::new(id))
                    .expect("tracked")
                    .entries()
                    .next()
                    .expect("measured")
                    .timestamp
            })
            .collect();
        for (device, first) in firsts.iter().enumerate() {
            let expected = SimTime::ZERO + MEASUREMENT_INTERVAL + schedule.offset(device);
            assert_eq!(*first, expected, "device {device}");
        }
        assert!(firsts[0] < firsts[1] && firsts[1] < firsts[2]);
    }

    #[test]
    fn same_instant_deliveries_form_one_batch() {
        // One stagger group: all devices collect — and, with an ideal
        // network, deliver — at the same instants, so each round is exactly
        // one burst.
        let config = FleetConfig::new(4, 2, 3, 128, 1, MacAlgorithm::KeyedBlake2s);
        let mut shard = shard_for(&config, 0..4, 0);
        let report = shard.run(&config);
        assert_eq!(report.hub_batches, config.rounds as u64);
        assert_eq!(report.largest_batch, config.provers as u64);
    }

    #[test]
    fn lossy_shard_conserves_attempts() {
        let mut config = config();
        config.network = NetworkConfig {
            base_latency: SimDuration::from_millis(20),
            jitter: SimDuration::from_millis(10),
            loss: 0.3,
            ..NetworkConfig::IDEAL
        };
        config.seed = 7;
        let mut shard = shard_for(&config, 0..6, 0);
        let report = shard.run(&config);
        assert_eq!(
            report.collections_delivered + report.collections_dropped,
            report.collections_attempted
        );
        assert_eq!(report.collections_attempted, 6 * 2);
        // Measurements happen on-device regardless of collection fate.
        assert_eq!(report.measurements, 6 * 3 * 2);
        // Only delivered reports are verified.
        assert_eq!(report.verifications, report.collections_delivered * 3);
        let hub = shard.into_hub();
        assert_eq!(hub.ingested(), report.collections_delivered);

        // Determinism: the identical shard sees the identical fates.
        let mut again = shard_for(&config, 0..6, 0);
        let rerun = again.run(&config);
        assert_eq!(rerun.collections_delivered, report.collections_delivered);
        assert_eq!(rerun.verifications, report.verifications);
    }

    #[test]
    fn churned_devices_miss_work_deterministically() {
        let mut config = FleetConfig::new(8, 2, 4, 128, 2, MacAlgorithm::HmacSha256);
        config.churn = 0.9;
        config.seed = 11;
        let mut shard = shard_for(&config, 0..8, 0);
        let report = shard.run(&config);
        assert!(report.devices_churned > 0, "plan drew no churners");
        // Absent devices measure less and miss collections.
        assert!(report.measurements < config.total_measurements());
        assert!(report.collections_dropped > 0);
        assert_eq!(
            report.collections_delivered + report.collections_dropped,
            report.collections_attempted
        );
        assert!(report.all_healthy, "gaps must not read as compromise");

        // Identical simulated outcome on a re-run (wall clocks aside).
        let mut again = shard_for(&config, 0..8, 0);
        let rerun = again.run(&config);
        assert_eq!(rerun.measurements, report.measurements);
        assert_eq!(rerun.verifications, report.verifications);
        assert_eq!(rerun.collections_delivered, report.collections_delivered);
        assert_eq!(rerun.collections_dropped, report.collections_dropped);
        assert_eq!(rerun.devices_churned, report.devices_churned);
        assert_eq!(rerun.simulated_busy, report.simulated_busy);
    }

    #[test]
    fn extreme_latency_does_not_read_as_tampering() {
        // Delivery shifted by more than T_M moves the verifier's coverage
        // window: the resulting "missing measurement" verdicts are a
        // latency artefact, not tampering, and must not fail the run.
        let mut config = config();
        config.network = NetworkConfig {
            base_latency: SimDuration::from_secs(15),
            jitter: SimDuration::from_secs(10),
            loss: 0.0,
            ..NetworkConfig::IDEAL
        };
        let mut shard = shard_for(&config, 0..6, 0);
        let report = shard.run(&config);
        assert_eq!(report.collections_delivered, report.collections_attempted);
        assert_eq!(report.collections_dropped, 0);
        assert!(report.all_healthy, "latency gaps read as compromise");
    }

    #[test]
    fn on_demand_exchanges_complete_under_ideal_network() {
        let mut config = config();
        config.on_demand = 5;
        let mut shard = shard_for(&config, 0..6, 0);
        let report = shard.run(&config);
        assert_eq!(report.on_demand_attempted, 5);
        assert_eq!(report.on_demand_completed, 5);
        assert_eq!(report.on_demand_latencies.len(), 5);
        // Each exchange takes one fresh measurement on top of the schedule.
        assert_eq!(report.measurements, config.total_measurements() + 5);
        assert!(report.all_healthy);
    }

    #[test]
    fn lane_batched_shard_is_observationally_identical_to_scalar() {
        // 24 devices over 3 stagger groups → cohorts of 8 per instant:
        // enough for full 8-lane jobs, 4-lane jobs and scalar remainders at
        // the narrower widths.
        for alg in [MacAlgorithm::HmacSha256, MacAlgorithm::KeyedBlake2s] {
            let config = FleetConfig::new(24, 3, 2, 256, 3, alg);
            let mut scalar_shard = shard_for(&config, 0..24, 0);
            let scalar = scalar_shard.run(&config);
            assert_eq!(scalar.lane_jobs, 0);
            let scalar_hub = scalar_shard.into_hub();
            for lanes in [4usize, 8] {
                let mut config = config.clone();
                config.lanes = lanes;
                let mut shard = shard_for(&config, 0..24, 0);
                let report = shard.run(&config);
                assert_eq!(report.measurements, scalar.measurements, "{alg} x{lanes}");
                assert_eq!(report.verifications, scalar.verifications, "{alg} x{lanes}");
                assert_eq!(report.all_healthy, scalar.all_healthy, "{alg} x{lanes}");
                assert_eq!(
                    report.simulated_busy, scalar.simulated_busy,
                    "{alg} x{lanes}"
                );
                assert!(report.lane_jobs > 0, "{alg} x{lanes} batched nothing");
                // The verifier side learned byte-identical histories.
                let hub = shard.into_hub();
                assert_eq!(hub.len(), scalar_hub.len());
                assert_eq!(hub.total_entries(), scalar_hub.total_entries());
                for id in 0..24u64 {
                    let batched: Vec<_> = hub
                        .history(DeviceId::new(id))
                        .expect("tracked")
                        .entries()
                        .collect();
                    let reference: Vec<_> = scalar_hub
                        .history(DeviceId::new(id))
                        .expect("tracked")
                        .entries()
                        .collect();
                    assert_eq!(batched, reference, "{alg} x{lanes} device {id}");
                }
            }
        }
    }

    #[test]
    fn lane_batched_shard_handles_churn_and_ragged_cohorts() {
        // 10 devices in 2 groups → cohorts of 5: one 4-lane job plus one
        // scalar remainder per instant; churn shrinks cohorts mid-run.
        let mut config = FleetConfig::new(10, 2, 3, 128, 2, MacAlgorithm::HmacSha256);
        config.churn = 0.6;
        config.seed = 11;
        let scalar = shard_for(&config, 0..10, 0).run(&config);
        config.lanes = 4;
        let mut shard = shard_for(&config, 0..10, 0);
        let report = shard.run(&config);
        assert!(report.devices_churned > 0, "plan drew no churners");
        assert_eq!(report.measurements, scalar.measurements);
        assert_eq!(report.verifications, scalar.verifications);
        assert_eq!(report.simulated_busy, scalar.simulated_busy);
        assert_eq!(report.collections_dropped, scalar.collections_dropped);
        assert!(report.lane_jobs > 0);
        assert!(
            report.lane_remainder > 0,
            "no scalar remainder in a 5-cohort"
        );
    }

    #[test]
    fn wire_shard_hub_matches_struct_shard_hub() {
        // The wire path re-routes every collection through encode → frame
        // → zero-copy verify; the verifier-side outcome must be
        // bit-identical to the struct path, including on mixed bursts
        // where struct-path on-demand reports land with frame-bound
        // collections.
        let mut config = config();
        config.on_demand = 2;
        let mut wire_shard = shard_for(&config, 0..6, 0);
        let wire_report = wire_shard.run(&config);
        config.wire = false;
        let mut struct_shard = shard_for(&config, 0..6, 0);
        let struct_report = struct_shard.run(&config);
        assert_eq!(wire_report.verifications, struct_report.verifications);
        assert_eq!(wire_report.hub_batches, struct_report.hub_batches);
        assert_eq!(wire_report.largest_batch, struct_report.largest_batch);
        assert_eq!(wire_report.all_healthy, struct_report.all_healthy);
        assert_eq!(
            wire_report.wire_responses,
            wire_report.collections_delivered
        );
        assert_eq!(wire_report.wire_accepted, wire_report.wire_responses);
        assert_eq!(wire_report.wire_decode_rejects, 0);
        assert!(wire_report.wire_frames > 0);
        assert!(wire_report.wire_bytes > 0);
        assert_eq!(struct_report.wire_frames, 0);
        assert_eq!(struct_report.wire_bytes, 0);
        let wire_hub = wire_shard.into_hub();
        let struct_hub = struct_shard.into_hub();
        assert_eq!(wire_hub.ingested(), struct_hub.ingested());
        assert_eq!(wire_hub.total_entries(), struct_hub.total_entries());
        for id in 0..6u64 {
            let wired: Vec<_> = wire_hub
                .history(DeviceId::new(id))
                .expect("tracked")
                .entries()
                .collect();
            let reference: Vec<_> = struct_hub
                .history(DeviceId::new(id))
                .expect("tracked")
                .entries()
                .collect();
            assert_eq!(wired, reference, "device {id}");
        }
    }

    #[test]
    fn oversized_bursts_chunk_into_multiple_frames() {
        // One stagger group puts the whole fleet into a single burst;
        // 1100 responses exceed MAX_BATCH_RESPONSES (1024), so the burst
        // must ship as two frames while still counting as one hub batch.
        let config = FleetConfig::new(1100, 1, 1, 64, 1, MacAlgorithm::HmacSha256);
        assert!(config.provers > MAX_BATCH_RESPONSES);
        let mut shard = shard_for(&config, 0..1100, 0);
        let report = shard.run(&config);
        assert_eq!(report.largest_batch, 1100);
        assert_eq!(report.hub_batches, 1);
        assert_eq!(report.wire_frames, 2);
        assert_eq!(report.wire_responses, 1100);
        assert_eq!(report.wire_accepted, 1100);
        assert!(report.all_healthy);
    }

    #[test]
    fn empty_shard_is_a_no_op() {
        let config = config();
        let mut shard = shard_for(&config, 0..0, 0);
        let report = shard.run(&config);
        assert_eq!(report.provers, 0);
        assert_eq!(report.measurements, 0);
        assert!(report.all_healthy);
        assert!(shard.into_hub().is_empty());
    }

    #[test]
    fn shard_report_json_is_balanced() {
        let config = config();
        let mut shard = shard_for(&config, 0..2, 0);
        let text = shard.run(&config).to_json("  ");
        assert!(text.contains("\"shard\": 0"));
        assert!(text.contains("\"provers\": 2"));
        assert!(text.contains("\"collections_delivered\": 4")); // 2 devices × 2 rounds
        assert!(text.contains("\"hub_batches\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }

    /// A faulty-but-retried config used by the recovery tests: every fault
    /// family is on, with enough budget that nothing is lost for good.
    fn faulty_config() -> FleetConfig {
        let mut config = FleetConfig::new(24, 3, 3, 256, 3, MacAlgorithm::HmacSha256);
        config.network = NetworkConfig {
            base_latency: SimDuration::from_millis(10),
            jitter: SimDuration::from_millis(5),
            loss: 0.1,
            duplicate: 0.05,
            reorder: 0.05,
            corrupt: 0.05,
        };
        config.retries = 6;
        config.seed = 42;
        config
    }

    #[test]
    fn retries_recover_every_report_under_faults() {
        let config = faulty_config();
        let mut shard = shard_for(&config, 0..24, 0);
        let report = shard.run(&config);

        // Conservation: every attempt is delivered, lost to churn, lost to
        // a stale retry, or exhausted — and with this budget, nothing
        // exhausts, so recovery is total.
        assert_eq!(report.collections_attempted, 24 * 3);
        assert_eq!(
            report.collections_delivered
                + report.exhausted_retries
                + report.churn_losses
                + report.stale_retries,
            report.collections_attempted
        );
        assert_eq!(report.exhausted_retries, 0);
        assert_eq!(report.collections_delivered, report.collections_attempted);
        assert!(report.collect_retransmits > 0, "loss 10% must retransmit");
        assert_eq!(
            report.retry_histogram.iter().sum::<u64>(),
            report.collections_delivered
        );
        assert!(
            report.retry_histogram[1..].iter().sum::<u64>() > 0,
            "some delivery took at least one retry"
        );

        // Frame hop: corruption was seen live on both rejection paths over
        // this many frames, and every frame eventually got through.
        assert_eq!(report.frames_exhausted, 0);
        assert_eq!(report.frame_lost_responses, 0);
        assert_eq!(report.wire_responses, report.collections_delivered);
        assert_eq!(report.hub_duplicates, report.frame_duplicates);

        // The hub saw everything exactly once.
        let hub = shard.into_hub();
        assert_eq!(
            hub.ingested(),
            report.collections_delivered + report.on_demand_completed
        );
    }

    #[test]
    fn recovered_totals_match_the_lossless_run() {
        let faulty = faulty_config();
        let mut lossless = faulty.clone();
        lossless.network = NetworkConfig::IDEAL;
        lossless.retries = 0;

        let mut faulty_shard = shard_for(&faulty, 0..24, 0);
        let faulty_report = faulty_shard.run(&faulty);
        let mut lossless_shard = shard_for(&lossless, 0..24, 0);
        let lossless_report = lossless_shard.run(&lossless);

        assert_eq!(
            faulty_report.collections_delivered,
            lossless_report.collections_delivered
        );
        assert_eq!(faulty_report.measurements, lossless_report.measurements);
        let faulty_hub = faulty_shard.into_hub();
        let lossless_hub = lossless_shard.into_hub();
        assert_eq!(faulty_hub.ingested(), lossless_hub.ingested());
        assert_eq!(faulty_hub.total_entries(), lossless_hub.total_entries());
        assert_eq!(
            faulty_hub.total_collections(),
            lossless_hub.total_collections()
        );
    }

    #[test]
    fn hub_crashes_recover_bit_identically() {
        let mut crashing = faulty_config();
        crashing.hub_crashes = 3;
        let smooth = FleetConfig {
            hub_crashes: 0,
            ..crashing.clone()
        };

        let mut crashed_shard = shard_for(&crashing, 0..24, 0);
        let crashed_report = crashed_shard.run(&crashing);
        let mut smooth_shard = shard_for(&smooth, 0..24, 0);
        let smooth_report = smooth_shard.run(&smooth);

        assert_eq!(crashed_report.hub_crashes, 3);
        assert!(crashed_report.snapshot_bytes > 0);
        assert_eq!(smooth_report.hub_crashes, 0);
        assert_eq!(
            crashed_report.collections_delivered,
            smooth_report.collections_delivered
        );
        // The crash/restore cycles must leave no trace: the recovered hub
        // equals the never-crashed one bit for bit.
        assert_eq!(crashed_shard.into_hub(), smooth_shard.into_hub());
    }

    #[test]
    fn device_leaving_mid_backoff_never_replays_stale_evidence() {
        // Heavy loss plus churn: some retransmission timers are guaranteed
        // to fire on devices that churned away in the meantime.
        let mut config = FleetConfig::new(32, 3, 3, 256, 4, MacAlgorithm::HmacSha256);
        config.network = NetworkConfig {
            base_latency: SimDuration::from_millis(10),
            jitter: SimDuration::from_millis(5),
            loss: 0.35,
            ..NetworkConfig::IDEAL
        };
        config.retries = 8;
        config.churn = 0.6;
        config.seed = 13;
        let mut shard = shard_for(&config, 0..32, 0);
        let report = shard.run(&config);

        assert!(report.devices_churned > 0, "churn plan must trigger");
        assert_eq!(
            report.collections_delivered
                + report.exhausted_retries
                + report.churn_losses
                + report.stale_retries,
            report.collections_attempted
        );
        // Every delivery is fresh-epoch by construction; the hub holds
        // exactly the delivered reports, no replayed extras.
        let hub = shard.into_hub();
        assert_eq!(
            hub.ingested(),
            report.collections_delivered + report.on_demand_completed
        );
    }
}
