//! Per-thread fleet shards.
//!
//! [`Shard`] is the unit of parallelism of the fleet harness: a contiguous
//! slice of the fleet whose `(Prover, Verifier)` pairs are *owned* by one
//! scoped worker thread, so the hot loops run without any cross-thread
//! sharing or locking. Devices keep their global fleet index for key
//! derivation and for their [`StaggeredSchedule`] phase offset, which makes
//! shard boundaries invisible to the simulated protocol: a device performs
//! the same measurements at the same simulated instants whether the fleet
//! runs on one thread or sixteen.

use std::ops::Range;
use std::time::{Duration, Instant};

use erasmus_core::{CollectionRequest, DeviceId, Prover, ProverConfig, Verifier, VerifierHub};
use erasmus_hw::{DeviceKey, DeviceProfile};
use erasmus_sim::{SimDuration, SimTime};
use erasmus_swarm::StaggeredSchedule;

use super::{FleetConfig, MEASUREMENT_INTERVAL};

/// One device of a shard: the protocol pair plus its staggered phase offset
/// within `T_M`.
struct ShardDevice {
    prover: Prover,
    verifier: Verifier,
    offset: SimDuration,
}

/// A worker thread's slice of the fleet.
pub(crate) struct Shard {
    index: usize,
    devices: Vec<ShardDevice>,
    hub: VerifierHub,
}

/// What one shard contributed to a fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index (0-based, matches spawn order).
    pub shard: usize,
    /// Devices driven by this shard.
    pub provers: usize,
    /// Self-measurements taken by this shard's devices.
    pub measurements: u64,
    /// Measurement MACs verified from this shard's collection reports.
    pub verifications: u64,
    /// Wall-clock time this shard spent in measurement phases.
    pub measure_wall: Duration,
    /// Wall-clock time this shard spent collecting and verifying.
    pub verify_wall: Duration,
    /// Simulated busy time accumulated by this shard's provers.
    pub simulated_busy: SimDuration,
    /// Whether every collection round of this shard verified healthy.
    pub all_healthy: bool,
}

impl ShardReport {
    /// Renders the shard as one JSON object of the `per_thread` array.
    pub fn to_json(&self, indent: &str) -> String {
        format!(
            "{indent}{{ \"shard\": {shard}, \"provers\": {provers}, \
             \"measurements\": {meas}, \"verifications\": {verif}, \
             \"measure_wall_secs\": {mw:.6}, \"verify_wall_secs\": {vw:.6}, \
             \"all_healthy\": {healthy} }}",
            shard = self.shard,
            provers = self.provers,
            meas = self.measurements,
            verif = self.verifications,
            mw = self.measure_wall.as_secs_f64(),
            vw = self.verify_wall.as_secs_f64(),
            healthy = self.all_healthy,
        )
    }
}

impl Shard {
    /// Provisions the devices with global fleet indices `range`: per-device
    /// keys, precomputed MAC schedules, reference digests, phase offsets.
    pub(crate) fn provision(
        index: usize,
        config: &FleetConfig,
        schedule: &StaggeredSchedule,
        range: Range<usize>,
    ) -> Self {
        let buffer_slots = config.measurements_per_round.max(1);
        let devices = range
            .map(|i| {
                // The device's phase offset goes into its *prover schedule*:
                // measurements genuinely fire at `offset + k·T_M`, so at any
                // simulated instant only one stagger group is busy measuring.
                let prover_config = ProverConfig::builder()
                    .measurement_interval(MEASUREMENT_INTERVAL)
                    .buffer_slots(buffer_slots)
                    .mac_algorithm(config.algorithm)
                    .phase_offset(schedule.offset(i))
                    .build()
                    .expect("fleet prover config is valid");
                let key = DeviceKey::derive(b"erasmus-fleet", i as u64);
                let prover = Prover::new(
                    DeviceId::new(i as u64),
                    DeviceProfile::msp430_8mhz(config.memory_bytes),
                    key.clone(),
                    prover_config,
                )
                .expect("fleet prover provisions");
                let mut verifier = Verifier::new(key, config.algorithm);
                verifier.learn_reference_image(prover.mcu().app_memory());
                verifier.set_expected_interval(MEASUREMENT_INTERVAL);
                ShardDevice {
                    prover,
                    verifier,
                    offset: schedule.offset(i),
                }
            })
            .collect();

        Self {
            index,
            devices,
            hub: VerifierHub::new(),
        }
    }

    /// Drives this shard through every collection round.
    ///
    /// A device with phase offset `o` measures at `o + k·T_M` and runs to —
    /// and is collected at — its *own* staggered horizon `round_end + o`,
    /// so staggering shifts whole phases without changing how many
    /// measurements a round yields: offsets stay strictly inside `T_M`,
    /// hence exactly `measurements_per_round` measurements fall into every
    /// device's collection window regardless of its group.
    pub(crate) fn run(&mut self, config: &FleetConfig) -> ShardReport {
        let mut measurements = 0u64;
        let mut verifications = 0u64;
        let mut measure_wall = Duration::ZERO;
        let mut verify_wall = Duration::ZERO;
        let mut all_healthy = true;

        let round_span = MEASUREMENT_INTERVAL * config.measurements_per_round as u64;
        let request = CollectionRequest::latest(config.measurements_per_round);
        for round in 1..=config.rounds {
            let round_end = SimTime::ZERO + round_span * round as u64;

            let measure_start = Instant::now();
            for device in self.devices.iter_mut() {
                let outcomes = device
                    .prover
                    .run_until(round_end + device.offset)
                    .expect("fleet measurement");
                measurements += outcomes.len() as u64;
            }
            measure_wall += measure_start.elapsed();

            // Only the protocol work (collection + MAC verification) is
            // timed; hub bookkeeping happens outside the span so
            // `verifications_per_sec` stays comparable with the pre-hub
            // trajectory in earlier `BENCH_fleet.json` revisions.
            let verify_start = Instant::now();
            let reports: Vec<_> = self
                .devices
                .iter_mut()
                .map(|device| {
                    let now = round_end + device.offset;
                    let response = device.prover.handle_collection(&request, now);
                    device
                        .verifier
                        .verify_collection(&response, now)
                        .expect("fleet collection verifies")
                })
                .collect();
            verify_wall += verify_start.elapsed();

            for report in &reports {
                verifications += report.measurements().len() as u64;
                all_healthy &= report.all_valid();
                all_healthy &= self.hub.ingest(report);
            }
        }

        let simulated_busy = self
            .devices
            .iter()
            .map(|device| device.prover.total_busy_time())
            .fold(SimDuration::ZERO, |acc, busy| acc + busy);

        ShardReport {
            shard: self.index,
            provers: self.devices.len(),
            measurements,
            verifications,
            measure_wall,
            verify_wall,
            simulated_busy,
            all_healthy,
        }
    }

    /// Surrenders the shard's history hub for merging into the fleet-wide
    /// view.
    pub(crate) fn into_hub(self) -> VerifierHub {
        self.hub
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erasmus_crypto::MacAlgorithm;

    fn config() -> FleetConfig {
        FleetConfig {
            provers: 6,
            measurements_per_round: 3,
            rounds: 2,
            memory_bytes: 256,
            stagger_groups: 3,
            algorithm: MacAlgorithm::HmacSha256,
        }
    }

    #[test]
    fn shard_drives_only_its_range() {
        let config = config();
        let schedule = config.schedule();
        let mut shard = Shard::provision(1, &config, &schedule, 2..5);
        let report = shard.run(&config);
        assert_eq!(report.shard, 1);
        assert_eq!(report.provers, 3);
        assert_eq!(report.measurements, 3 * 3 * 2);
        assert_eq!(report.verifications, report.measurements);
        assert!(report.all_healthy);
        assert!(report.simulated_busy > SimDuration::ZERO);

        // The hub tracks exactly the shard's devices, under their *global*
        // fleet ids.
        let hub = shard.into_hub();
        assert_eq!(hub.len(), 3);
        for id in 2..5u64 {
            let history = hub.history(DeviceId::new(id)).expect("tracked");
            assert_eq!(history.len(), 3 * 2);
            assert_eq!(history.collections(), 2);
        }
        assert!(hub.history(DeviceId::new(0)).is_none());
    }

    #[test]
    fn measurement_instants_are_genuinely_staggered() {
        let config = config(); // 6 devices, 3 stagger groups over T_M = 10 s
        let schedule = config.schedule();
        let mut shard = Shard::provision(0, &config, &schedule, 0..3);
        shard.run(&config);
        let hub = shard.into_hub();
        // Devices 0/1/2 sit in groups 0/1/2: their k-th measurements fire at
        // 10k, 10k + 3.33…, 10k + 6.66… seconds — never the same instant.
        let firsts: Vec<_> = (0..3u64)
            .map(|id| {
                hub.history(DeviceId::new(id))
                    .expect("tracked")
                    .entries()
                    .next()
                    .expect("measured")
                    .timestamp
            })
            .collect();
        for (device, first) in firsts.iter().enumerate() {
            let expected = SimTime::ZERO + MEASUREMENT_INTERVAL + schedule.offset(device);
            assert_eq!(*first, expected, "device {device}");
        }
        assert!(firsts[0] < firsts[1] && firsts[1] < firsts[2]);
    }

    #[test]
    fn empty_shard_is_a_no_op() {
        let config = config();
        let schedule = config.schedule();
        let mut shard = Shard::provision(0, &config, &schedule, 0..0);
        let report = shard.run(&config);
        assert_eq!(report.provers, 0);
        assert_eq!(report.measurements, 0);
        assert!(report.all_healthy);
        assert!(shard.into_hub().is_empty());
    }

    #[test]
    fn shard_report_json_is_balanced() {
        let config = config();
        let schedule = config.schedule();
        let mut shard = Shard::provision(0, &config, &schedule, 0..2);
        let text = shard.run(&config).to_json("  ");
        assert!(text.contains("\"shard\": 0"));
        assert!(text.contains("\"provers\": 2"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
