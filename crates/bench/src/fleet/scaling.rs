//! 1→N thread-scaling sweep.
//!
//! Re-runs one [`FleetConfig`] at doubling thread counts (1, 2, 4, …, N) and
//! records how measurement throughput scales relative to the single-threaded
//! baseline. The sweep is what turns the committed `BENCH_fleet.json` into a
//! multi-core scaling record: totals are identical at every thread count
//! (the partition is work-preserving), only the wall clock moves.

use super::{run_threaded, FleetConfig, FleetReport};

/// One point of the scaling sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Worker threads used for this run.
    pub threads: usize,
    /// Measurement throughput at this thread count.
    pub measurements_per_sec: f64,
    /// Verification throughput at this thread count.
    pub verifications_per_sec: f64,
    /// Measurement throughput relative to the sweep's single-threaded run
    /// (1.0 for the baseline itself).
    pub speedup: f64,
}

impl ScalingPoint {
    /// Renders the point as one JSON object of the `scaling` array.
    pub fn to_json(&self, indent: &str) -> String {
        format!(
            "{indent}{{ \"threads\": {threads}, \
             \"measurements_per_sec\": {mps:.1}, \
             \"verifications_per_sec\": {vps:.1}, \
             \"speedup\": {speedup:.2} }}",
            threads = self.threads,
            mps = self.measurements_per_sec,
            vps = self.verifications_per_sec,
            speedup = self.speedup,
        )
    }
}

/// The thread counts a sweep up to `max_threads` visits: powers of two plus
/// `max_threads` itself.
pub fn thread_counts(max_threads: usize) -> Vec<usize> {
    let max_threads = max_threads.max(1);
    let mut counts = Vec::new();
    let mut n = 1usize;
    while n < max_threads {
        counts.push(n);
        n *= 2;
    }
    counts.push(max_threads);
    counts
}

/// Runs `config` at every thread count of [`thread_counts`] and reports the
/// scaling trajectory. The sweep asserts the work-preservation invariant:
/// every run must produce identical measurement/verification totals.
///
/// `max_threads` is clamped to the fleet size first (a shard needs at least
/// one device), so the sweep never times the same effective partition
/// twice.
///
/// # Panics
///
/// Panics if a run produces different totals than the single-threaded
/// baseline — that would mean the shard partition dropped or duplicated
/// work.
pub fn sweep(config: &FleetConfig, max_threads: usize) -> Vec<ScalingPoint> {
    sweep_reusing(config, max_threads, None)
}

/// Like [`sweep`], but a thread count whose fleet was already run (same
/// `config`, same effective thread count) reuses `reuse` instead of timing
/// the identical run again — `perfbench` passes its main per-algorithm
/// report here, saving one full fleet run per invocation.
pub fn sweep_reusing(
    config: &FleetConfig,
    max_threads: usize,
    reuse: Option<&FleetReport>,
) -> Vec<ScalingPoint> {
    let max_threads = max_threads.min(config.provers.max(1));
    let mut points: Vec<ScalingPoint> = Vec::new();
    let mut baseline: Option<FleetReport> = None;
    for threads in thread_counts(max_threads) {
        let report = match reuse {
            Some(done) if done.threads == threads && done.config == *config => done.clone(),
            _ => run_threaded(config, threads),
        };
        if let Some(base) = &baseline {
            assert_eq!(
                base.measurements_total, report.measurements_total,
                "threaded partition changed the measurement total"
            );
            assert_eq!(
                base.verifications_total, report.verifications_total,
                "threaded partition changed the verification total"
            );
        }
        let base_rate = baseline
            .get_or_insert_with(|| report.clone())
            .measurements_per_sec();
        points.push(ScalingPoint {
            threads: report.threads,
            measurements_per_sec: report.measurements_per_sec(),
            verifications_per_sec: report.verifications_per_sec(),
            speedup: report.measurements_per_sec() / base_rate,
        });
    }
    points
}

/// Renders the sweep as a human-readable table.
pub fn render(points: &[ScalingPoint]) -> String {
    let mut out = String::from(
        "Thread scaling (same fleet, 1..N workers)\nthreads     meas/s    verif/s  speedup\n",
    );
    for point in points {
        out.push_str(&format!(
            "{:>7}  {:>9.0}  {:>9.0}  {:>6.2}x\n",
            point.threads, point.measurements_per_sec, point.verifications_per_sec, point.speedup,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use erasmus_crypto::MacAlgorithm;

    #[test]
    fn thread_counts_double_up_to_max() {
        assert_eq!(thread_counts(1), vec![1]);
        assert_eq!(thread_counts(2), vec![1, 2]);
        assert_eq!(thread_counts(4), vec![1, 2, 4]);
        assert_eq!(thread_counts(6), vec![1, 2, 4, 6]);
        assert_eq!(thread_counts(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_counts(0), vec![1]);
    }

    #[test]
    fn sweep_keeps_totals_and_reports_baseline_speedup() {
        let config = FleetConfig::new(8, 2, 1, 128, 2, MacAlgorithm::KeyedBlake2s);
        let points = sweep(&config, 4);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].threads, 1);
        assert!((points[0].speedup - 1.0).abs() < 1e-12);
        for point in &points {
            assert!(point.measurements_per_sec > 0.0);
            assert!(point.verifications_per_sec > 0.0);
            assert!(point.speedup > 0.0);
        }
        let text = render(&points);
        assert!(text.contains("threads"));
        assert!(text.contains("1.00x"));
    }

    #[test]
    fn sweep_clamps_thread_counts_to_fleet_size() {
        let config = FleetConfig::new(2, 2, 1, 128, 2, MacAlgorithm::HmacSha256);
        // 8 requested threads, 2 devices: only 1 and 2 are distinct
        // partitions; timing 2 twice (as 4 and 8) would skew the record.
        let points = sweep(&config, 8);
        let threads: Vec<usize> = points.iter().map(|p| p.threads).collect();
        assert_eq!(threads, vec![1, 2]);
    }

    #[test]
    fn sweep_reuses_an_already_run_report() {
        let config = FleetConfig::new(4, 2, 1, 128, 2, MacAlgorithm::HmacSha256);
        let done = run_threaded(&config, 2);
        let points = sweep_reusing(&config, 2, Some(&done));
        assert_eq!(points.len(), 2);
        // The reused point carries the exact rates of the prior run.
        let last = points.last().expect("two points");
        assert_eq!(last.threads, 2);
        assert!((last.measurements_per_sec - done.measurements_per_sec()).abs() < 1e-9);
        assert!((last.verifications_per_sec - done.verifications_per_sec()).abs() < 1e-9);
    }
}
