//! Scalar-vs-lane measurement-digest speedup, recorded per algorithm.
//!
//! The fleet harness batches same-instant measurements into multi-lane hash
//! jobs (the private `shard` module); this module measures what that buys on the
//! host: the throughput of computing complete measurements
//! (`H(mem) + MAC_K(t, H(mem))`) through the scalar
//! [`Measurement::compute_keyed`] path versus the lane-interleaved
//! [`Measurement::compute_keyed_batch`] path, at the run's memory size. The
//! result is serialized into every `BENCH_fleet.json` entry so the perf
//! trajectory records the lane speedup alongside the fleet totals.

use std::time::Instant;

use erasmus_core::Measurement;
use erasmus_crypto::{KeyedMac, MacAlgorithm, MultiKeyedMac};
use erasmus_sim::SimTime;

/// Lane widths with a lane-interleaved core behind them, widest first.
pub const SUPPORTED_WIDTHS: [usize; 2] = [8, 4];

/// The widest supported lane width not exceeding `lanes` (1 = scalar).
///
/// `--lanes` is an upper bound, not an exact width: `--lanes 6` batches in
/// groups of 4, `--lanes 32` in groups of 8, `--lanes 2` falls back to the
/// scalar path.
pub fn effective_width(lanes: usize) -> usize {
    SUPPORTED_WIDTHS
        .into_iter()
        .find(|&width| lanes >= width)
        .unwrap_or(1)
}

/// Scalar-vs-lane throughput of the measurement digest+MAC at one memory
/// size.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSpeedup {
    /// Effective lane width the batch path used (see [`effective_width`]).
    pub lanes: usize,
    /// Complete measurements per second through the scalar path.
    pub scalar_per_sec: f64,
    /// Complete measurements per second through the lane-batched path.
    pub lane_per_sec: f64,
    /// `lane_per_sec / scalar_per_sec` (1.0 when the width is 1).
    pub speedup: f64,
}

impl LaneSpeedup {
    /// Renders the speedup as the JSON object embedded in each result.
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"lanes\": {lanes}, \"scalar_measurements_per_sec\": {scalar:.1}, \
             \"lane_measurements_per_sec\": {lane:.1}, \"speedup\": {speedup:.2} }}",
            lanes = self.lanes,
            scalar = self.scalar_per_sec,
            lane = self.lane_per_sec,
            speedup = self.speedup,
        )
    }
}

/// One distinct precomputed schedule per probe lane (the fleet's shape:
/// every device holds its own key).
fn per_device_keys(algorithm: MacAlgorithm, width: usize) -> Vec<KeyedMac> {
    (0..width as u8)
        .map(|i| algorithm.with_key(&[i.wrapping_mul(0x35) ^ 0x6b; 32]))
        .collect()
}

fn measure_width<const N: usize>(
    algorithm: MacAlgorithm,
    images: &[Vec<u8>],
    iterations: usize,
) -> f64 {
    let keys = per_device_keys(algorithm, N);
    let multi = MultiKeyedMac::<N>::new(std::array::from_fn(|lane| &keys[lane]));
    let started = Instant::now();
    for round in 0..iterations {
        let t = SimTime::from_secs(round as u64);
        std::hint::black_box(Measurement::compute_keyed_batch(
            &multi,
            [t; N],
            std::array::from_fn(|lane| &images[lane][..]),
        ));
    }
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    (iterations * N) as f64 / wall
}

/// Times the scalar vs lane-batched measurement hot path for `algorithm` at
/// `memory_bytes`, batching `effective_width(lanes)` devices per job.
///
/// The work volume is clamped so the probe stays in the tens of
/// milliseconds regardless of the memory size.
pub fn measure(algorithm: MacAlgorithm, memory_bytes: usize, lanes: usize) -> LaneSpeedup {
    let width = effective_width(lanes);
    let memory_bytes = memory_bytes.max(1);
    // Hash ~32 MiB per timed side (much less in debug builds, where the
    // probe only smoke-tests), bounded to keep tiny/huge images sane.
    let probe_bytes = if cfg!(debug_assertions) {
        1024 * 1024
    } else {
        32 * 1024 * 1024
    };
    let iterations = (probe_bytes / (memory_bytes * width)).clamp(8, 4096);
    let images: Vec<Vec<u8>> = (0..width as u8)
        .map(|lane| {
            (0..memory_bytes)
                .map(|i| (i as u8).wrapping_mul(lane.wrapping_add(3)))
                .collect()
        })
        .collect();

    let keys = per_device_keys(algorithm, width);
    let started = Instant::now();
    for round in 0..iterations {
        let t = SimTime::from_secs(round as u64);
        for (lane, image) in images.iter().enumerate() {
            std::hint::black_box(Measurement::compute_keyed(&keys[lane], t, image));
        }
    }
    let scalar_wall = started.elapsed().as_secs_f64().max(1e-9);
    let scalar_per_sec = (iterations * images.len()) as f64 / scalar_wall;

    let lane_per_sec = match width {
        8 => measure_width::<8>(algorithm, &images, iterations),
        4 => measure_width::<4>(algorithm, &images, iterations),
        _ => scalar_per_sec,
    };

    LaneSpeedup {
        lanes: width,
        scalar_per_sec,
        lane_per_sec,
        speedup: lane_per_sec / scalar_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_width_rounds_down_to_supported() {
        assert_eq!(effective_width(1), 1);
        assert_eq!(effective_width(2), 1);
        assert_eq!(effective_width(3), 1);
        assert_eq!(effective_width(4), 4);
        assert_eq!(effective_width(6), 4);
        assert_eq!(effective_width(8), 8);
        assert_eq!(effective_width(64), 8);
    }

    #[test]
    fn scalar_width_reports_unit_speedup() {
        let probe = measure(MacAlgorithm::HmacSha256, 512, 1);
        assert_eq!(probe.lanes, 1);
        assert!((probe.speedup - 1.0).abs() < f64::EPSILON);
        assert!(probe.scalar_per_sec > 0.0);
    }

    #[test]
    fn lane_probe_reports_positive_rates() {
        let probe = measure(MacAlgorithm::KeyedBlake2s, 1024, 4);
        assert_eq!(probe.lanes, 4);
        assert!(probe.scalar_per_sec > 0.0);
        assert!(probe.lane_per_sec > 0.0);
        assert!(probe.speedup > 0.0);
    }

    #[test]
    fn json_shape_is_balanced() {
        let probe = measure(MacAlgorithm::HmacSha1, 256, 8);
        let text = probe.to_json();
        assert!(text.contains("\"lanes\": 8"));
        assert!(text.contains("\"speedup\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
