//! Bounded, merge-invariant latency sampling for fleet runs.
//!
//! The on-demand leg used to push every completed exchange's latency into
//! an unbounded `Vec<SimDuration>` — fine for CI-sized runs, unbounded
//! memory on a million-exchange fleet. [`LatencyReservoir`] replaces it
//! with a *bottom-k priority sample*: every observation carries a
//! deterministic 64-bit priority (drawn from the run seed and the
//! observation's identity, never from shard-local state) and the reservoir
//! keeps the `cap` observations with the smallest priorities.
//!
//! Bottom-k is the one sampling scheme that is exact under sharding: the
//! global bottom-k of a run is a subset of the union of the per-shard
//! bottom-ks, so merging shard reservoirs and truncating reproduces the
//! single-threaded sample bit for bit at any thread count. When the run
//! produces at most `cap` observations (every CI configuration), the
//! "sample" is the complete population and the percentiles are exact.

use erasmus_sim::{SimDuration, SimRng};

/// Default number of latency samples a fleet run retains.
pub const RESERVOIR_CAP: usize = 4096;

/// Stream salt for latency-sample priorities.
const LATENCY_STREAM: u64 = 0x6c61_7465_6e63_7921;

/// Deterministic priority of one latency observation, drawn from the run
/// seed and the observation's global identity `(device, instant)` — never
/// from shard-local state, so the sample is partition-invariant.
pub fn sample_priority(seed: u64, device: u64, instant_nanos: u64) -> u64 {
    SimRng::seed_from(
        seed ^ LATENCY_STREAM
            ^ device.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ instant_nanos.wrapping_mul(0x6a09_e667_f3bc_c909),
    )
    .next_u64()
}

/// A fixed-capacity bottom-k sample of simulated latencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyReservoir {
    cap: usize,
    /// `(priority, latency)` pairs; kept loosely bounded between pushes and
    /// compacted to the `cap` smallest priorities on demand.
    entries: Vec<(u64, SimDuration)>,
    /// Total observations offered, retained or not.
    observed: u64,
}

impl LatencyReservoir {
    /// An empty reservoir retaining at most `cap` samples (at least 1).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            entries: Vec::new(),
            observed: 0,
        }
    }

    /// An empty reservoir with the default fleet capacity.
    pub fn with_default_cap() -> Self {
        Self::new(RESERVOIR_CAP)
    }

    /// Offers one observation. Memory stays bounded at `2 × cap` entries:
    /// the buffer is compacted (sort by priority, truncate) whenever it
    /// fills, so pushes are amortized O(log cap).
    pub fn push(&mut self, priority: u64, latency: SimDuration) {
        self.observed += 1;
        self.entries.push((priority, latency));
        if self.entries.len() >= self.cap * 2 {
            self.compact();
        }
    }

    /// Folds another reservoir (of the same capacity) into this one; the
    /// result is identical to a single reservoir having seen both streams.
    pub fn merge(&mut self, other: LatencyReservoir) {
        self.observed += other.observed;
        self.entries.extend_from_slice(&other.entries);
        if self.entries.len() >= self.cap * 2 {
            self.compact();
        }
    }

    fn compact(&mut self) {
        self.entries.sort_unstable();
        self.entries.truncate(self.cap);
    }

    /// Number of retained samples (== the number observed while the
    /// population fits the capacity).
    pub fn len(&self) -> usize {
        self.entries.len().min(self.cap)
    }

    /// Whether the reservoir holds no samples.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total observations offered, retained or not.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The retained latencies, ascending — the input `percentile` expects.
    pub fn sorted_latencies(&self) -> Vec<SimDuration> {
        let mut keep = self.entries.clone();
        keep.sort_unstable();
        keep.truncate(self.cap);
        let mut latencies: Vec<SimDuration> =
            keep.into_iter().map(|(_, latency)| latency).collect();
        latencies.sort_unstable();
        latencies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_everything_below_capacity() {
        let mut reservoir = LatencyReservoir::new(8);
        for i in 0..5u64 {
            reservoir.push(sample_priority(42, i, i), SimDuration::from_millis(i));
        }
        assert_eq!(reservoir.len(), 5);
        assert_eq!(reservoir.observed(), 5);
        let sorted = reservoir.sorted_latencies();
        assert_eq!(sorted.len(), 5);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bounds_memory_and_keeps_the_smallest_priorities() {
        let mut reservoir = LatencyReservoir::new(4);
        for i in 0..100u64 {
            // Priority == latency in millis, so the kept sample is known.
            reservoir.push(i, SimDuration::from_millis(i));
            assert!(reservoir.entries.len() < 8, "buffer unbounded");
        }
        assert_eq!(reservoir.observed(), 100);
        assert_eq!(reservoir.len(), 4);
        assert_eq!(
            reservoir.sorted_latencies(),
            (0..4).map(SimDuration::from_millis).collect::<Vec<_>>()
        );
    }

    #[test]
    fn merge_is_partition_invariant() {
        // Split one stream across three "shards" arbitrarily: the merged
        // reservoir must equal the single-reservoir run exactly.
        let observations: Vec<(u64, SimDuration)> = (0..257u64)
            .map(|i| (sample_priority(7, i % 13, i), SimDuration::from_micros(i)))
            .collect();
        let mut whole = LatencyReservoir::new(16);
        for &(priority, latency) in &observations {
            whole.push(priority, latency);
        }
        let mut shards = [
            LatencyReservoir::new(16),
            LatencyReservoir::new(16),
            LatencyReservoir::new(16),
        ];
        for (i, &(priority, latency)) in observations.iter().enumerate() {
            shards[i % 3].push(priority, latency);
        }
        let mut merged = LatencyReservoir::new(16);
        for shard in shards {
            merged.merge(shard);
        }
        assert_eq!(merged.observed(), whole.observed());
        assert_eq!(merged.sorted_latencies(), whole.sorted_latencies());
    }

    #[test]
    fn priorities_are_pure_functions_of_identity() {
        assert_eq!(sample_priority(1, 2, 3), sample_priority(1, 2, 3));
        assert_ne!(sample_priority(1, 2, 3), sample_priority(2, 2, 3));
        assert_ne!(sample_priority(1, 2, 3), sample_priority(1, 3, 3));
        assert_ne!(sample_priority(1, 2, 3), sample_priority(1, 2, 4));
    }
}
