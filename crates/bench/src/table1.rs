//! Table 1: size of the attestation executable.

use erasmus_crypto::MacAlgorithm;
use erasmus_hw::{CodeSizeModel, RaMode, SecurityArchitecture};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// MAC implementation.
    pub mac: MacAlgorithm,
    /// SMART+ on-demand size in KiB (`None` where the paper leaves a blank).
    pub smart_on_demand_kib: Option<f64>,
    /// SMART+ ERASMUS size in KiB.
    pub smart_erasmus_kib: Option<f64>,
    /// HYDRA on-demand size in KiB.
    pub hydra_on_demand_kib: Option<f64>,
    /// HYDRA ERASMUS size in KiB.
    pub hydra_erasmus_kib: Option<f64>,
}

/// Produces the three rows of Table 1 from the calibrated code-size model.
pub fn rows() -> Vec<Table1Row> {
    let model = CodeSizeModel::calibrated();
    MacAlgorithm::ALL
        .iter()
        .map(|&mac| {
            let cell = |arch, mode| {
                model
                    .executable_size(arch, mode, mac)
                    .map(|size| size.as_kib())
            };
            Table1Row {
                mac,
                smart_on_demand_kib: cell(SecurityArchitecture::SmartPlus, RaMode::OnDemand),
                smart_erasmus_kib: cell(SecurityArchitecture::SmartPlus, RaMode::Erasmus),
                hydra_on_demand_kib: cell(SecurityArchitecture::Hydra, RaMode::OnDemand),
                hydra_erasmus_kib: cell(SecurityArchitecture::Hydra, RaMode::Erasmus),
            }
        })
        .collect()
}

/// Renders Table 1 in the same layout as the paper.
pub fn render() -> String {
    let mut out = String::from(
        "Table 1: Size of Attestation Executable\n\
         MAC Impl.        | SMART+ On-Demand | SMART+ ERASMUS | HYDRA On-Demand | HYDRA ERASMUS\n",
    );
    for row in rows() {
        let cell = |value: Option<f64>| match value {
            Some(kib) => format!("{kib:.2}KB"),
            None => "-".to_owned(),
        };
        out.push_str(&format!(
            "{:<16} | {:>16} | {:>14} | {:>15} | {:>13}\n",
            row.mac.paper_name(),
            cell(row.smart_on_demand_kib),
            cell(row.smart_erasmus_kib),
            cell(row.hydra_on_demand_kib),
            cell(row.hydra_erasmus_kib),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_rows_in_table_order() {
        let rows = rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].mac, MacAlgorithm::HmacSha1);
        assert_eq!(rows[1].mac, MacAlgorithm::HmacSha256);
        assert_eq!(rows[2].mac, MacAlgorithm::KeyedBlake2s);
    }

    #[test]
    fn hmac_sha1_has_no_hydra_entry() {
        let rows = rows();
        assert!(rows[0].hydra_on_demand_kib.is_none());
        assert!(rows[0].hydra_erasmus_kib.is_none());
        assert!(rows[1].hydra_on_demand_kib.is_some());
    }

    #[test]
    fn values_match_paper_within_tolerance() {
        let rows = rows();
        let close = |value: Option<f64>, expected: f64| {
            (value.expect("value present") - expected).abs() < 0.05
        };
        assert!(close(rows[0].smart_on_demand_kib, 4.9));
        assert!(close(rows[0].smart_erasmus_kib, 4.7));
        assert!(close(rows[1].smart_on_demand_kib, 5.1));
        assert!(close(rows[1].smart_erasmus_kib, 4.9));
        assert!(close(rows[1].hydra_on_demand_kib, 231.96));
        assert!(close(rows[1].hydra_erasmus_kib, 233.84));
        assert!(close(rows[2].smart_on_demand_kib, 28.9));
        assert!(close(rows[2].smart_erasmus_kib, 28.7));
        assert!(close(rows[2].hydra_on_demand_kib, 239.29));
        assert!(close(rows[2].hydra_erasmus_kib, 241.17));
    }

    #[test]
    fn render_contains_every_mac() {
        let text = render();
        assert!(text.contains("HMAC-SHA1"));
        assert!(text.contains("HMAC-SHA256"));
        assert!(text.contains("Keyed BLAKE2S"));
        assert!(text.contains("231.96KB"));
    }
}
