//! Scheduling ablations: regular vs irregular intervals against
//! schedule-aware malware (Section 3.5), and lenient scheduling for
//! time-critical tasks (Section 5).

use erasmus_core::{CollectionRequest, DeviceId, Prover, ProverConfig, ScheduleKind, Verifier};
use erasmus_crypto::MacAlgorithm;
use erasmus_hw::{DeviceKey, DeviceProfile};
use erasmus_sim::{SimDuration, SimRng, SimTime};

/// Result of the schedule-aware-malware ablation for one schedule policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleAblationPoint {
    /// Human-readable schedule name.
    pub schedule: String,
    /// Fraction of trials in which the schedule-aware malware was caught by
    /// at least one measurement.
    pub detection_rate: f64,
}

/// Simulates schedule-aware mobile malware against a prover using the given
/// schedule.
///
/// The malware knows the *nominal* `T_M` and the phase of the regular
/// schedule, enters right after each expected measurement and leaves just
/// before the next one. Against a regular schedule it always escapes;
/// against the CSPRNG-driven irregular schedule it gets caught whenever an
/// unpredictable measurement lands inside its dwell window.
pub fn schedule_aware_malware_detection(
    schedule: ScheduleKind,
    trials: usize,
    seed: u64,
) -> ScheduleAblationPoint {
    let t_m = SimDuration::from_secs(10);
    let horizon = SimTime::from_secs(200);
    let mut rng = SimRng::seed_from(seed);
    let mut detected = 0usize;

    for trial in 0..trials {
        let key = DeviceKey::derive(b"schedule ablation", trial as u64);
        let config = ProverConfig::builder()
            .measurement_interval(t_m)
            .buffer_slots(64)
            .schedule(schedule.clone())
            .build()
            .expect("valid config");
        let mut prover = Prover::new(
            DeviceId::new(trial as u64),
            DeviceProfile::msp430_8mhz(1024),
            key.clone(),
            config,
        )
        .expect("provisioning");
        let mut verifier = Verifier::new(key, MacAlgorithm::HmacSha256);
        verifier.learn_reference_image(prover.mcu().app_memory());

        // The malware believes measurements happen at k * T_M. It enters
        // shortly after each expected instant and leaves before the next,
        // with a small random jitter so trials differ.
        let mut caught = false;
        let mut window_start = SimTime::from_secs(10);
        while window_start < horizon {
            let enter = window_start + SimDuration::from_millis(500 + rng.gen_range(0, 500));
            let leave = window_start + t_m - SimDuration::from_millis(500 + rng.gen_range(0, 500));
            prover.run_until(enter).expect("measurements");
            prover
                .mcu_mut()
                .write_app_memory(0, b"schedule-aware malware")
                .expect("infect");
            prover.run_until(leave).expect("measurements");
            // Restore the original contents (cover tracks).
            prover
                .mcu_mut()
                .write_app_memory(0, &[0u8; 22])
                .expect("restore");
            window_start += t_m;
        }
        prover.run_until(horizon).expect("measurements");
        let response = prover.handle_collection(&CollectionRequest::all(), horizon);
        if let Ok(report) = verifier.verify_collection(&response, horizon) {
            caught = report.verdict().indicates_compromise();
        }
        if caught {
            detected += 1;
        }
    }

    ScheduleAblationPoint {
        schedule: schedule.to_string(),
        detection_rate: detected as f64 / trials as f64,
    }
}

/// Runs the regular-vs-irregular ablation.
pub fn schedule_ablation(trials: usize, seed: u64) -> Vec<ScheduleAblationPoint> {
    vec![
        schedule_aware_malware_detection(ScheduleKind::Regular, trials, seed),
        schedule_aware_malware_detection(
            ScheduleKind::Irregular {
                lower: SimDuration::from_secs(5),
                upper: SimDuration::from_secs(15),
            },
            trials,
            seed,
        ),
    ]
}

/// Result of the lenient-scheduling experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LenientPoint {
    /// The window factor `w`.
    pub window_factor: f64,
    /// Measurements actually taken over the run.
    pub measurements_taken: u64,
    /// Deferrals granted to time-critical tasks.
    pub deferrals: u64,
}

/// Simulates a prover whose application raises a time-critical task at every
/// nominal measurement instant, forcing a deferral when the schedule allows
/// one (Section 5).
pub fn lenient_scheduling(window_factors: &[f64]) -> Vec<LenientPoint> {
    window_factors
        .iter()
        .map(|&w| {
            let config = ProverConfig::builder()
                .measurement_interval(SimDuration::from_secs(10))
                .buffer_slots(64)
                .schedule(ScheduleKind::Lenient { window_factor: w })
                .build()
                .expect("valid config");
            let mut prover = Prover::new(
                DeviceId::new(0),
                DeviceProfile::msp430_8mhz(1024),
                DeviceKey::from_bytes([9u8; 32]),
                config,
            )
            .expect("provisioning");
            let horizon = SimTime::from_secs(300);
            loop {
                let due = prover.next_measurement_due();
                if due > horizon {
                    break;
                }
                // The application is busy exactly at the nominal instant and
                // asks for a deferral; when none is available the measurement
                // happens anyway.
                if prover.defer_measurement(due).is_none() {
                    prover.run_until(due).expect("measurement");
                }
            }
            LenientPoint {
                window_factor: w,
                measurements_taken: prover.measurements_taken(),
                deferrals: prover.aborted_measurements(),
            }
        })
        .collect()
}

/// Renders both ablations.
pub fn render(trials: usize, seed: u64) -> String {
    let mut out = String::from("Scheduling ablations\n\n");
    out.push_str(
        "Schedule-aware mobile malware (enters/leaves around the nominal T_M instants):\n",
    );
    for point in schedule_ablation(trials, seed) {
        out.push_str(&format!(
            "  {:<28} detection rate {:.2}\n",
            point.schedule, point.detection_rate
        ));
    }
    out.push_str(
        "\nLenient scheduling (time-critical task at every nominal instant, 300 s run):\n",
    );
    for point in lenient_scheduling(&[1.0, 2.0, 3.0]) {
        out.push_str(&format!(
            "  w = {:<4} measurements {}  deferrals {}\n",
            point.window_factor, point.measurements_taken, point.deferrals
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_schedule_misses_schedule_aware_malware() {
        let point = schedule_aware_malware_detection(ScheduleKind::Regular, 3, 1);
        assert_eq!(
            point.detection_rate, 0.0,
            "predictable schedule never catches it"
        );
    }

    #[test]
    fn irregular_schedule_catches_schedule_aware_malware() {
        let point = schedule_aware_malware_detection(
            ScheduleKind::Irregular {
                lower: SimDuration::from_secs(5),
                upper: SimDuration::from_secs(15),
            },
            3,
            1,
        );
        assert!(
            point.detection_rate > 0.5,
            "unpredictable measurements should catch it: {}",
            point.detection_rate
        );
    }

    #[test]
    fn lenient_window_trades_measurements_for_availability() {
        let points = lenient_scheduling(&[1.0, 3.0]);
        // A wider window grants deferrals; measurements still happen at the
        // window ends, so the count stays close to the nominal schedule.
        assert_eq!(points[0].deferrals, 0, "w = 1 has no slack");
        assert!(points[1].deferrals > 0, "w = 3 grants deferrals");
        assert!(points[1].measurements_taken > 0);
    }

    #[test]
    fn render_mentions_both_ablations() {
        let text = render(1, 2);
        assert!(text.contains("Schedule-aware"));
        assert!(text.contains("Lenient scheduling"));
        assert!(text.contains("w = 3"));
    }
}
