//! Section 4.1 hardware cost: FPGA registers and look-up tables.

use erasmus_hw::HardwareCost;

/// Renders the register/LUT comparison of Section 4.1.
pub fn render() -> String {
    let cost = HardwareCost::openmsp430_erasmus();
    format!(
        "Hardware cost (OpenMSP430 synthesis, Section 4.1)\n\
         registers: {} vs {} baseline (+{:.1}%)\n\
         look-up tables: {} vs {} baseline (+{:.1}%)\n\
         (identical for ERASMUS and on-demand attestation)\n",
        cost.registers(),
        cost.baseline_registers(),
        cost.register_overhead_percent(),
        cost.luts(),
        cost.baseline_luts(),
        cost.lut_overhead_percent(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_paper_numbers() {
        let text = render();
        assert!(text.contains("655 vs 579"));
        assert!(text.contains("1969 vs 1731"));
    }
}
