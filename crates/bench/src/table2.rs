//! Table 2: run-time of the collection phase on the i.MX6 Sabre Lite.

use erasmus_core::{CollectionRequest, DeviceId, Prover, ProverConfig, Verifier};
use erasmus_crypto::MacAlgorithm;
use erasmus_hw::{CostModel, DeviceKey, DeviceProfile};
use erasmus_sim::{SimDuration, SimTime};

/// One operation row of Table 2 (times in milliseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Operation name as printed in the paper.
    pub operation: &'static str,
    /// ERASMUS column (`None` = "N/A").
    pub erasmus_ms: Option<f64>,
    /// ERASMUS+OD column.
    pub erasmus_od_ms: Option<f64>,
}

/// The memory size the paper uses for the Table 2 measurement row (10 MB).
pub const TABLE2_MEMORY_BYTES: usize = 10 * 1024 * 1024;

/// Produces the rows of Table 2 from the cost model (keyed BLAKE2s over
/// 10 MB, as in the paper's footnote).
pub fn rows() -> Vec<Table2Row> {
    let profile = DeviceProfile::imx6_sabre_lite(TABLE2_MEMORY_BYTES);
    let cost = CostModel::new(&profile);
    let alg = MacAlgorithm::KeyedBlake2s;
    // A collection of k = 8 measurements of 72 bytes each — the payload term
    // is negligible either way, matching the paper's fixed per-packet costs.
    let payload = 8 * 72;

    let verify = cost.verify_request(alg).as_millis_f64();
    let measure = cost.measurement(TABLE2_MEMORY_BYTES, alg).as_millis_f64();
    let construct = cost.construct_packet(payload).as_millis_f64();
    let send = cost.send_packet(payload).as_millis_f64();

    vec![
        Table2Row {
            operation: "Verify Request",
            erasmus_ms: None,
            erasmus_od_ms: Some(verify),
        },
        Table2Row {
            operation: "Compute Measurement",
            erasmus_ms: None,
            erasmus_od_ms: Some(measure),
        },
        Table2Row {
            operation: "Construct UDP Packet",
            erasmus_ms: Some(construct),
            erasmus_od_ms: Some(construct),
        },
        Table2Row {
            operation: "Send UDP Packet",
            erasmus_ms: Some(send),
            erasmus_od_ms: Some(send),
        },
        Table2Row {
            operation: "Total Collection Run-time",
            erasmus_ms: Some(construct + send),
            erasmus_od_ms: Some(verify + measure + construct + send),
        },
    ]
}

/// End-to-end check of the same numbers through the actual protocol engines
/// (rather than the cost model directly): returns
/// `(erasmus_collection_ms, erasmus_od_collection_ms)` for a provisioned
/// HYDRA-class prover.
pub fn measured_collection_times() -> (f64, f64) {
    let key = DeviceKey::from_bytes([0x42u8; 32]);
    let config = ProverConfig::builder()
        .mac_algorithm(MacAlgorithm::KeyedBlake2s)
        .measurement_interval(SimDuration::from_secs(60))
        .buffer_slots(16)
        .build()
        .expect("valid config");
    let mut prover = Prover::new(
        DeviceId::new(1),
        DeviceProfile::imx6_sabre_lite(TABLE2_MEMORY_BYTES),
        key.clone(),
        config,
    )
    .expect("provisioning");
    let mut verifier = Verifier::new(key, MacAlgorithm::KeyedBlake2s);

    prover
        .run_until(SimTime::from_secs(480))
        .expect("self-measurements");
    let erasmus = prover
        .handle_collection(&CollectionRequest::latest(8), SimTime::from_secs(480))
        .prover_time
        .as_millis_f64();

    let request = verifier.make_on_demand_request(8, SimTime::from_secs(481));
    let erasmus_od = prover
        .handle_on_demand(&request, SimTime::from_secs(481))
        .expect("request accepted")
        .prover_time
        .as_millis_f64();
    (erasmus, erasmus_od)
}

/// Renders Table 2 in the paper's layout.
pub fn render() -> String {
    let mut out = String::from(
        "Table 2: Run-Time (in ms) of Collection Phase on I.MX6-Sabre Lite\n\
         Operations                  | ERASMUS  | ERASMUS+OD\n",
    );
    for row in rows() {
        let cell = |value: Option<f64>| match value {
            Some(ms) => format!("{ms:.3}"),
            None => "N/A".to_owned(),
        };
        out.push_str(&format!(
            "{:<27} | {:>8} | {:>10}\n",
            row.operation,
            cell(row.erasmus_ms),
            cell(row.erasmus_od_ms),
        ));
    }
    let (erasmus, erasmus_od) = measured_collection_times();
    out.push_str(&format!(
        "(measured through the protocol engines: ERASMUS {erasmus:.3} ms, ERASMUS+OD {erasmus_od:.1} ms)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_paper_shape() {
        let rows = rows();
        assert_eq!(rows.len(), 5);
        // Verify request ≈ 0.005 ms (paper) — ours is within a factor of 2.
        let verify = rows[0].erasmus_od_ms.expect("value");
        assert!(verify < 0.01, "verify request {verify} ms");
        // Compute measurement ≈ 285.6 ms.
        let measure = rows[1].erasmus_od_ms.expect("value");
        assert!((measure - 285.6).abs() < 1.5, "measurement {measure} ms");
        // ERASMUS total ≈ 0.015 ms.
        let total = rows[4].erasmus_ms.expect("value");
        assert!((total - 0.015).abs() < 0.005, "erasmus total {total} ms");
        // ERASMUS+OD total dominated by the measurement.
        let od_total = rows[4].erasmus_od_ms.expect("value");
        assert!(od_total > 285.0);
    }

    #[test]
    fn erasmus_is_thousands_of_times_cheaper() {
        let rows = rows();
        let erasmus = rows[4].erasmus_ms.expect("value");
        let od = rows[4].erasmus_od_ms.expect("value");
        // The paper claims at least a factor of 3,000 versus the measurement
        // phase; our collection path includes the packet costs so the ratio
        // is "only" in the tens of thousands.
        assert!(od / erasmus > 3_000.0, "ratio {}", od / erasmus);
    }

    #[test]
    fn protocol_engine_times_are_consistent_with_cost_model() {
        let (erasmus, erasmus_od) = measured_collection_times();
        let rows = rows();
        let model_erasmus = rows[4].erasmus_ms.expect("value");
        let model_od = rows[4].erasmus_od_ms.expect("value");
        // The engine adds the per-entry buffer-read cost, so allow slack.
        assert!(
            (erasmus - model_erasmus).abs() < 0.05,
            "{erasmus} vs {model_erasmus}"
        );
        assert!(
            (erasmus_od - model_od).abs() < 5.0,
            "{erasmus_od} vs {model_od}"
        );
    }

    #[test]
    fn render_has_all_operations() {
        let text = render();
        for op in [
            "Verify Request",
            "Compute Measurement",
            "Construct UDP Packet",
            "Send UDP Packet",
            "Total Collection Run-time",
        ] {
            assert!(text.contains(op), "missing {op}");
        }
    }
}
