//! Renderers for the paper's protocol and memory-organization figures
//! (Figures 2, 3, 4, 5 and 7). These are not performance experiments — they
//! dump, from the running implementation, the same structures the paper
//! draws, so the reproduction can be checked piece by piece.

use erasmus_core::{DeviceId, DeviceKey, Prover, ProverConfig, Verifier};
use erasmus_crypto::MacAlgorithm;
use erasmus_hw::{AccessKind, DeviceProfile, MpuConfig, RegionKind, Subject};
use erasmus_sim::{SimDuration, SimTime};

fn provisioned(profile: DeviceProfile) -> (Prover, Verifier) {
    let key = DeviceKey::from_bytes([0x13u8; 32]);
    let config = ProverConfig::builder()
        .measurement_interval(SimDuration::from_secs(10))
        .buffer_slots(12)
        .build()
        .expect("valid config");
    let prover = Prover::new(DeviceId::new(1), profile, key.clone(), config).expect("provisioning");
    let mut verifier = Verifier::new(key, MacAlgorithm::HmacSha256);
    verifier.learn_reference_image(prover.mcu().app_memory());
    (prover, verifier)
}

/// Figure 2: one run of the ERASMUS collection protocol, message by message.
pub fn figure2() -> String {
    let (mut prover, mut verifier) = provisioned(DeviceProfile::msp430_8mhz(1024));
    prover
        .run_until(SimTime::from_secs(70))
        .expect("measurements");
    let request = verifier.make_collection_request(4);
    let response = prover.handle_collection(&request, SimTime::from_secs(70));
    let wire = erasmus_core::encode_collection_response(&response);
    let report = verifier
        .verify_collection(&response, SimTime::from_secs(70))
        .expect("report");

    let mut out = String::from("Figure 2: ERASMUS collection protocol\n");
    out.push_str(&format!("Vrf -> Prv : collect k = {}\n", request.k));
    out.push_str(&format!(
        "Prv -> Vrf : {} measurements ({} bytes on the wire, {} of prover time)\n",
        response.measurements.len(),
        wire.len(),
        response.prover_time
    ));
    for m in &response.measurements {
        out.push_str(&format!("             {m}\n"));
    }
    out.push_str(&format!(
        "Vrf        : checks each t and h, verifies each MAC -> {}\n",
        report.verdict()
    ));
    out
}

/// Figure 3: the rolling-buffer layout with the paper's example parameters
/// (n = 12, current slot i, k = 7 requested).
pub fn figure3() -> String {
    let (mut prover, _) = provisioned(DeviceProfile::msp430_8mhz(1024));
    // Run long enough that the buffer has wrapped: 15 measurements into 12 slots.
    prover
        .run_until(SimTime::from_secs(150))
        .expect("measurements");
    let buffer = prover.buffer();
    let current = buffer.slot_for(prover.now());

    let mut out = String::from("Figure 3: ERASMUS memory allocation (rolling buffer, n = 12)\n");
    out.push_str(&format!(
        "current slot i = {} (i = \u{230a}t / T_M\u{230b} mod n), k = 7 most recent marked *\n",
        current
    ));
    let latest: Vec<SimTime> = buffer.latest(7).iter().map(|m| m.timestamp()).collect();
    for slot in 0..buffer.capacity() {
        match buffer.slot(slot) {
            Some(m) => {
                let marker = if latest.contains(&m.timestamp()) {
                    "*"
                } else {
                    " "
                };
                out.push_str(&format!(
                    "  L{slot:<2} {marker} t = {:>5.0} s  H(mem) = {:02x}{:02x}..  MAC = {:.8}..\n",
                    m.timestamp().as_secs_f64(),
                    m.digest()[0],
                    m.digest()[1],
                    m.tag().to_string()
                ));
            }
            None => out.push_str(&format!("  L{slot:<2}   (empty)\n")),
        }
    }
    out
}

/// Figure 4: one run of the ERASMUS+OD protocol.
pub fn figure4() -> String {
    let (mut prover, mut verifier) = provisioned(DeviceProfile::msp430_8mhz(1024));
    prover
        .run_until(SimTime::from_secs(70))
        .expect("measurements");
    let request = verifier.make_on_demand_request(3, SimTime::from_secs(72));
    let response = prover
        .handle_on_demand(&request, SimTime::from_secs(72))
        .expect("request accepted");
    let report = verifier
        .verify_on_demand(&request, &response, SimTime::from_secs(72))
        .expect("report");

    let mut out = String::from("Figure 4: ERASMUS+OD protocol\n");
    out.push_str(&format!(
        "Vrf -> Prv : t_req = {:.0} s, k = {}, MAC_K(t_req, k) = {:.8}..\n",
        request.treq.as_secs_f64(),
        request.k,
        request.tag.to_string()
    ));
    out.push_str("Prv        : checks t_req freshness, verifies MAC, computes fresh M_0\n");
    out.push_str(&format!(
        "Prv -> Vrf : M_0 = {} plus {} buffered measurements ({} of prover time)\n",
        response.fresh,
        response.history.len(),
        response.prover_time
    ));
    out.push_str(&format!(
        "Vrf        : verifies M_0 and history -> {} (freshness {})\n",
        report.verdict(),
        report.freshness()
    ));
    out
}

fn render_access_rules(title: &str, mpu: &MpuConfig) -> String {
    let subjects = [
        Subject::AttestationCode,
        Subject::Application,
        Subject::Peripheral,
    ];
    let regions = [
        RegionKind::Rom,
        RegionKind::Key,
        RegionKind::Application,
        RegionKind::MeasurementStore,
        RegionKind::Peripheral,
    ];
    let mut out = format!("{title}\n{:<18}", "subject \\ region");
    for region in regions {
        out.push_str(&format!(" | {:<17}", region.name()));
    }
    out.push('\n');
    for subject in subjects {
        out.push_str(&format!("{:<18}", subject.name()));
        for region in regions {
            let mut cell = String::new();
            for (access, letter) in [
                (AccessKind::Read, 'r'),
                (AccessKind::Write, 'w'),
                (AccessKind::Execute, 'x'),
            ] {
                cell.push(if mpu.is_allowed(subject, region, access) {
                    letter
                } else {
                    '-'
                });
            }
            out.push_str(&format!(" | {cell:<17}"));
        }
        out.push('\n');
    }
    out
}

/// Figure 5: SMART+ memory organization and access rules.
pub fn figure5() -> String {
    let (prover, _) = provisioned(DeviceProfile::msp430_8mhz(1024));
    let mut out = render_access_rules(
        "Figure 5: SMART+-based memory organization and access rules",
        prover.mcu().mpu(),
    );
    out.push_str("\nmemory map:\n");
    for region in prover.mcu().memory_map().regions() {
        out.push_str(&format!(
            "  {:<18} base 0x{:06x}  size {:>8} bytes\n",
            region.kind.name(),
            region.base,
            region.size
        ));
    }
    out
}

/// Figure 7: HYDRA memory organization and access rules.
pub fn figure7() -> String {
    let (prover, _) = provisioned(DeviceProfile::imx6_sabre_lite(10 * 1024));
    let mut out = render_access_rules(
        "Figure 7: HYDRA-based memory organization (seL4 capabilities)",
        prover.mcu().mpu(),
    );
    out.push_str("\nmemory map:\n");
    for region in prover.mcu().memory_map().regions() {
        out.push_str(&format!(
            "  {:<18} base 0x{:06x}  size {:>8} bytes\n",
            region.kind.name(),
            region.base,
            region.size
        ));
    }
    out.push_str("secure boot: enabled (PrAtt image digest checked at every trusted entry)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shows_request_and_verdict() {
        let text = figure2();
        assert!(text.contains("collect k = 4"));
        assert!(text.contains("4 measurements"));
        assert!(text.contains("all healthy"));
    }

    #[test]
    fn figure3_marks_the_latest_seven() {
        let text = figure3();
        assert!(text.contains("n = 12"));
        assert_eq!(text.matches(" * ").count(), 7);
        // After 15 measurements into 12 slots, every slot is occupied.
        assert!(!text.contains("(empty)"));
    }

    #[test]
    fn figure4_shows_fresh_measurement_and_history() {
        let text = figure4();
        assert!(text.contains("t_req = 72"));
        assert!(text.contains("M_0"));
        assert!(text.contains("3 buffered measurements"));
        assert!(text.contains("freshness 0ns"));
    }

    #[test]
    fn figure5_and_7_show_key_isolation() {
        for text in [figure5(), figure7()] {
            let key_column_rows: Vec<&str> = text
                .lines()
                .filter(|line| line.starts_with("application"))
                .collect();
            assert_eq!(key_column_rows.len(), 1);
            // The application row's key cell is all dashes (no access).
            assert!(key_column_rows[0].contains("---"));
            assert!(text.contains("memory map:"));
        }
        assert!(figure7().contains("secure boot"));
    }
}
