//! QoA detection-probability sweep: analytical formula versus Monte-Carlo
//! simulation of mobile malware with varying dwell times.

use erasmus_core::{InfectionSpec, QoaParams, Scenario};
use erasmus_sim::{SimDuration, SimRng, SimTime};

/// One point of the detection-probability curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionPoint {
    /// Malware dwell time.
    pub dwell: SimDuration,
    /// Analytical detection probability for ERASMUS (`min(1, dwell / T_M)`).
    pub erasmus_analytical: f64,
    /// Analytical detection probability for on-demand RA checking every
    /// `T_C` (`min(1, dwell / T_C)`).
    pub on_demand_analytical: f64,
    /// Monte-Carlo estimate for ERASMUS from full scenario runs.
    pub erasmus_simulated: f64,
}

/// Runs the sweep: for each dwell time, `trials` scenarios with a single
/// mobile infection arriving at a random phase.
pub fn sweep(
    measurement_interval: SimDuration,
    collection_interval: SimDuration,
    dwells: &[SimDuration],
    trials: usize,
    seed: u64,
) -> Vec<DetectionPoint> {
    let qoa = QoaParams::new(measurement_interval, collection_interval)
        .expect("sweep parameters are valid");
    let mut rng = SimRng::seed_from(seed);
    let duration = collection_interval * 3;

    dwells
        .iter()
        .map(|&dwell| {
            let mut detected = 0usize;
            for _ in 0..trials {
                // Arrival uniform over one full collection window, after the
                // first collection so the baseline is established.
                let arrival =
                    collection_interval + rng.gen_duration(SimDuration::ZERO, collection_interval);
                let outcome = Scenario::builder()
                    .measurement_interval(measurement_interval)
                    .collection_interval(collection_interval)
                    .duration(duration)
                    .infection(InfectionSpec::mobile(SimTime::ZERO + arrival, dwell))
                    .run()
                    .expect("scenario runs");
                if outcome.infections[0].detected {
                    detected += 1;
                }
            }
            DetectionPoint {
                dwell,
                erasmus_analytical: qoa.mobile_detection_probability(dwell),
                on_demand_analytical: qoa.on_demand_detection_probability(dwell),
                erasmus_simulated: detected as f64 / trials as f64,
            }
        })
        .collect()
}

/// The default sweep used by `repro qoa`: `T_M = 10 s`, `T_C = 120 s`, dwell
/// times from 1 s to 15 s.
pub fn default_sweep(trials: usize, seed: u64) -> Vec<DetectionPoint> {
    let dwells: Vec<SimDuration> = [1u64, 2, 4, 6, 8, 10, 15]
        .iter()
        .map(|&s| SimDuration::from_secs(s))
        .collect();
    sweep(
        SimDuration::from_secs(10),
        SimDuration::from_secs(120),
        &dwells,
        trials,
        seed,
    )
}

/// Renders the sweep as a table.
pub fn render(points: &[DetectionPoint]) -> String {
    let mut out = String::from(
        "QoA: mobile-malware detection probability (T_M = 10 s, T_C = 120 s)\n\
         dwell      | ERASMUS (analytic) | ERASMUS (simulated) | on-demand (analytic)\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<10} | {:>18.3} | {:>19.3} | {:>20.3}\n",
            p.dwell.to_string(),
            p.erasmus_analytical,
            p.erasmus_simulated,
            p.on_demand_analytical,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_tracks_analytical_curve() {
        // Small trial count keeps the test fast; tolerance is generous.
        let points = default_sweep(20, 7);
        for p in &points {
            assert!(
                (p.erasmus_simulated - p.erasmus_analytical).abs() < 0.3,
                "dwell {}: simulated {} vs analytic {}",
                p.dwell,
                p.erasmus_simulated,
                p.erasmus_analytical
            );
        }
        // Dwell ≥ T_M is always detected, analytically and in simulation.
        let saturated = points.last().expect("point");
        assert_eq!(saturated.erasmus_analytical, 1.0);
        assert_eq!(saturated.erasmus_simulated, 1.0);
    }

    #[test]
    fn erasmus_dominates_on_demand_everywhere() {
        let points = default_sweep(5, 3);
        for p in &points {
            assert!(p.erasmus_analytical >= p.on_demand_analytical);
        }
        // And strictly dominates for short dwell times.
        assert!(points[0].erasmus_analytical > points[0].on_demand_analytical);
    }

    #[test]
    fn render_lists_every_dwell() {
        let points = default_sweep(2, 1);
        let text = render(&points);
        assert_eq!(text.lines().count(), 2 + points.len());
        assert!(text.contains("15.000s"));
    }
}
