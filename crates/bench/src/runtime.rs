//! Figures 6 and 8: measurement run-time versus memory size.

use erasmus_crypto::MacAlgorithm;
use erasmus_hw::{CostModel, DeviceProfile};

/// Which attestation mode a curve belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Classic on-demand attestation (request authentication + measurement).
    OnDemand,
    /// ERASMUS self-measurement (no request authentication).
    Erasmus,
}

impl Mode {
    /// Label used in the figures' legends.
    pub fn label(self) -> &'static str {
        match self {
            Mode::OnDemand => "On-demand",
            Mode::Erasmus => "ERASMUS",
        }
    }
}

/// One point of a run-time curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimePoint {
    /// Measured memory size in bytes.
    pub memory_bytes: usize,
    /// Measurement run-time in seconds.
    pub seconds: f64,
}

/// One curve of Figure 6 / Figure 8.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeSeries {
    /// Which mode the curve belongs to.
    pub mode: Mode,
    /// Which MAC the curve uses.
    pub mac: MacAlgorithm,
    /// The sampled points, in increasing memory size.
    pub points: Vec<RuntimePoint>,
}

fn series_for(profile: &DeviceProfile, sizes: &[usize]) -> Vec<RuntimeSeries> {
    let cost = CostModel::new(profile);
    let mut series = Vec::new();
    for mac in [MacAlgorithm::HmacSha256, MacAlgorithm::KeyedBlake2s] {
        for mode in [Mode::OnDemand, Mode::Erasmus] {
            let points = sizes
                .iter()
                .map(|&memory_bytes| {
                    let duration = match mode {
                        Mode::Erasmus => cost.measurement(memory_bytes, mac),
                        Mode::OnDemand => {
                            cost.verify_request(mac) + cost.measurement(memory_bytes, mac)
                        }
                    };
                    RuntimePoint {
                        memory_bytes,
                        seconds: duration.as_secs_f64(),
                    }
                })
                .collect();
            series.push(RuntimeSeries { mode, mac, points });
        }
    }
    series
}

/// Figure 6: the MSP430 @ 8 MHz sweep from 0 to 10 KB.
pub fn figure6() -> Vec<RuntimeSeries> {
    let sizes: Vec<usize> = (0..=10).map(|kb| kb * 1024).collect();
    series_for(&DeviceProfile::msp430_8mhz(10 * 1024), &sizes)
}

/// Figure 8: the i.MX6 Sabre Lite @ 1 GHz sweep from 0 to 10 MB.
pub fn figure8() -> Vec<RuntimeSeries> {
    let sizes: Vec<usize> = (0..=10).map(|mb| mb * 1024 * 1024).collect();
    series_for(&DeviceProfile::imx6_sabre_lite(10 * 1024 * 1024), &sizes)
}

/// Renders a figure's series as an aligned text table (memory on rows,
/// one column per curve).
pub fn render(
    title: &str,
    series: &[RuntimeSeries],
    unit_bytes: usize,
    unit_label: &str,
) -> String {
    let mut out = format!("{title}\n{:<12}", format!("Mem ({unit_label})"));
    for s in series {
        out.push_str(&format!(
            " | {:>26}",
            format!("{} ({})", s.mode.label(), s.mac.paper_name())
        ));
    }
    out.push('\n');
    let rows = series.first().map(|s| s.points.len()).unwrap_or(0);
    for i in 0..rows {
        let memory = series[0].points[i].memory_bytes;
        out.push_str(&format!("{:<12}", memory / unit_bytes));
        for s in series {
            out.push_str(&format!(
                " | {:>26}",
                crate::fmt_seconds(s.points[i].seconds)
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_has_four_curves_of_eleven_points() {
        let series = figure6();
        assert_eq!(series.len(), 4);
        assert!(series.iter().all(|s| s.points.len() == 11));
    }

    #[test]
    fn figure6_runtime_is_linear_and_matches_headline() {
        let series = figure6();
        let erasmus_sha256 = series
            .iter()
            .find(|s| s.mode == Mode::Erasmus && s.mac == MacAlgorithm::HmacSha256)
            .expect("curve exists");
        // ~7 s at 10 KB (Section 5 / Figure 6).
        let at_10kb = erasmus_sha256.points.last().expect("point").seconds;
        assert!((at_10kb - 7.0).abs() < 0.2, "{at_10kb}");
        // Monotonically increasing.
        for pair in erasmus_sha256.points.windows(2) {
            assert!(pair[1].seconds > pair[0].seconds);
        }
    }

    #[test]
    fn figure6_on_demand_roughly_equals_erasmus() {
        let series = figure6();
        let erasmus = series
            .iter()
            .find(|s| s.mode == Mode::Erasmus && s.mac == MacAlgorithm::HmacSha256)
            .expect("curve");
        let on_demand = series
            .iter()
            .find(|s| s.mode == Mode::OnDemand && s.mac == MacAlgorithm::HmacSha256)
            .expect("curve");
        let e = erasmus.points.last().expect("point").seconds;
        let o = on_demand.points.last().expect("point").seconds;
        assert!(o > e, "on-demand pays for request authentication");
        assert!(
            (o - e) / e < 0.05,
            "but the curves are roughly equal: {e} vs {o}"
        );
    }

    #[test]
    fn figure8_matches_table2_measurement_time() {
        let series = figure8();
        let blake = series
            .iter()
            .find(|s| s.mode == Mode::Erasmus && s.mac == MacAlgorithm::KeyedBlake2s)
            .expect("curve");
        let at_10mb = blake.points.last().expect("point").seconds;
        assert!((at_10mb - 0.2856).abs() < 0.002, "{at_10mb}");
        // HMAC-SHA256 stays under the figure's 0.6 s axis.
        let sha = series
            .iter()
            .find(|s| s.mode == Mode::OnDemand && s.mac == MacAlgorithm::HmacSha256)
            .expect("curve");
        assert!(sha.points.last().expect("point").seconds < 0.6);
    }

    #[test]
    fn blake2s_is_the_faster_curve_on_both_figures() {
        for series in [figure6(), figure8()] {
            let blake = series
                .iter()
                .find(|s| s.mode == Mode::Erasmus && s.mac == MacAlgorithm::KeyedBlake2s)
                .expect("curve");
            let sha = series
                .iter()
                .find(|s| s.mode == Mode::Erasmus && s.mac == MacAlgorithm::HmacSha256)
                .expect("curve");
            assert!(
                blake.points.last().expect("p").seconds < sha.points.last().expect("p").seconds
            );
        }
    }

    #[test]
    fn render_mentions_all_curves() {
        let text = render("Figure 6", &figure6(), 1024, "KB");
        assert!(text.contains("Figure 6"));
        assert!(text.contains("On-demand (HMAC-SHA256)"));
        assert!(text.contains("ERASMUS (Keyed BLAKE2S)"));
        assert!(text.lines().count() >= 13);
    }
}
