//! Buffer-sizing ablation: how the rolling-buffer size `n` interacts with
//! the collection period `T_C` (Section 3.2's rule `T_C ≤ n · T_M`).

use erasmus_core::{QoaParams, Scenario};
use erasmus_sim::SimDuration;

/// One row of the buffer-sizing ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferSizingPoint {
    /// Rolling-buffer slots `n`.
    pub buffer_slots: usize,
    /// Whether the analytical rule predicts measurement loss.
    pub rule_predicts_loss: bool,
    /// Measurements overwritten before collection in the simulated run.
    pub alarms: u64,
    /// Total measurements taken in the run.
    pub measurements: u64,
}

/// Runs a clean (malware-free) deployment with `T_M` = 10 s, `T_C` = 80 s for
/// each buffer size and reports whether history was lost.
pub fn sweep(buffer_sizes: &[usize]) -> Vec<BufferSizingPoint> {
    let t_m = SimDuration::from_secs(10);
    let t_c = SimDuration::from_secs(80);
    let qoa = QoaParams::new(t_m, t_c).expect("valid params");

    buffer_sizes
        .iter()
        .map(|&n| {
            let outcome = Scenario::builder()
                .measurement_interval(t_m)
                .collection_interval(t_c)
                .buffer_slots(n)
                .history_per_collection(qoa.recommended_history())
                .duration(SimDuration::from_secs(480))
                .run()
                .expect("scenario runs");
            BufferSizingPoint {
                buffer_slots: n,
                rule_predicts_loss: qoa.loses_measurements_with(n),
                alarms: outcome.alarms,
                measurements: outcome.measurements_taken,
            }
        })
        .collect()
}

/// Renders the ablation table.
pub fn render() -> String {
    let mut out = String::from(
        "Buffer sizing ablation (T_M = 10 s, T_C = 80 s, rule: T_C <= n * T_M -> n >= 8)\n\
         n slots | rule predicts loss | false alarms from lost history | measurements\n",
    );
    for p in sweep(&[4, 6, 8, 12, 16]) {
        out.push_str(&format!(
            "{:<7} | {:>18} | {:>30} | {:>12}\n",
            p.buffer_slots,
            if p.rule_predicts_loss { "yes" } else { "no" },
            p.alarms,
            p.measurements,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_and_simulation_agree() {
        for point in sweep(&[4, 8, 16]) {
            if point.rule_predicts_loss {
                assert!(
                    point.alarms > 0,
                    "n = {} should lose history",
                    point.buffer_slots
                );
            } else {
                assert_eq!(
                    point.alarms, 0,
                    "n = {} should not lose history",
                    point.buffer_slots
                );
            }
        }
    }

    #[test]
    fn render_covers_the_threshold() {
        let text = render();
        assert!(text.contains("n >= 8"));
        assert!(text.lines().count() >= 7);
    }
}
