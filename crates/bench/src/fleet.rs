//! Fleet-scale throughput harness: how many self-measurements and
//! collection verifications per second the reproduction sustains on the
//! host.
//!
//! The paper's evaluation prices a *single* prover (Figures 6/8, Table 2);
//! the ROADMAP's north star is millions of unattended devices. This module
//! drives N provers through their measurement schedules and periodic
//! collections end to end — the same `Prover`/`Verifier` hot paths the
//! protocol tests use, with the precomputed [`erasmus_crypto::KeyedMac`]
//! schedules derived once per device — and reports wall-clock throughput.
//! The `perfbench` binary serializes the result to `BENCH_fleet.json` so
//! successive PRs accumulate a perf trajectory.

use std::time::{Duration, Instant};

use erasmus_core::{CollectionRequest, DeviceId, Prover, ProverConfig, Verifier};
use erasmus_crypto::MacAlgorithm;
use erasmus_hw::{DeviceKey, DeviceProfile};
use erasmus_sim::{SimDuration, SimTime};

/// Parameters of one fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of simulated prover devices.
    pub provers: usize,
    /// Scheduled self-measurements each prover takes per collection round.
    pub measurements_per_round: usize,
    /// Collection rounds: after each, every device's buffer is collected
    /// and verified.
    pub rounds: usize,
    /// Application-memory size hashed by every measurement, in bytes.
    pub memory_bytes: usize,
    /// MAC construction provisioned on every device.
    pub algorithm: MacAlgorithm,
}

impl FleetConfig {
    /// CI-sized run: ≥ 1,000 provers but only a few schedule ticks, so the
    /// whole sweep finishes in seconds even on a busy runner.
    pub fn quick(algorithm: MacAlgorithm) -> Self {
        Self {
            provers: 1_000,
            measurements_per_round: 4,
            rounds: 2,
            memory_bytes: 1024,
            algorithm,
        }
    }

    /// Default full-size run.
    pub fn full(algorithm: MacAlgorithm) -> Self {
        Self {
            provers: 4_096,
            measurements_per_round: 8,
            rounds: 4,
            memory_bytes: 4 * 1024,
            algorithm,
        }
    }

    /// Total measurements the run will produce.
    pub fn total_measurements(&self) -> u64 {
        (self.provers * self.measurements_per_round * self.rounds) as u64
    }
}

/// Wall-clock throughput of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The configuration that produced this report.
    pub config: FleetConfig,
    /// Self-measurements taken across the fleet.
    pub measurements_total: u64,
    /// Individual measurement MACs verified across all collection reports.
    pub verifications_total: u64,
    /// Wall-clock time spent in the measurement phase (provisioning is
    /// excluded; the key schedules are derived once and reused).
    pub measure_wall: Duration,
    /// Wall-clock time spent collecting and verifying.
    pub verify_wall: Duration,
    /// Aggregate *simulated* prover busy time, for cross-checking against
    /// the paper's cost model.
    pub simulated_busy: SimDuration,
    /// Whether every collection round verified as healthy (it must: the
    /// fleet is never infected).
    pub all_healthy: bool,
}

impl FleetReport {
    /// Measurements per wall-clock second.
    pub fn measurements_per_sec(&self) -> f64 {
        per_second(self.measurements_total, self.measure_wall)
    }

    /// Verified measurements per wall-clock second.
    pub fn verifications_per_sec(&self) -> f64 {
        per_second(self.verifications_total, self.verify_wall)
    }
}

fn per_second(count: u64, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        count as f64 / secs
    } else {
        0.0
    }
}

const MEASUREMENT_INTERVAL: SimDuration = SimDuration::from_secs(10);

/// Provisions and drives a fleet, timing the measurement and
/// collection/verification phases separately.
///
/// # Panics
///
/// Panics if a prover refuses a measurement or a verifier rejects a
/// response — both would be bugs in the reproduction, not load conditions.
pub fn run(config: &FleetConfig) -> FleetReport {
    let buffer_slots = config.measurements_per_round.max(1);
    let prover_config = ProverConfig::builder()
        .measurement_interval(MEASUREMENT_INTERVAL)
        .buffer_slots(buffer_slots)
        .mac_algorithm(config.algorithm)
        .build()
        .expect("fleet prover config is valid");

    // Provisioning: per-device keys, precomputed MAC schedules, reference
    // digests. Deliberately outside the timed sections — this happens once
    // per device lifetime.
    let mut fleet: Vec<(Prover, Verifier)> = (0..config.provers)
        .map(|i| {
            let key = DeviceKey::derive(b"erasmus-fleet", i as u64);
            let prover = Prover::new(
                DeviceId::new(i as u64),
                DeviceProfile::msp430_8mhz(config.memory_bytes),
                key.clone(),
                prover_config.clone(),
            )
            .expect("fleet prover provisions");
            let mut verifier = Verifier::new(key, config.algorithm);
            verifier.learn_reference_image(prover.mcu().app_memory());
            verifier.set_expected_interval(MEASUREMENT_INTERVAL);
            (prover, verifier)
        })
        .collect();

    let mut measurements_total = 0u64;
    let mut verifications_total = 0u64;
    let mut measure_wall = Duration::ZERO;
    let mut verify_wall = Duration::ZERO;
    let mut all_healthy = true;

    let round_span = MEASUREMENT_INTERVAL * config.measurements_per_round as u64;
    for round in 1..=config.rounds {
        let horizon = SimTime::ZERO + round_span * round as u64;

        let measure_start = Instant::now();
        for (prover, _) in fleet.iter_mut() {
            let outcomes = prover.run_until(horizon).expect("fleet measurement");
            measurements_total += outcomes.len() as u64;
        }
        measure_wall += measure_start.elapsed();

        let request = CollectionRequest::latest(config.measurements_per_round);
        let verify_start = Instant::now();
        for (prover, verifier) in fleet.iter_mut() {
            let response = prover.handle_collection(&request, horizon);
            let report = verifier
                .verify_collection(&response, horizon)
                .expect("fleet collection verifies");
            verifications_total += report.measurements().len() as u64;
            all_healthy &= report.all_valid();
        }
        verify_wall += verify_start.elapsed();
    }

    let simulated_busy = fleet
        .iter()
        .map(|(prover, _)| prover.total_busy_time())
        .fold(SimDuration::ZERO, |acc, busy| acc + busy);

    FleetReport {
        config: config.clone(),
        measurements_total,
        verifications_total,
        measure_wall,
        verify_wall,
        simulated_busy,
        all_healthy,
    }
}

/// Renders one report as the JSON object used inside `BENCH_fleet.json`.
pub fn report_json(report: &FleetReport, indent: &str) -> String {
    format!(
        "{indent}{{\n\
         {indent}  \"algorithm\": \"{alg}\",\n\
         {indent}  \"provers\": {provers},\n\
         {indent}  \"measurements_per_round\": {mpr},\n\
         {indent}  \"rounds\": {rounds},\n\
         {indent}  \"memory_bytes\": {memory},\n\
         {indent}  \"measurements_total\": {mt},\n\
         {indent}  \"verifications_total\": {vt},\n\
         {indent}  \"measure_wall_secs\": {mw:.6},\n\
         {indent}  \"verify_wall_secs\": {vw:.6},\n\
         {indent}  \"measurements_per_sec\": {mps:.1},\n\
         {indent}  \"verifications_per_sec\": {vps:.1},\n\
         {indent}  \"simulated_busy_secs\": {busy:.3},\n\
         {indent}  \"all_healthy\": {healthy}\n\
         {indent}}}",
        alg = report.config.algorithm,
        provers = report.config.provers,
        mpr = report.config.measurements_per_round,
        rounds = report.config.rounds,
        memory = report.config.memory_bytes,
        mt = report.measurements_total,
        vt = report.verifications_total,
        mw = report.measure_wall.as_secs_f64(),
        vw = report.verify_wall.as_secs_f64(),
        mps = report.measurements_per_sec(),
        vps = report.verifications_per_sec(),
        busy = report.simulated_busy.as_secs_f64(),
        healthy = report.all_healthy,
    )
}

/// Renders the whole `BENCH_fleet.json` document for a set of per-algorithm
/// runs sharing one mode label.
pub fn document_json(mode: &str, reports: &[FleetReport]) -> String {
    let provers = reports.first().map_or(0, |r| r.config.provers);
    let entries: Vec<String> = reports.iter().map(|r| report_json(r, "    ")).collect();
    format!(
        "{{\n  \"schema\": \"erasmus-perfbench/v1\",\n  \"mode\": \"{mode}\",\n  \
         \"provers\": {provers},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    )
}

/// Renders a human-readable summary table.
pub fn render(reports: &[FleetReport]) -> String {
    let mut out = String::from(
        "Fleet throughput (host wall-clock)\n\
         algorithm       provers  measurements     meas/s     verifs     verif/s\n",
    );
    for report in reports {
        out.push_str(&format!(
            "{:<15} {:>7}  {:>12}  {:>9.0}  {:>9}  {:>10.0}\n",
            report.config.algorithm.to_string(),
            report.config.provers,
            report.measurements_total,
            report.measurements_per_sec(),
            report.verifications_total,
            report.verifications_per_sec(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(algorithm: MacAlgorithm) -> FleetConfig {
        FleetConfig {
            provers: 8,
            measurements_per_round: 2,
            rounds: 2,
            memory_bytes: 256,
            algorithm,
        }
    }

    #[test]
    fn fleet_run_counts_add_up() {
        let config = tiny(MacAlgorithm::HmacSha256);
        let report = run(&config);
        assert_eq!(report.measurements_total, config.total_measurements());
        assert_eq!(report.measurements_total, 8 * 2 * 2);
        // Every measurement taken in a round is collected and verified.
        assert_eq!(report.verifications_total, report.measurements_total);
        assert!(report.all_healthy);
        assert!(report.simulated_busy > SimDuration::ZERO);
    }

    #[test]
    fn fleet_runs_for_every_algorithm() {
        for alg in MacAlgorithm::ALL {
            let report = run(&tiny(alg));
            assert!(report.all_healthy, "{alg}");
            assert!(report.measurements_per_sec() > 0.0, "{alg}");
            assert!(report.verifications_per_sec() > 0.0, "{alg}");
        }
    }

    #[test]
    fn json_document_shape() {
        let report = run(&tiny(MacAlgorithm::KeyedBlake2s));
        let doc = document_json("test", std::slice::from_ref(&report));
        assert!(doc.starts_with("{\n"));
        assert!(doc.contains("\"schema\": \"erasmus-perfbench/v1\""));
        assert!(doc.contains("\"mode\": \"test\""));
        assert!(doc.contains("\"provers\": 8"));
        assert!(doc.contains("\"measurements_per_sec\""));
        assert!(doc.contains("\"verifications_per_sec\""));
        assert!(doc.contains("\"algorithm\": \"Keyed BLAKE2S\""));
        // Balanced braces/brackets — the cheap structural JSON check.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn render_mentions_each_algorithm() {
        let reports: Vec<FleetReport> = MacAlgorithm::ALL.iter().map(|&a| run(&tiny(a))).collect();
        let text = render(&reports);
        for alg in MacAlgorithm::ALL {
            assert!(text.contains(&alg.to_string()), "{text}");
        }
    }

    #[test]
    fn quick_config_meets_the_fleet_floor() {
        let quick = FleetConfig::quick(MacAlgorithm::HmacSha256);
        assert!(quick.provers >= 1_000);
        let full = FleetConfig::full(MacAlgorithm::HmacSha256);
        assert!(full.provers >= quick.provers);
    }
}
