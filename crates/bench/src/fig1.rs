//! Figure 1: the QoA timeline — mobile malware that comes and goes between
//! measurements escapes; persistent malware is measured and then detected at
//! the next collection.

use erasmus_core::{InfectionSpec, Scenario, ScenarioOutcome};
use erasmus_sim::{SimDuration, SimTime};

/// The two infections of Figure 1 on a `T_M = 10 s`, `T_C = 60 s` timeline.
///
/// * infection 1: mobile, enters at `t = 12 s` and leaves at `t = 15 s`
///   (between the measurements at 10 s and 20 s) — undetected;
/// * infection 2: persistent, enters at `t = 95 s` — measured at 100 s and
///   detected at the collection at 120 s.
pub fn run() -> ScenarioOutcome {
    Scenario::builder()
        .measurement_interval(SimDuration::from_secs(10))
        .collection_interval(SimDuration::from_secs(60))
        .duration(SimDuration::from_secs(300))
        .infection(InfectionSpec::mobile(
            SimTime::from_secs(12),
            SimDuration::from_secs(3),
        ))
        .infection(InfectionSpec::persistent(SimTime::from_secs(95)))
        .run()
        .expect("the Figure 1 scenario always runs")
}

/// Renders the timeline and the per-infection outcome.
pub fn render() -> String {
    let outcome = run();
    let mut out = String::from(
        "Figure 1: QoA illustration (T_M = 10 s, T_C = 60 s)\n\
         infection 1: mobile,   enters t=12 s, leaves t=15 s\n\
         infection 2: persistent, enters t=95 s\n\n",
    );
    out.push_str(&outcome.trace.to_string());
    out.push('\n');
    for (index, infection) in outcome.infections.iter().enumerate() {
        match infection.detected_at {
            Some(at) => out.push_str(&format!(
                "infection {index}: DETECTED at t={:.0} s (latency {})\n",
                at.as_secs_f64(),
                infection.detection_latency().expect("latency exists")
            )),
            None => out.push_str(&format!("infection {index}: UNDETECTED\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_figure1_outcomes() {
        let outcome = run();
        assert!(!outcome.infections[0].detected, "infection 1 must escape");
        assert!(
            outcome.infections[1].detected,
            "infection 2 must be detected"
        );
        assert_eq!(
            outcome.infections[1].detection_latency(),
            Some(SimDuration::from_secs(25))
        );
    }

    #[test]
    fn render_shows_both_verdicts() {
        let text = render();
        assert!(text.contains("infection 0: UNDETECTED"));
        assert!(text.contains("infection 1: DETECTED"));
        assert!(text.contains("measurement"));
        assert!(text.contains("collection"));
    }
}
