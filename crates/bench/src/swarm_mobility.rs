//! Section 6: swarm attestation coverage under mobility — ERASMUS-based
//! collection versus an on-demand (SEDA-style) baseline.

use erasmus_sim::{SimDuration, SimRng, SimTime};
use erasmus_swarm::{MobilityModel, MobilitySimulator, Swarm, SwarmConfig, Topology};

/// One point of the coverage-vs-mobility curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityPoint {
    /// Per-device link-rewire probability per 100 ms epoch.
    pub churn_probability: f64,
    /// Coverage achieved by the ERASMUS collection.
    pub erasmus_coverage: f64,
    /// Coverage achieved by the on-demand round.
    pub on_demand_coverage: f64,
    /// Wall-clock duration of the ERASMUS collection round (seconds).
    pub erasmus_duration_secs: f64,
    /// Wall-clock duration of the on-demand round (seconds).
    pub on_demand_duration_secs: f64,
}

/// Number of independent repetitions averaged into each sweep point.
const REPETITIONS: u64 = 5;

/// Sweeps churn probabilities for a swarm of `size` devices, averaging each
/// point over `REPETITIONS` (5) independent topologies and mobility traces.
pub fn sweep(size: usize, churn_probabilities: &[f64], seed: u64) -> Vec<MobilityPoint> {
    churn_probabilities
        .iter()
        .map(|&churn| {
            let mut acc = MobilityPoint {
                churn_probability: churn,
                erasmus_coverage: 0.0,
                on_demand_coverage: 0.0,
                erasmus_duration_secs: 0.0,
                on_demand_duration_secs: 0.0,
            };
            for rep in 0..REPETITIONS {
                let mut rng = SimRng::seed_from(seed.wrapping_add(rep * 7919));
                let topology = Topology::random_connected(size, 3.0, &mut rng);
                let mut swarm = Swarm::new(SwarmConfig::default(), topology, b"mobility sweep")
                    .expect("swarm builds");
                swarm
                    .run_until(SimTime::from_secs(60))
                    .expect("self-measurements");

                let erasmus = swarm
                    .erasmus_collection(0, SimTime::from_secs(60), 6)
                    .expect("collection");

                let model = if churn == 0.0 {
                    MobilityModel::Static
                } else {
                    MobilityModel::churn(SimDuration::from_millis(100), churn)
                };
                let mut mobility =
                    MobilitySimulator::new(model, SimRng::seed_from(seed ^ ((rep + 1) * 0x5a5a)));
                let on_demand = swarm
                    .on_demand_attestation(0, SimTime::from_secs(61), &mut mobility)
                    .expect("attestation");

                acc.erasmus_coverage += erasmus.coverage();
                acc.on_demand_coverage += on_demand.coverage();
                acc.erasmus_duration_secs += erasmus.duration.as_secs_f64();
                acc.on_demand_duration_secs += on_demand.duration.as_secs_f64();
            }
            let n = REPETITIONS as f64;
            acc.erasmus_coverage /= n;
            acc.on_demand_coverage /= n;
            acc.erasmus_duration_secs /= n;
            acc.on_demand_duration_secs /= n;
            acc
        })
        .collect()
}

/// The default sweep used by `repro swarm`: 24 devices, churn from 0 to 0.8.
pub fn default_sweep(seed: u64) -> Vec<MobilityPoint> {
    sweep(24, &[0.0, 0.1, 0.2, 0.4, 0.6, 0.8], seed)
}

/// Renders the sweep as a table.
pub fn render(points: &[MobilityPoint]) -> String {
    let mut out = String::from(
        "Swarm attestation under mobility (24 devices, random connected topology)\n\
         churn/epoch | ERASMUS coverage | on-demand coverage | ERASMUS round | on-demand round\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<11.2} | {:>16.2} | {:>18.2} | {:>13} | {:>15}\n",
            p.churn_probability,
            p.erasmus_coverage,
            p.on_demand_coverage,
            crate::fmt_seconds(p.erasmus_duration_secs),
            crate::fmt_seconds(p.on_demand_duration_secs),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_swarm_gives_full_coverage_to_both() {
        let points = sweep(16, &[0.0], 3);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].erasmus_coverage, 1.0);
        assert_eq!(points[0].on_demand_coverage, 1.0);
    }

    #[test]
    fn high_mobility_degrades_on_demand_only() {
        let points = sweep(24, &[0.0, 0.6], 11);
        let static_point = points[0];
        let mobile_point = points[1];
        assert!(mobile_point.erasmus_coverage > 0.95);
        assert!(
            mobile_point.on_demand_coverage < static_point.on_demand_coverage,
            "on-demand coverage should drop under churn: {} vs {}",
            mobile_point.on_demand_coverage,
            static_point.on_demand_coverage
        );
        assert!(mobile_point.erasmus_coverage > mobile_point.on_demand_coverage);
    }

    #[test]
    fn erasmus_round_is_far_shorter() {
        let points = sweep(16, &[0.2], 5);
        let p = points[0];
        // The on-demand round is dominated by the fresh measurement (~2.8 s on
        // the MSP430 profile); the ERASMUS collection round is tens of
        // milliseconds of relaying.
        assert!(
            p.on_demand_duration_secs / p.erasmus_duration_secs > 20.0,
            "ratio {}",
            p.on_demand_duration_secs / p.erasmus_duration_secs
        );
        assert!(p.erasmus_duration_secs < 0.2);
        assert!(p.on_demand_duration_secs > 2.0);
    }

    #[test]
    fn render_has_one_row_per_point() {
        let points = sweep(8, &[0.0, 0.5], 2);
        let text = render(&points);
        assert_eq!(text.lines().count(), 2 + points.len());
    }
}
