//! `perfbench` — fleet-scale throughput harness.
//!
//! Simulates N provers × scheduled self-measurements × periodic
//! collections for every MAC algorithm, prints a throughput summary and
//! writes `BENCH_fleet.json` at the repository root so successive PRs have
//! a perf trajectory to compare against.
//!
//! Usage:
//!
//! ```text
//! perfbench                  # full run (4096 provers per algorithm)
//! perfbench --quick          # CI-sized run (1000 provers per algorithm)
//! perfbench --provers 20000  # override the fleet size
//! perfbench --out path.json  # write the JSON somewhere else
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use erasmus_bench::fleet::{self, FleetConfig};
use erasmus_crypto::MacAlgorithm;

struct Options {
    quick: bool,
    provers: Option<usize>,
    rounds: Option<usize>,
    memory_bytes: Option<usize>,
    out: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: perfbench [--quick] [--provers N] [--rounds N] [--memory BYTES] [--out PATH]\n\
     \n\
     Drives N simulated provers through scheduled self-measurements and\n\
     periodic collections for each MAC algorithm, then writes the\n\
     BENCH_fleet.json throughput trajectory (default: repository root)."
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        quick: false,
        provers: None,
        rounds: None,
        memory_bytes: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut numeric = |name: &str| -> Result<usize, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<usize>()
                .map_err(|e| format!("invalid {name} value: {e}"))
        };
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--provers" => options.provers = Some(numeric("--provers")?),
            "--rounds" => options.rounds = Some(numeric("--rounds")?),
            "--memory" => options.memory_bytes = Some(numeric("--memory")?),
            "--out" => {
                options.out = Some(PathBuf::from(
                    args.next().ok_or_else(|| "--out needs a path".to_owned())?,
                ));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

/// `BENCH_fleet.json` lives at the repository root regardless of the
/// invocation directory, so CI and local runs agree on its location.
fn default_output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_fleet.json")
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("perfbench: {message}");
            }
            eprintln!("{}", usage());
            return if message.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let mode = if options.quick { "quick" } else { "full" };
    let reports: Vec<_> = MacAlgorithm::ALL
        .iter()
        .map(|&algorithm| {
            let mut config = if options.quick {
                FleetConfig::quick(algorithm)
            } else {
                FleetConfig::full(algorithm)
            };
            if let Some(provers) = options.provers {
                config.provers = provers;
            }
            if let Some(rounds) = options.rounds {
                config.rounds = rounds;
            }
            if let Some(memory_bytes) = options.memory_bytes {
                config.memory_bytes = memory_bytes;
            }
            eprintln!(
                "perfbench: {algorithm}: {} provers x {} measurements x {} rounds ...",
                config.provers, config.measurements_per_round, config.rounds
            );
            fleet::run(&config)
        })
        .collect();

    print!("{}", fleet::render(&reports));

    let path = options.out.unwrap_or_else(default_output_path);
    let document = fleet::document_json(mode, &reports);
    if let Err(error) = std::fs::write(&path, &document) {
        eprintln!("perfbench: cannot write {}: {error}", path.display());
        return ExitCode::FAILURE;
    }
    let shown = path.canonicalize().unwrap_or(path);
    println!("wrote {}", shown.display());

    if reports.iter().all(|r| r.all_healthy) {
        ExitCode::SUCCESS
    } else {
        eprintln!("perfbench: a collection round failed verification");
        ExitCode::FAILURE
    }
}
