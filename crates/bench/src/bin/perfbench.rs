//! `perfbench` — fleet-scale throughput harness.
//!
//! Simulates N provers × scheduled self-measurements × periodic
//! collections for every MAC algorithm — partitioned over worker threads,
//! each driving an event-driven timeline with an optional lossy network,
//! device churn and on-demand traffic — prints a throughput summary, runs a
//! 1→N thread-scaling sweep and writes `BENCH_fleet.json` (schema
//! `erasmus-perfbench/v8`) at the repository root so successive PRs have a
//! perf trajectory to compare against.
//!
//! Usage:
//!
//! ```text
//! perfbench                  # full run (4096 provers per algorithm)
//! perfbench --quick          # CI-sized run (1000 provers per algorithm)
//! perfbench --threads 4      # shard the fleet over 4 worker threads
//! perfbench --lanes 4        # batch same-instant measurements 4 lanes wide
//! perfbench --delivery struct# legacy in-memory delivery (default: wire)
//! perfbench --scheduler heap # binary-heap oracle (default: calendar)
//! perfbench --provers 20000  # override the fleet size
//! perfbench --seed 7         # reseed every deterministic draw
//! perfbench --loss 0.05      # drop 5% of collection/on-demand packets
//! perfbench --latency 20     # 20 ms base link latency (+50% jitter)
//! perfbench --churn 0.1      # 10% of devices leave and rejoin mid-run
//! perfbench --duplicate 0.02 # deliver 2% of batch frames twice
//! perfbench --reorder 0.02   # delay 2% of deliveries past successors
//! perfbench --corrupt 0.01   # flip a byte in 1% of transmissions
//! perfbench --retries 3      # ARQ: retransmit drops up to 3 times
//! perfbench --hub-crash 2    # crash/restore the verifier hub twice
//! perfbench --on-demand 64   # inject 64 authenticated on-demand requests
//! perfbench --history unbounded # keep every history entry resident
//! perfbench --ring-capacity 8   # retained entries per device (default 64)
//! perfbench --out path.json  # write the JSON somewhere else
//! ```
//!
//! With the default flags (no loss, no latency, no churn, no on-demand) the
//! event-driven runtime reproduces the lossless phase-loop totals
//! bit-for-bit; the determinism test suite pins this. Delivery defaults to
//! `wire`: every collection burst travels as encoded batch frames and is
//! decoded + verified zero-copy off the bytes; `--delivery struct` keeps
//! the legacy in-memory path, with bit-identical totals. The fault and
//! recovery flags (`--duplicate`, `--reorder`, `--corrupt`, `--retries`,
//! `--hub-crash`) exercise the wire path's ARQ loop, the hub's dedup
//! window and the snapshot-based crash recovery, so they require wire
//! delivery; combining them with `--delivery struct` is rejected.
//!
//! `--scheduler` picks the event-queue backend each shard engine runs on:
//! `calendar` (default) is the O(1) rotating-wheel scheduler, `heap` the
//! original binary heap, retained as the oracle — totals are bit-identical
//! under either, which the perf-smoke CI job cross-checks on every push.
//!
//! `--history` picks the per-device verifier retention: `ring` (default)
//! caps every device at `--ring-capacity` resident entries plus a rollup
//! summary and a PCR-style hash chain over evicted entries — O(capacity)
//! state per device no matter how long the run — while `unbounded` keeps
//! everything resident. Lifetime totals are bit-identical between the two
//! whenever the capacity covers each device's in-flight reordering window;
//! the perf-smoke CI job cross-checks that too.

use std::path::PathBuf;
use std::process::ExitCode;

use erasmus_bench::fleet::{self, scaling, FleetConfig};
use erasmus_core::HistoryMode;
use erasmus_crypto::MacAlgorithm;
use erasmus_sim::{NetworkConfig, Scheduler, SimDuration};

/// Retained entries per device under the default `--history ring`. Large
/// enough to cover any in-flight reordering window the fault flags can
/// produce at CI scales, so ring totals stay bit-identical to unbounded.
const DEFAULT_RING_CAPACITY: usize = 64;

struct Options {
    quick: bool,
    threads: usize,
    lanes: usize,
    wire: bool,
    scheduler: Scheduler,
    provers: Option<usize>,
    rounds: Option<usize>,
    memory_bytes: Option<usize>,
    seed: u64,
    loss: f64,
    latency_ms: u64,
    churn: f64,
    duplicate: f64,
    reorder: f64,
    corrupt: f64,
    retries: u32,
    hub_crashes: usize,
    on_demand: usize,
    history_ring: bool,
    ring_capacity: Option<usize>,
    out: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: perfbench [--quick] [--threads N] [--lanes N] [--delivery wire|struct]\n\
     \x20                [--scheduler calendar|heap] [--provers N] [--rounds N]\n\
     \x20                [--memory BYTES] [--seed N] [--loss P] [--latency MS] [--churn P]\n\
     \x20                [--duplicate P] [--reorder P] [--corrupt P] [--retries N]\n\
     \x20                [--hub-crash N] [--on-demand N]\n\
     \x20                [--history ring|unbounded] [--ring-capacity N] [--out PATH]\n\
     \n\
     Drives N simulated provers through scheduled self-measurements and\n\
     periodic collections for each MAC algorithm, sharded over --threads\n\
     worker threads running event-driven timelines, then writes the\n\
     BENCH_fleet.json throughput trajectory (default: repository root)\n\
     including a 1..N thread-scaling sweep.\n\
     --threads, --lanes, --provers and --rounds must be at least 1;\n\
     --memory must be at least 1 byte. --lanes is an upper bound on the\n\
     multi-lane hash width: same-instant measurements batch in lockstep\n\
     groups of the widest supported width (8 or 4) not exceeding it, with\n\
     totals bit-identical to the scalar path. --delivery picks how\n\
     collection bursts reach the verifier hub: `wire` (default) encodes\n\
     them as batch frames and verifies zero-copy off the bytes, `struct`\n\
     keeps the legacy in-memory path — totals are bit-identical either\n\
     way. --scheduler picks the shard engines' event-queue backend:\n\
     `calendar` (default) is the O(1) rotating-wheel scheduler, `heap`\n\
     the binary-heap oracle — totals are bit-identical under either.\n\
     --loss, --churn, --duplicate, --reorder and --corrupt are\n\
     probabilities in [0, 1]; --latency is the base link latency in\n\
     milliseconds (jitter is half the base); --seed makes faulty/churn runs\n\
     reproducible and is recorded in the JSON report. --retries bounds the\n\
     ARQ retransmission budget per collection (0 disables retransmission);\n\
     --hub-crash schedules N verifier-hub crash/snapshot-restore cycles\n\
     per shard. The fault, retry and crash flags exercise the wire frame\n\
     path, so they reject --delivery struct. --history picks the\n\
     per-device verifier retention: `ring` (default) keeps at most\n\
     --ring-capacity entries resident per device (at least 1, default 64)\n\
     and seals evicted entries into a per-device hash chain; `unbounded`\n\
     keeps everything and rejects --ring-capacity."
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        quick: false,
        threads: 1,
        lanes: 1,
        wire: true,
        scheduler: Scheduler::Calendar,
        provers: None,
        rounds: None,
        memory_bytes: None,
        seed: fleet::DEFAULT_SEED,
        loss: 0.0,
        latency_ms: 0,
        churn: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        corrupt: 0.0,
        retries: 0,
        hub_crashes: 0,
        on_demand: 0,
        history_ring: true,
        ring_capacity: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--threads" => options.threads = numeric(value_for("--threads")?, "--threads", 1)?,
            "--lanes" => options.lanes = numeric(value_for("--lanes")?, "--lanes", 1)?,
            "--delivery" => {
                options.wire = match value_for("--delivery")?.as_str() {
                    "wire" => true,
                    "struct" => false,
                    other => {
                        return Err(format!(
                            "invalid --delivery value `{other}` (expected `wire` or `struct`)"
                        ));
                    }
                };
            }
            "--scheduler" => {
                options.scheduler = value_for("--scheduler")?
                    .parse::<Scheduler>()
                    .map_err(|e| format!("invalid --scheduler value: {e}"))?;
            }
            "--provers" => {
                options.provers = Some(numeric(value_for("--provers")?, "--provers", 1)?);
            }
            "--rounds" => options.rounds = Some(numeric(value_for("--rounds")?, "--rounds", 1)?),
            "--memory" => {
                options.memory_bytes = Some(numeric(value_for("--memory")?, "--memory", 1)?);
            }
            "--seed" => {
                options.seed = value_for("--seed")?
                    .parse::<u64>()
                    .map_err(|e| format!("invalid --seed value: {e}"))?;
            }
            "--loss" => options.loss = probability(value_for("--loss")?, "--loss")?,
            "--latency" => {
                options.latency_ms = value_for("--latency")?
                    .parse::<u64>()
                    .map_err(|e| format!("invalid --latency value: {e}"))?;
            }
            "--churn" => options.churn = probability(value_for("--churn")?, "--churn")?,
            "--duplicate" => {
                options.duplicate = probability(value_for("--duplicate")?, "--duplicate")?;
            }
            "--reorder" => options.reorder = probability(value_for("--reorder")?, "--reorder")?,
            "--corrupt" => options.corrupt = probability(value_for("--corrupt")?, "--corrupt")?,
            "--retries" => {
                options.retries = value_for("--retries")?
                    .parse::<u32>()
                    .map_err(|e| format!("invalid --retries value: {e}"))?;
            }
            "--hub-crash" => {
                options.hub_crashes = value_for("--hub-crash")?
                    .parse::<usize>()
                    .map_err(|e| format!("invalid --hub-crash value: {e}"))?;
            }
            "--on-demand" => {
                options.on_demand = value_for("--on-demand")?
                    .parse::<usize>()
                    .map_err(|e| format!("invalid --on-demand value: {e}"))?;
            }
            "--history" => {
                options.history_ring = match value_for("--history")?.as_str() {
                    "ring" => true,
                    "unbounded" => false,
                    other => {
                        return Err(format!(
                            "invalid --history value `{other}` (expected `ring` or `unbounded`)"
                        ));
                    }
                };
            }
            "--ring-capacity" => {
                options.ring_capacity = Some(numeric(
                    value_for("--ring-capacity")?,
                    "--ring-capacity",
                    1,
                )?);
            }
            "--out" => {
                options.out = Some(PathBuf::from(
                    args.next().ok_or_else(|| "--out needs a path".to_owned())?,
                ));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !options.wire {
        // The fault, ARQ and crash machinery all live on the wire frame
        // path; silently ignoring them under `--delivery struct` would
        // report a fault-free run as if it had survived faults.
        if options.duplicate > 0.0 || options.reorder > 0.0 || options.corrupt > 0.0 {
            return Err(
                "--duplicate/--reorder/--corrupt inject faults into wire frames \
                 and cannot be combined with --delivery struct"
                    .to_owned(),
            );
        }
        if options.retries > 0 {
            return Err("--retries drives wire-frame retransmission and cannot be \
                 combined with --delivery struct"
                .to_owned());
        }
        if options.hub_crashes > 0 {
            return Err("--hub-crash snapshots the wire-ingest hub and cannot be \
                 combined with --delivery struct"
                .to_owned());
        }
    }
    if !options.history_ring && options.ring_capacity.is_some() {
        // Silently ignoring the capacity would report an unbounded run as
        // if it had honoured a ring bound.
        return Err("--ring-capacity sizes the ring history and cannot be \
             combined with --history unbounded"
            .to_owned());
    }
    Ok(options)
}

fn numeric(raw: String, name: &str, min: usize) -> Result<usize, String> {
    let value = raw
        .parse::<usize>()
        .map_err(|e| format!("invalid {name} value: {e}"))?;
    if value < min {
        return Err(format!(
            "{name} must be at least {min}, got {value} — a zero-work run \
             would overwrite BENCH_fleet.json with a degenerate trajectory"
        ));
    }
    Ok(value)
}

fn probability(raw: String, name: &str) -> Result<f64, String> {
    let value = raw
        .parse::<f64>()
        .map_err(|e| format!("invalid {name} value: {e}"))?;
    if !(0.0..=1.0).contains(&value) {
        return Err(format!(
            "{name} must be a probability in [0, 1], got {value}"
        ));
    }
    Ok(value)
}

/// `BENCH_fleet.json` lives at the repository root regardless of the
/// invocation directory, so CI and local runs agree on its location.
fn default_output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_fleet.json")
}

fn config_for(options: &Options, algorithm: MacAlgorithm) -> FleetConfig {
    let mut config = if options.quick {
        FleetConfig::quick(algorithm)
    } else {
        FleetConfig::full(algorithm)
    };
    if let Some(provers) = options.provers {
        config.provers = provers;
    }
    if let Some(rounds) = options.rounds {
        config.rounds = rounds;
    }
    if let Some(memory_bytes) = options.memory_bytes {
        config.memory_bytes = memory_bytes;
    }
    config.seed = options.seed;
    config.network = NetworkConfig {
        base_latency: SimDuration::from_millis(options.latency_ms),
        jitter: SimDuration::from_millis(options.latency_ms / 2),
        loss: options.loss,
        duplicate: options.duplicate,
        reorder: options.reorder,
        corrupt: options.corrupt,
    };
    config.churn = options.churn;
    config.retries = options.retries;
    config.hub_crashes = options.hub_crashes;
    config.on_demand = options.on_demand;
    config.lanes = options.lanes;
    config.wire = options.wire;
    config.scheduler = options.scheduler;
    config.history = if options.history_ring {
        HistoryMode::Ring(options.ring_capacity.unwrap_or(DEFAULT_RING_CAPACITY))
    } else {
        HistoryMode::Unbounded
    };
    config
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("perfbench: {message}");
            }
            eprintln!("{}", usage());
            return if message.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let mode = if options.quick { "quick" } else { "full" };
    let reports: Vec<_> = MacAlgorithm::ALL
        .iter()
        .map(|&algorithm| {
            let config = config_for(&options, algorithm);
            eprintln!(
                "perfbench: {algorithm}: {} provers x {} measurements x {} rounds on {} thread(s) \
                 x {} lane(s), {} delivery, {} scheduler, {} history (seed {}, loss {}, dup {}, \
                 reorder {}, corrupt {}, latency {} ms, churn {}, retries {}, hub-crashes {}, \
                 on-demand {}) ...",
                config.provers,
                config.measurements_per_round,
                config.rounds,
                options.threads,
                fleet::lanes::effective_width(config.lanes),
                if config.wire { "wire" } else { "struct" },
                config.scheduler,
                match config.history {
                    HistoryMode::Unbounded => "unbounded".to_owned(),
                    HistoryMode::Ring(capacity) => format!("ring({capacity})"),
                },
                config.seed,
                config.network.loss,
                config.network.duplicate,
                config.network.reorder,
                config.network.corrupt,
                options.latency_ms,
                config.churn,
                config.retries,
                config.hub_crashes,
                config.on_demand,
            );
            let mut report = fleet::run_threaded(&config, options.threads);
            // Attach the scalar-vs-lane digest probe so the JSON records
            // what the lane-interleaved cores buy at this memory size.
            report.lane_speedup = Some(fleet::lanes::measure(
                algorithm,
                config.memory_bytes,
                config.lanes,
            ));
            report
        })
        .collect();

    for report in &reports {
        if report.wire_frames > 0 {
            eprintln!(
                "perfbench: {}: wire: {} frames, {} bytes, {} responses decoded+verified \
                 ({:.1} MiB/s frame ingest)",
                report.config.algorithm,
                report.wire_frames,
                report.wire_bytes,
                report.decoded_accepted,
                report.decode_mib_per_sec(),
            );
        }
        eprintln!(
            "perfbench: {}: history {}: {} entries ({} resident, {} evicted, {} stale), \
             {} chains verified, {} bytes resident state; aggregation: {} leaves, {} nodes, \
             depth {}",
            report.config.algorithm,
            fleet::history_mode_label(report.config.history),
            report.history_entries,
            report.history_resident,
            report.history_evictions,
            report.history_stale_discards,
            report.chains_verified,
            report.resident_state_bytes,
            report.aggregation.leaves,
            report.aggregation.nodes,
            report.aggregation.depth,
        );
        if let Some(probe) = &report.lane_speedup {
            eprintln!(
                "perfbench: {}: lane probe x{}: scalar {:.0} meas/s, lanes {:.0} meas/s ({:.2}x)",
                report.config.algorithm,
                probe.lanes,
                probe.scalar_per_sec,
                probe.lane_per_sec,
                probe.speedup,
            );
        }
    }

    print!("{}", fleet::render(&reports));

    // run_threaded clamps oversized requests to the fleet size; report the
    // effective count so the document agrees with its own results.
    let threads = reports.first().map_or(options.threads, |r| r.threads);

    // Thread-scaling sweep on the paper's default MAC: same fleet, 1..N
    // workers, identical totals — only the wall clock may move. The
    // N-thread endpoint reuses the main run above instead of re-timing it.
    eprintln!("perfbench: scaling sweep 1..{threads} threads (HMAC-SHA256) ...");
    let hmac_report = reports
        .iter()
        .find(|r| r.config.algorithm == MacAlgorithm::HmacSha256);
    let sweep = scaling::sweep_reusing(
        &config_for(&options, MacAlgorithm::HmacSha256),
        threads,
        hmac_report,
    );
    print!("{}", scaling::render(&sweep));

    let path = options.out.unwrap_or_else(default_output_path);
    let document = fleet::document_json(mode, threads, &reports, &sweep);
    if let Err(error) = std::fs::write(&path, &document) {
        eprintln!("perfbench: cannot write {}: {error}", path.display());
        return ExitCode::FAILURE;
    }
    let shown = path.canonicalize().unwrap_or(path);
    println!("wrote {}", shown.display());

    if reports.iter().all(|r| r.all_healthy) {
        ExitCode::SUCCESS
    } else {
        eprintln!("perfbench: a collection round failed verification");
        ExitCode::FAILURE
    }
}
