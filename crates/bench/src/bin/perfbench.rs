//! `perfbench` — fleet-scale throughput harness.
//!
//! Simulates N provers × scheduled self-measurements × periodic
//! collections for every MAC algorithm — partitioned over worker threads —
//! prints a throughput summary, runs a 1→N thread-scaling sweep and writes
//! `BENCH_fleet.json` (schema `erasmus-perfbench/v2`) at the repository
//! root so successive PRs have a perf trajectory to compare against.
//!
//! Usage:
//!
//! ```text
//! perfbench                  # full run (4096 provers per algorithm)
//! perfbench --quick          # CI-sized run (1000 provers per algorithm)
//! perfbench --threads 4      # shard the fleet over 4 worker threads
//! perfbench --provers 20000  # override the fleet size
//! perfbench --out path.json  # write the JSON somewhere else
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use erasmus_bench::fleet::{self, scaling, FleetConfig};
use erasmus_crypto::MacAlgorithm;

struct Options {
    quick: bool,
    threads: usize,
    provers: Option<usize>,
    rounds: Option<usize>,
    memory_bytes: Option<usize>,
    out: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: perfbench [--quick] [--threads N] [--provers N] [--rounds N] [--memory BYTES] [--out PATH]\n\
     \n\
     Drives N simulated provers through scheduled self-measurements and\n\
     periodic collections for each MAC algorithm, sharded over --threads\n\
     worker threads, then writes the BENCH_fleet.json throughput trajectory\n\
     (default: repository root) including a 1..N thread-scaling sweep.\n\
     --threads, --provers and --rounds must be at least 1; --memory must be\n\
     at least 1 byte."
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        quick: false,
        threads: 1,
        provers: None,
        rounds: None,
        memory_bytes: None,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut numeric = |name: &str, min: usize| -> Result<usize, String> {
            let value = args
                .next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<usize>()
                .map_err(|e| format!("invalid {name} value: {e}"))?;
            if value < min {
                return Err(format!(
                    "{name} must be at least {min}, got {value} — a zero-work run \
                     would overwrite BENCH_fleet.json with a degenerate trajectory"
                ));
            }
            Ok(value)
        };
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--threads" => options.threads = numeric("--threads", 1)?,
            "--provers" => options.provers = Some(numeric("--provers", 1)?),
            "--rounds" => options.rounds = Some(numeric("--rounds", 1)?),
            "--memory" => options.memory_bytes = Some(numeric("--memory", 1)?),
            "--out" => {
                options.out = Some(PathBuf::from(
                    args.next().ok_or_else(|| "--out needs a path".to_owned())?,
                ));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

/// `BENCH_fleet.json` lives at the repository root regardless of the
/// invocation directory, so CI and local runs agree on its location.
fn default_output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_fleet.json")
}

fn config_for(options: &Options, algorithm: MacAlgorithm) -> FleetConfig {
    let mut config = if options.quick {
        FleetConfig::quick(algorithm)
    } else {
        FleetConfig::full(algorithm)
    };
    if let Some(provers) = options.provers {
        config.provers = provers;
    }
    if let Some(rounds) = options.rounds {
        config.rounds = rounds;
    }
    if let Some(memory_bytes) = options.memory_bytes {
        config.memory_bytes = memory_bytes;
    }
    config
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("perfbench: {message}");
            }
            eprintln!("{}", usage());
            return if message.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let mode = if options.quick { "quick" } else { "full" };
    let reports: Vec<_> = MacAlgorithm::ALL
        .iter()
        .map(|&algorithm| {
            let config = config_for(&options, algorithm);
            eprintln!(
                "perfbench: {algorithm}: {} provers x {} measurements x {} rounds on {} thread(s) ...",
                config.provers, config.measurements_per_round, config.rounds, options.threads
            );
            fleet::run_threaded(&config, options.threads)
        })
        .collect();

    print!("{}", fleet::render(&reports));

    // run_threaded clamps oversized requests to the fleet size; report the
    // effective count so the document agrees with its own results.
    let threads = reports.first().map_or(options.threads, |r| r.threads);

    // Thread-scaling sweep on the paper's default MAC: same fleet, 1..N
    // workers, identical totals — only the wall clock may move. The
    // N-thread endpoint reuses the main run above instead of re-timing it.
    eprintln!("perfbench: scaling sweep 1..{threads} threads (HMAC-SHA256) ...");
    let hmac_report = reports
        .iter()
        .find(|r| r.config.algorithm == MacAlgorithm::HmacSha256);
    let sweep = scaling::sweep_reusing(
        &config_for(&options, MacAlgorithm::HmacSha256),
        threads,
        hmac_report,
    );
    print!("{}", scaling::render(&sweep));

    let path = options.out.unwrap_or_else(default_output_path);
    let document = fleet::document_json(mode, threads, &reports, &sweep);
    if let Err(error) = std::fs::write(&path, &document) {
        eprintln!("perfbench: cannot write {}: {error}", path.display());
        return ExitCode::FAILURE;
    }
    let shown = path.canonicalize().unwrap_or(path);
    println!("wrote {}", shown.display());

    if reports.iter().all(|r| r.all_healthy) {
        ExitCode::SUCCESS
    } else {
        eprintln!("perfbench: a collection round failed verification");
        ExitCode::FAILURE
    }
}
