//! `repro` — prints the reproduced rows/series for every table and figure in
//! the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro all                # everything
//! repro table1 table2      # specific experiments
//! repro list               # list available experiment ids
//! ```

use erasmus_bench::{
    buffer_sizing, fig1, hwcost, protocol_figures, qoa_sweep, runtime, scheduling, swarm_mobility,
    table1, table2,
};

const EXPERIMENTS: &[(&str, &str)] = &[
    ("table1", "Size of the attestation executable"),
    ("table2", "Collection-phase run-time breakdown (i.MX6)"),
    ("fig1", "QoA timeline: mobile vs persistent infection"),
    ("fig2", "ERASMUS collection protocol run"),
    ("fig3", "Rolling-buffer memory layout (n = 12)"),
    ("fig4", "ERASMUS+OD protocol run"),
    ("fig5", "SMART+ memory organization and access rules"),
    (
        "fig6",
        "Measurement run-time vs memory size (MSP430 @ 8 MHz)",
    ),
    ("fig7", "HYDRA memory organization and access rules"),
    (
        "fig8",
        "Measurement run-time vs memory size (i.MX6 @ 1 GHz)",
    ),
    ("hwcost", "FPGA register/LUT overhead (Section 4.1)"),
    ("qoa", "Mobile-malware detection probability sweep"),
    (
        "schedules",
        "Regular vs irregular vs lenient scheduling ablations",
    ),
    ("buffer_sizing", "Buffer size vs collection period ablation"),
    ("swarm", "Swarm coverage under mobility (Section 6)"),
];

fn run_experiment(id: &str) -> Option<String> {
    match id {
        "table1" => Some(table1::render()),
        "table2" => Some(table2::render()),
        "fig1" => Some(fig1::render()),
        "fig2" => Some(protocol_figures::figure2()),
        "fig3" => Some(protocol_figures::figure3()),
        "fig4" => Some(protocol_figures::figure4()),
        "fig5" => Some(protocol_figures::figure5()),
        "fig7" => Some(protocol_figures::figure7()),
        "fig6" => Some(runtime::render(
            "Figure 6: Measurement run-time on MSP430 @ 8 MHz",
            &runtime::figure6(),
            1024,
            "KB",
        )),
        "fig8" => Some(runtime::render(
            "Figure 8: Measurement run-time on i.MX6 Sabre Lite @ 1 GHz",
            &runtime::figure8(),
            1024 * 1024,
            "MB",
        )),
        "hwcost" => Some(hwcost::render()),
        "qoa" => Some(qoa_sweep::render(&qoa_sweep::default_sweep(60, 2024))),
        "schedules" => Some(scheduling::render(10, 2024)),
        "buffer_sizing" => Some(buffer_sizing::render()),
        "swarm" => Some(swarm_mobility::render(&swarm_mobility::default_sweep(2024))),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty()
        || args
            .iter()
            .any(|a| a == "list" || a == "--help" || a == "-h")
    {
        eprintln!("usage: repro <experiment...|all|list>");
        eprintln!("available experiments:");
        for (id, description) in EXPERIMENTS {
            eprintln!("  {id:<10} {description}");
        }
        return;
    }

    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().map(|(id, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let mut unknown = false;
    for id in selected {
        match run_experiment(id) {
            Some(output) => {
                println!("==================================================================");
                println!("{output}");
            }
            None => {
                eprintln!("unknown experiment `{id}` (try `repro list`)");
                unknown = true;
            }
        }
    }
    if unknown {
        std::process::exit(2);
    }
}
