//! Raw throughput of the from-scratch MAC implementations (the primitive
//! behind Figures 6 and 8): bytes per second of SHA-256, HMAC-SHA256 and
//! keyed BLAKE2s on the host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use erasmus_crypto::{Blake2s, Digest, HmacSha256, MacAlgorithm, Sha256};

fn bench_mac_throughput(c: &mut Criterion) {
    let key = [0x42u8; 32];
    let mut group = c.benchmark_group("mac_throughput");
    for size in [1024usize, 64 * 1024, 1024 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));

        group.bench_with_input(BenchmarkId::new("SHA-256", size), &data, |b, data| {
            b.iter(|| std::hint::black_box(Sha256::digest(data)))
        });
        group.bench_with_input(BenchmarkId::new("HMAC-SHA256", size), &data, |b, data| {
            b.iter(|| std::hint::black_box(HmacSha256::mac(&key, data)))
        });
        group.bench_with_input(BenchmarkId::new("Keyed BLAKE2s", size), &data, |b, data| {
            b.iter(|| std::hint::black_box(Blake2s::keyed_mac(&key, data)))
        });
    }
    group.finish();

    // Tag verification cost (constant-time comparison path).
    c.bench_function("mac_throughput/verify_1KiB", |b| {
        let data = vec![0x11u8; 1024];
        let tag = MacAlgorithm::HmacSha256.mac(&key, &data);
        b.iter(|| std::hint::black_box(MacAlgorithm::HmacSha256.verify(&key, &data, &tag)))
    });
}

criterion_group!(benches, bench_mac_throughput);
criterion_main!(benches);
