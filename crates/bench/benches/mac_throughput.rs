//! Raw throughput of the from-scratch MAC implementations (the primitive
//! behind Figures 6 and 8): bytes per second of SHA-256, HMAC-SHA256 and
//! keyed BLAKE2s on the host, the re-keyed vs precomputed key-schedule
//! comparison on measurement-sized inputs, and the scalar vs 4-lane vs
//! 8-lane multi-buffer comparison behind the fleet's lane-batched
//! measurement path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use erasmus_crypto::{
    Blake2s, Blake2sx4, Blake2sx8, Digest, HmacSha256, MacAlgorithm, MultiDigest, Sha256, Sha256x4,
    Sha256x8,
};

fn bench_mac_throughput(c: &mut Criterion) {
    let key = [0x42u8; 32];
    let mut group = c.benchmark_group("mac_throughput");
    for size in [1024usize, 64 * 1024, 1024 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));

        group.bench_with_input(BenchmarkId::new("SHA-256", size), &data, |b, data| {
            b.iter(|| std::hint::black_box(Sha256::digest(data)))
        });
        group.bench_with_input(BenchmarkId::new("HMAC-SHA256", size), &data, |b, data| {
            b.iter(|| std::hint::black_box(HmacSha256::mac(&key, data)))
        });
        group.bench_with_input(BenchmarkId::new("Keyed BLAKE2s", size), &data, |b, data| {
            b.iter(|| std::hint::black_box(Blake2s::keyed_mac(&key, data)))
        });
    }
    group.finish();

    // Tag verification cost (constant-time comparison path).
    c.bench_function("mac_throughput/verify_1KiB", |b| {
        let data = vec![0x11u8; 1024];
        let tag = MacAlgorithm::HmacSha256.mac(&key, &data);
        b.iter(|| std::hint::black_box(MacAlgorithm::HmacSha256.verify(&key, &data, &tag)))
    });
}

/// The ERASMUS hot path MACs a 40-byte `(t, H(mem_t))` input per
/// measurement. Re-deriving the HMAC key schedule dominates at that size;
/// the precomputed `KeyedMac` midstate amortizes it to once per device.
fn bench_key_schedule(c: &mut Criterion) {
    let key = [0x42u8; 32];
    // Timestamp + SHA-256 digest, as built by `Measurement::mac_input`.
    let mac_input = [0x5au8; 40];
    let mut group = c.benchmark_group("key_schedule");
    for alg in MacAlgorithm::ALL {
        group.bench_with_input(
            BenchmarkId::new("rekeyed", alg.to_string()),
            &mac_input,
            |b, input| b.iter(|| std::hint::black_box(alg.mac(&key, input))),
        );
        let keyed = alg.with_key(&key);
        group.bench_with_input(
            BenchmarkId::new("precomputed", alg.to_string()),
            &mac_input,
            |b, input| b.iter(|| std::hint::black_box(keyed.mac(input))),
        );
    }
    group.finish();
}

/// Scalar vs lane-interleaved hashing at measurement-like sizes: the
/// throughput is bytes hashed across *all* lanes, so the multi-buffer wins
/// show up directly as higher GiB/s at identical per-message work.
fn bench_multi_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_buffer");
    for size in [1024usize, 4 * 1024, 64 * 1024] {
        let images: Vec<Vec<u8>> = (0..8u8).map(|lane| vec![lane ^ 0xab; size]).collect();

        group.throughput(Throughput::Bytes(8 * size as u64));
        group.bench_with_input(BenchmarkId::new("SHA-256/scalar", size), &images, |b, m| {
            b.iter(|| {
                for image in m.iter() {
                    std::hint::black_box(Sha256::digest(image));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("SHA-256/x4", size), &images, |b, m| {
            b.iter(|| {
                for pair in m.chunks_exact(4) {
                    std::hint::black_box(Sha256x4::digest(std::array::from_fn(|i| &pair[i][..])));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("SHA-256/x8", size), &images, |b, m| {
            b.iter(|| {
                std::hint::black_box(Sha256x8::digest(std::array::from_fn(|i| &m[i][..])));
            })
        });

        group.bench_with_input(BenchmarkId::new("BLAKE2s/scalar", size), &images, |b, m| {
            b.iter(|| {
                for image in m.iter() {
                    std::hint::black_box(Blake2s::digest(image));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("BLAKE2s/x4", size), &images, |b, m| {
            b.iter(|| {
                for pair in m.chunks_exact(4) {
                    std::hint::black_box(Blake2sx4::digest(std::array::from_fn(|i| &pair[i][..])));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("BLAKE2s/x8", size), &images, |b, m| {
            b.iter(|| {
                std::hint::black_box(Blake2sx8::digest(std::array::from_fn(|i| &m[i][..])));
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mac_throughput,
    bench_key_schedule,
    bench_multi_buffer
);
criterion_main!(benches);
