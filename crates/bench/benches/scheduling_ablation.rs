//! Scheduling ablation bench: regular vs irregular schedules against
//! schedule-aware malware (Section 3.5) and lenient scheduling (Section 5).

use criterion::{criterion_group, criterion_main, Criterion};
use erasmus_bench::scheduling;
use erasmus_core::ScheduleKind;
use erasmus_sim::SimDuration;

fn bench_scheduling(c: &mut Criterion) {
    println!("\n{}", scheduling::render(10, 2024));

    c.bench_function("scheduling/schedule_aware_malware_regular", |b| {
        b.iter(|| {
            std::hint::black_box(scheduling::schedule_aware_malware_detection(
                ScheduleKind::Regular,
                2,
                7,
            ))
        })
    });

    c.bench_function("scheduling/schedule_aware_malware_irregular", |b| {
        b.iter(|| {
            std::hint::black_box(scheduling::schedule_aware_malware_detection(
                ScheduleKind::Irregular {
                    lower: SimDuration::from_secs(5),
                    upper: SimDuration::from_secs(15),
                },
                2,
                7,
            ))
        })
    });

    c.bench_function("scheduling/lenient_windows", |b| {
        b.iter(|| std::hint::black_box(scheduling::lenient_scheduling(&[1.0, 2.0, 3.0])))
    });
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
