//! Event-queue backend comparison: the calendar queue (rotating wheel of
//! time buckets) vs the original `BinaryHeap` oracle, at the pending-set
//! sizes a fleet shard actually holds.
//!
//! Two workload shapes, mirroring the property-test distributions:
//!
//! * **uniform** — arrival times spread over one wheel revolution (~17 s),
//!   the steady-state shape of a staggered fleet schedule;
//! * **bursty** — arrivals collapsed onto 8 instants, the same-instant
//!   cohort shape the coalescing path produces, where the heap pays
//!   log(n) per tie and the calendar queue pays for one bucket sort.
//!
//! Two operations per (backend, shape, size):
//!
//! * **hold** — steady state: one pop + one push per iteration with the
//!   pending count pinned at N. This is the per-event scheduling cost at
//!   depth N — the number that must beat the heap at ≥ 100k pending.
//! * **drain** — build the full pending set, then pop it dry: amortized
//!   cost of a whole shard timeline at that depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use erasmus_sim::{EventQueue, Scheduler, SimDuration, SimRng, SimTime};

/// One wheel revolution is ~17.2 s; keep draws inside it so the uniform
/// shape exercises the wheel, not the overflow list.
const SPAN_NANOS: u64 = 17_000_000_000;

/// Deterministic arrival offsets for `count` events of the given shape.
fn offsets(count: usize, bursty: bool, seed: u64) -> Vec<SimDuration> {
    let mut rng = SimRng::seed_from(seed);
    (0..count)
        .map(|_| {
            let nanos = if bursty {
                rng.gen_range(0, 8) * 250_000_000
            } else {
                rng.gen_range(0, SPAN_NANOS)
            };
            SimDuration::from_nanos(nanos)
        })
        .collect()
}

fn shape_name(bursty: bool) -> &'static str {
    if bursty {
        "bursty"
    } else {
        "uniform"
    }
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    for &count in &[1_000usize, 100_000, 1_000_000] {
        // A 1M-deep drain pushes and pops two million events per
        // iteration; trim the sample count so the group stays minutes,
        // not hours.
        group.sample_size(if count >= 1_000_000 { 10 } else { 50 });
        for bursty in [false, true] {
            let offsets = offsets(count, bursty, 0xca1e_da12 ^ count as u64);
            for scheduler in [Scheduler::Calendar, Scheduler::Heap] {
                let id = format!("{scheduler}/{}", shape_name(bursty));

                // Steady-state per-event cost at depth `count`.
                group.throughput(Throughput::Elements(1));
                group.bench_with_input(
                    BenchmarkId::new(format!("hold/{id}"), count),
                    &offsets,
                    |b, offsets| {
                        let mut queue: EventQueue<u64> = EventQueue::with_scheduler(scheduler);
                        for (i, &offset) in offsets.iter().enumerate() {
                            queue.push(SimTime::ZERO + offset, i as u64);
                        }
                        let mut cursor = 0usize;
                        b.iter(|| {
                            let event = queue.pop().expect("queue is held at depth N");
                            // Reschedule one revolution out, keeping the
                            // shape: the offset stream replays against the
                            // popped event's own time base.
                            let offset = offsets[cursor % offsets.len()];
                            cursor += 1;
                            queue.push(
                                event.time + SimDuration::from_nanos(SPAN_NANOS) + offset,
                                event.payload,
                            );
                            std::hint::black_box(event.sequence)
                        });
                    },
                );

                // Build-then-drain: N pushes + N pops per iteration.
                group.throughput(Throughput::Elements(count as u64));
                group.bench_with_input(
                    BenchmarkId::new(format!("drain/{id}"), count),
                    &offsets,
                    |b, offsets| {
                        b.iter(|| {
                            let mut queue: EventQueue<u64> = EventQueue::with_scheduler(scheduler);
                            for (i, &offset) in offsets.iter().enumerate() {
                                queue.push(SimTime::ZERO + offset, i as u64);
                            }
                            let mut last = 0u64;
                            while let Some(event) = queue.pop() {
                                last = event.payload;
                            }
                            std::hint::black_box(last)
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
