//! Table 2 bench: prover-side cost of the collection phase, ERASMUS vs
//! ERASMUS+OD, driven through the real protocol engines.

use criterion::{criterion_group, criterion_main, Criterion};
use erasmus_bench::table2;
use erasmus_core::{CollectionRequest, DeviceId, Prover, ProverConfig, Verifier};
use erasmus_crypto::MacAlgorithm;
use erasmus_hw::{DeviceKey, DeviceProfile};
use erasmus_sim::{SimDuration, SimTime};

fn provisioned_prover(memory: usize) -> (Prover, Verifier) {
    let key = DeviceKey::from_bytes([0x42u8; 32]);
    let config = ProverConfig::builder()
        .mac_algorithm(MacAlgorithm::KeyedBlake2s)
        .measurement_interval(SimDuration::from_secs(60))
        .buffer_slots(16)
        .build()
        .expect("valid config");
    let mut prover = Prover::new(
        DeviceId::new(1),
        DeviceProfile::imx6_sabre_lite(memory),
        key.clone(),
        config,
    )
    .expect("provisioning");
    prover
        .run_until(SimTime::from_secs(480))
        .expect("measurements");
    (prover, Verifier::new(key, MacAlgorithm::KeyedBlake2s))
}

fn bench_table2(c: &mut Criterion) {
    println!("\n{}", table2::render());

    // Host-side cost of serving an ERASMUS collection (the simulated prover
    // time is reported by `repro table2`; this measures the engine itself).
    c.bench_function("table2/erasmus_collection_engine", |b| {
        let (mut prover, _) = provisioned_prover(table2::TABLE2_MEMORY_BYTES);
        let mut t = 481u64;
        b.iter(|| {
            t += 1;
            std::hint::black_box(
                prover.handle_collection(&CollectionRequest::latest(8), SimTime::from_secs(t)),
            )
        });
    });

    // The ERASMUS+OD path actually hashes the (1 MiB here, to keep the bench
    // fast) memory image and computes the MAC — real cryptographic work.
    c.bench_function("table2/erasmus_od_engine_1MiB", |b| {
        let (mut prover, mut verifier) = provisioned_prover(1024 * 1024);
        let mut t = 481u64;
        b.iter(|| {
            t += 1;
            let request = verifier.make_on_demand_request(8, SimTime::from_secs(t));
            std::hint::black_box(
                prover
                    .handle_on_demand(&request, SimTime::from_secs(t))
                    .expect("request accepted"),
            )
        });
    });
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
