//! Per-entry cost of the compact verifier history: bounded ring ingest
//! (ring slot write + rollup update + one SHA-256 chain extension per
//! eviction) against the unbounded `BTreeMap` baseline it replaced.
//!
//! Three window shapes per mode — 1, 8 and 64 retained entries — at the
//! arrival pattern the fleet actually produces: strictly increasing
//! timestamps (collections arrive in order per device on a lossless link).
//! `ring/N` holds resident state at N and pays one chain extension per
//! ingest once warm; `unbounded` grows its map without bound, which is the
//! O(log n) insert plus allocator traffic the ring eliminates. A separate
//! `extend_digest` benchmark prices the raw PCR-style hash-chain step on
//! its own.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use erasmus_core::MeasurementVerdict;
use erasmus_core::{extend_digest, DeviceHistory, DeviceId, HistoryEntry, HistoryMode};
use erasmus_sim::SimTime;

/// Entries ingested per iteration: enough that the warm-up (filling the
/// window) is noise and the steady-state eviction path dominates.
const STREAM_LEN: u64 = 4_096;

fn entry(sequence: u64) -> HistoryEntry {
    HistoryEntry {
        timestamp: SimTime::from_secs(10 * sequence),
        verdict: MeasurementVerdict::Healthy,
        collected_at: SimTime::from_secs(10 * sequence + 5),
    }
}

fn bench_history_extend(c: &mut Criterion) {
    let mut group = c.benchmark_group("history_extend");
    group.throughput(Throughput::Elements(STREAM_LEN));

    for &capacity in &[1usize, 8, 64] {
        group.bench_with_input(
            BenchmarkId::new("ring", capacity),
            &capacity,
            |b, &capacity| {
                b.iter(|| {
                    let mut history =
                        DeviceHistory::with_mode(DeviceId::new(1), HistoryMode::Ring(capacity));
                    for sequence in 0..STREAM_LEN {
                        history.observe(entry(sequence));
                    }
                    std::hint::black_box(*history.head_digest())
                });
            },
        );
    }

    // The baseline the ring replaced: same stream into the unbounded
    // BTreeMap. There is no capacity axis — the map keeps everything —
    // but running it at the same stream length makes the per-entry
    // numbers directly comparable.
    group.bench_function("unbounded", |b| {
        b.iter(|| {
            let mut history = DeviceHistory::new(DeviceId::new(1));
            for sequence in 0..STREAM_LEN {
                history.observe(entry(sequence));
            }
            std::hint::black_box(*history.head_digest())
        });
    });

    // The raw chain step: one SHA-256 over (digest || entry fields). This
    // is the floor for ring ingest at capacity 1 — everything above it is
    // ring bookkeeping.
    group.throughput(Throughput::Elements(1));
    group.bench_function("extend_digest", |b| {
        let mut digest = [0u8; 32];
        let mut sequence = 0u64;
        b.iter(|| {
            let e = entry(sequence);
            sequence += 1;
            digest = extend_digest(
                &digest,
                e.timestamp.as_nanos(),
                0,
                e.collected_at.as_nanos(),
            );
            std::hint::black_box(digest)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_history_extend);
criterion_main!(benches);
