//! Figure 6 bench: measurement run-time vs memory size on the MSP430-class
//! profile — the cost-model series plus real measurement computation on the
//! host for the same memory sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use erasmus_bench::runtime;
use erasmus_core::Measurement;
use erasmus_crypto::MacAlgorithm;

fn bench_fig6(c: &mut Criterion) {
    println!(
        "\n{}",
        runtime::render(
            "Figure 6: Measurement run-time on MSP430 @ 8 MHz",
            &runtime::figure6(),
            1024,
            "KB",
        )
    );

    // Host-side: actually compute measurements over the Figure 6 memory
    // sizes with both MACs, showing the same linear shape.
    let mut group = c.benchmark_group("fig6/measurement_computation");
    let key = [0x42u8; 32];
    for kb in [2usize, 6, 10] {
        let memory = vec![0xa5u8; kb * 1024];
        group.throughput(Throughput::Bytes(memory.len() as u64));
        for alg in [MacAlgorithm::HmacSha256, MacAlgorithm::KeyedBlake2s] {
            group.bench_with_input(
                BenchmarkId::new(alg.paper_name(), format!("{kb}KB")),
                &memory,
                |b, memory| {
                    b.iter(|| {
                        std::hint::black_box(Measurement::compute(
                            &key,
                            alg,
                            erasmus_sim::SimTime::from_secs(1),
                            memory,
                        ))
                    })
                },
            );
        }
    }
    group.finish();

    c.bench_function("fig6/cost_model_series", |b| {
        b.iter(|| std::hint::black_box(runtime::figure6()))
    });
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
