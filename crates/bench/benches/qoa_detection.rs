//! QoA bench: Monte-Carlo detection-probability scenarios (the simulation
//! behind the Figure 1 / Section 3.1 discussion).

use criterion::{criterion_group, criterion_main, Criterion};
use erasmus_bench::{fig1, qoa_sweep};
use erasmus_core::{InfectionSpec, Scenario};
use erasmus_sim::{SimDuration, SimTime};

fn bench_qoa(c: &mut Criterion) {
    println!("\n{}", fig1::render());
    println!(
        "\n{}",
        qoa_sweep::render(&qoa_sweep::default_sweep(40, 2024))
    );

    c.bench_function("qoa/figure1_scenario", |b| {
        b.iter(|| std::hint::black_box(fig1::run()))
    });

    c.bench_function("qoa/single_mobile_infection_scenario", |b| {
        b.iter(|| {
            std::hint::black_box(
                Scenario::builder()
                    .measurement_interval(SimDuration::from_secs(10))
                    .collection_interval(SimDuration::from_secs(60))
                    .duration(SimDuration::from_secs(300))
                    .infection(InfectionSpec::mobile(
                        SimTime::from_secs(73),
                        SimDuration::from_secs(8),
                    ))
                    .run()
                    .expect("scenario runs"),
            )
        })
    });

    c.bench_function("qoa/detection_sweep_small", |b| {
        b.iter(|| std::hint::black_box(qoa_sweep::default_sweep(5, 7)))
    });
}

criterion_group!(benches, bench_qoa);
criterion_main!(benches);
