//! Figure 8 bench: measurement run-time vs memory size on the i.MX6-class
//! profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use erasmus_bench::runtime;
use erasmus_core::Measurement;
use erasmus_crypto::MacAlgorithm;

fn bench_fig8(c: &mut Criterion) {
    println!(
        "\n{}",
        runtime::render(
            "Figure 8: Measurement run-time on i.MX6 Sabre Lite @ 1 GHz",
            &runtime::figure8(),
            1024 * 1024,
            "MB",
        )
    );

    // Host-side measurement computation over megabyte-scale images (2 MiB
    // keeps a single iteration fast while preserving the linear trend).
    let mut group = c.benchmark_group("fig8/measurement_computation");
    group.sample_size(10);
    let key = [0x42u8; 32];
    for mb in [1usize, 2] {
        let memory = vec![0x5au8; mb * 1024 * 1024];
        group.throughput(Throughput::Bytes(memory.len() as u64));
        for alg in [MacAlgorithm::HmacSha256, MacAlgorithm::KeyedBlake2s] {
            group.bench_with_input(
                BenchmarkId::new(alg.paper_name(), format!("{mb}MB")),
                &memory,
                |b, memory| {
                    b.iter(|| {
                        std::hint::black_box(Measurement::compute(
                            &key,
                            alg,
                            erasmus_sim::SimTime::from_secs(1),
                            memory,
                        ))
                    })
                },
            );
        }
    }
    group.finish();

    c.bench_function("fig8/cost_model_series", |b| {
        b.iter(|| std::hint::black_box(runtime::figure8()))
    });
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
