//! Table 1 bench: composing the executable-size model for every
//! (architecture, mode, MAC) cell, and printing the reproduced table.

use criterion::{criterion_group, criterion_main, Criterion};
use erasmus_bench::table1;
use erasmus_hw::CodeSizeModel;

fn bench_table1(c: &mut Criterion) {
    // Print the reproduced table once so `cargo bench` output doubles as the
    // experiment record.
    println!("\n{}", table1::render());

    c.bench_function("table1/compose_all_cells", |b| {
        let model = CodeSizeModel::calibrated();
        b.iter(|| std::hint::black_box(model.table1()));
    });

    c.bench_function("table1/render", |b| {
        b.iter(|| std::hint::black_box(table1::render()));
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
