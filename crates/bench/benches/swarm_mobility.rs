//! Section 6 bench: swarm attestation coverage and round duration under
//! mobility — ERASMUS collection vs the on-demand (SEDA-style) baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use erasmus_bench::swarm_mobility;
use erasmus_sim::{SimRng, SimTime};
use erasmus_swarm::{MobilityModel, MobilitySimulator, Swarm, SwarmConfig, Topology};

fn bench_swarm(c: &mut Criterion) {
    println!(
        "\n{}",
        swarm_mobility::render(&swarm_mobility::default_sweep(2024))
    );

    c.bench_function("swarm/erasmus_collection_24_devices", |b| {
        let mut rng = SimRng::seed_from(1);
        let topology = Topology::random_connected(24, 3.0, &mut rng);
        let mut swarm = Swarm::new(SwarmConfig::default(), topology, b"bench").expect("swarm");
        swarm.run_until(SimTime::from_secs(60)).expect("run");
        b.iter(|| std::hint::black_box(swarm.erasmus_collection(0, SimTime::from_secs(60), 6)))
    });

    c.bench_function("swarm/on_demand_round_24_devices", |b| {
        let mut rng = SimRng::seed_from(2);
        let topology = Topology::random_connected(24, 3.0, &mut rng);
        let mut swarm = Swarm::new(SwarmConfig::default(), topology, b"bench").expect("swarm");
        swarm.run_until(SimTime::from_secs(60)).expect("run");
        let mut t = 61u64;
        b.iter(|| {
            t += 1;
            let mut mobility = MobilitySimulator::new(MobilityModel::Static, SimRng::seed_from(t));
            std::hint::black_box(swarm.on_demand_attestation(
                0,
                SimTime::from_secs(t),
                &mut mobility,
            ))
        })
    });

    c.bench_function("swarm/mobility_sweep_small", |b| {
        b.iter(|| std::hint::black_box(swarm_mobility::sweep(12, &[0.0, 0.4], 5)))
    });
}

criterion_group!(benches, bench_swarm);
criterion_main!(benches);
