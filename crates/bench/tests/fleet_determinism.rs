//! The sharded fleet engine must be a pure partition of the work: thread
//! count changes wall-clock, never the simulated protocol. These tests pin
//! the determinism contract the `BENCH_fleet.json` scaling sweep relies
//! on — including for lossy, churning and on-demand timelines, whose
//! per-device draws are keyed by the global device index and therefore
//! independent of the partition.

use erasmus_bench::fleet::{self, scaling, FleetConfig, FleetReport};
use erasmus_crypto::MacAlgorithm;
use erasmus_sim::{NetworkConfig, Scheduler, SimDuration};

fn config(algorithm: MacAlgorithm) -> FleetConfig {
    FleetConfig::new(96, 3, 2, 512, 4, algorithm)
}

fn lossy_config() -> FleetConfig {
    let mut config = config(MacAlgorithm::HmacSha256);
    config.network = NetworkConfig {
        base_latency: SimDuration::ZERO,
        jitter: SimDuration::ZERO,
        loss: 0.05,
        ..NetworkConfig::IDEAL
    };
    config.seed = 42;
    config
}

/// The acceptance scenario from the reliability work: loss, duplication,
/// reordering and corruption all on at once, with enough ARQ budget to
/// recover every report.
fn faulty_config() -> FleetConfig {
    let mut config = config(MacAlgorithm::HmacSha256);
    // Four rounds give the 1% corruption draw enough frame transmissions
    // to fire at this seed, so the live reject paths are exercised.
    config.rounds = 4;
    config.network = NetworkConfig {
        base_latency: SimDuration::from_millis(10),
        jitter: SimDuration::from_millis(5),
        loss: 0.05,
        duplicate: 0.02,
        reorder: 0.02,
        corrupt: 0.01,
    };
    config.retries = 6;
    config.seed = 42;
    config
}

#[test]
fn threaded_and_single_threaded_runs_are_identical() {
    let config = config(MacAlgorithm::HmacSha256);
    let single = fleet::run_threaded(&config, 1);
    let threaded = fleet::run_threaded(&config, 4);

    assert_eq!(single.threads, 1);
    assert_eq!(threaded.threads, 4);
    assert_eq!(single.measurements_total, threaded.measurements_total);
    assert_eq!(single.verifications_total, threaded.verifications_total);
    assert_eq!(single.all_healthy, threaded.all_healthy);
    assert!(single.all_healthy);

    // The same invariants hold on the simulated-cost and history axes: the
    // partition must not change what any device did or what the verifier
    // side learned.
    assert_eq!(single.simulated_busy, threaded.simulated_busy);
    assert_eq!(single.devices_tracked, threaded.devices_tracked);
    assert_eq!(single.history_entries, threaded.history_entries);
    assert_eq!(single.collections_ingested, threaded.collections_ingested);

    assert_eq!(single.measurements_total, config.total_measurements());
    assert_eq!(threaded.shards.len(), 4);
    let shard_sum: u64 = threaded.shards.iter().map(|s| s.measurements).sum();
    assert_eq!(shard_sum, threaded.measurements_total);
}

#[test]
fn default_flags_reproduce_the_phase_loop_totals() {
    // The event-driven runtime must be observationally identical to the
    // original measure-then-collect phase loops when no scenario knob is
    // turned: exact totals, exact hub coverage, every report AllHealthy —
    // at 1 and 4 threads.
    let config = config(MacAlgorithm::HmacSha256);
    for threads in [1usize, 4] {
        let report = fleet::run_threaded(&config, threads);
        assert_eq!(
            report.measurements_total,
            config.total_measurements(),
            "threads={threads}"
        );
        assert_eq!(report.verifications_total, config.total_measurements());
        assert_eq!(
            report.collections_attempted,
            config.total_collection_attempts()
        );
        assert_eq!(report.collections_delivered, report.collections_attempted);
        assert_eq!(report.collections_dropped, 0);
        assert_eq!(report.collections_ingested, report.collections_delivered);
        assert_eq!(report.devices_tracked, config.provers);
        assert_eq!(report.history_entries, config.total_measurements());
        assert!(report.all_healthy, "threads={threads}");
        assert_eq!(report.devices_churned, 0);
        assert_eq!(report.on_demand_attempted, 0);
    }
}

#[test]
fn determinism_holds_for_every_algorithm() {
    for alg in MacAlgorithm::ALL {
        let config = config(alg);
        let single = fleet::run_threaded(&config, 1);
        let threaded = fleet::run_threaded(&config, 3);
        assert_eq!(
            single.measurements_total, threaded.measurements_total,
            "{alg}"
        );
        assert_eq!(
            single.verifications_total, threaded.verifications_total,
            "{alg}"
        );
        assert_eq!(single.all_healthy, threaded.all_healthy, "{alg}");
    }
}

#[test]
fn lossy_runs_are_deterministic_and_conserve_attempts() {
    let config = lossy_config();
    let first = fleet::run_threaded(&config, 1);
    let again = fleet::run_threaded(&config, 1);
    let threaded = fleet::run_threaded(&config, 4);

    // Same seed → same packet fates, run to run and thread count to thread
    // count.
    assert_eq!(first.collections_delivered, again.collections_delivered);
    assert_eq!(first.collections_dropped, again.collections_dropped);
    assert_eq!(first.collections_delivered, threaded.collections_delivered);
    assert_eq!(first.collections_dropped, threaded.collections_dropped);
    assert_eq!(first.verifications_total, threaded.verifications_total);
    assert_eq!(first.history_entries, threaded.history_entries);

    // Conservation: every scheduled attempt is either delivered or dropped,
    // and the hub ingested exactly the delivered ones.
    assert_eq!(
        first.collections_delivered + first.collections_dropped,
        first.collections_attempted
    );
    assert_eq!(
        first.collections_attempted,
        config.total_collection_attempts()
    );
    assert!(first.collections_dropped > 0, "5% loss dropped nothing");
    assert_eq!(first.collections_ingested, first.collections_delivered);

    // Devices measure regardless of collection fate; loss only removes
    // evidence from the verifier side, it does not fabricate compromise.
    assert_eq!(first.measurements_total, config.total_measurements());
    assert!(first.all_healthy);

    // A different seed draws different fates.
    let mut reseeded = config.clone();
    reseeded.seed = 1337;
    let other = fleet::run_threaded(&reseeded, 1);
    assert_eq!(
        other.collections_delivered + other.collections_dropped,
        other.collections_attempted
    );
    assert_ne!(other.collections_delivered, first.collections_delivered);
}

#[test]
fn churn_and_on_demand_stay_thread_invariant() {
    let mut config = config(MacAlgorithm::KeyedBlake2s);
    config.rounds = 3;
    config.churn = 0.25;
    config.on_demand = 24;
    config.network = NetworkConfig {
        base_latency: SimDuration::from_millis(10),
        jitter: SimDuration::from_millis(5),
        loss: 0.02,
        ..NetworkConfig::IDEAL
    };
    config.seed = 7;

    let single = fleet::run_threaded(&config, 1);
    let threaded = fleet::run_threaded(&config, 4);

    assert_eq!(single.measurements_total, threaded.measurements_total);
    assert_eq!(single.verifications_total, threaded.verifications_total);
    assert_eq!(single.collections_delivered, threaded.collections_delivered);
    assert_eq!(single.collections_dropped, threaded.collections_dropped);
    assert_eq!(single.devices_churned, threaded.devices_churned);
    assert_eq!(single.on_demand_attempted, threaded.on_demand_attempted);
    assert_eq!(single.on_demand_completed, threaded.on_demand_completed);
    assert_eq!(single.on_demand_p50, threaded.on_demand_p50);
    assert_eq!(single.on_demand_p99, threaded.on_demand_p99);
    assert_eq!(single.history_entries, threaded.history_entries);
    assert_eq!(single.simulated_busy, threaded.simulated_busy);

    assert!(single.devices_churned > 0, "25% churn drew no churners");
    assert_eq!(single.on_demand_attempted, 24);
    assert!(single.on_demand_completed > 0);
    assert!(single.on_demand_p50 <= single.on_demand_p99);
    assert_eq!(
        single.collections_delivered + single.collections_dropped,
        single.collections_attempted
    );
    // Churned devices skip part of their schedule.
    assert!(single.measurements_total < config.total_measurements() + 24);
    assert!(single.all_healthy, "gaps must not read as compromise");
}

#[test]
fn lane_batched_runs_reproduce_scalar_totals_bit_for_bit() {
    // The lane-interleaved measurement path must be a pure re-expression of
    // the scalar timeline: identical totals, health, simulated cost and hub
    // coverage for every algorithm, at 1 and 4 threads, at width 4 and 8.
    for alg in MacAlgorithm::ALL {
        let scalar_config = config(alg);
        let scalar = fleet::run_threaded(&scalar_config, 1);
        assert_eq!(scalar.lane_jobs, 0);
        for lanes in [4usize, 8] {
            for threads in [1usize, 4] {
                let mut config = scalar_config.clone();
                config.lanes = lanes;
                let report = fleet::run_threaded(&config, threads);
                let label = format!("{alg} lanes={lanes} threads={threads}");
                assert_eq!(
                    report.measurements_total, scalar.measurements_total,
                    "{label}"
                );
                assert_eq!(
                    report.verifications_total, scalar.verifications_total,
                    "{label}"
                );
                assert_eq!(report.all_healthy, scalar.all_healthy, "{label}");
                assert!(report.all_healthy, "{label}");
                assert_eq!(report.simulated_busy, scalar.simulated_busy, "{label}");
                assert_eq!(report.devices_tracked, scalar.devices_tracked, "{label}");
                assert_eq!(report.history_entries, scalar.history_entries, "{label}");
                assert_eq!(
                    report.collections_ingested, scalar.collections_ingested,
                    "{label}"
                );
                assert!(report.lane_jobs > 0, "{label}: no multi-lane job ran");
            }
        }
    }
}

#[test]
fn lane_batched_scenario_runs_stay_thread_and_lane_invariant() {
    // Loss, churn and on-demand traffic on top of lane batching: the width
    // must not change any simulated outcome, and neither must the thread
    // count at any width.
    let mut base = config(MacAlgorithm::HmacSha256);
    base.rounds = 3;
    base.churn = 0.25;
    base.on_demand = 16;
    base.network = NetworkConfig {
        base_latency: SimDuration::from_millis(10),
        jitter: SimDuration::from_millis(5),
        loss: 0.05,
        ..NetworkConfig::IDEAL
    };
    base.seed = 9;

    let scalar = fleet::run_threaded(&base, 1);
    for lanes in [4usize, 8] {
        let mut config = base.clone();
        config.lanes = lanes;
        let single = fleet::run_threaded(&config, 1);
        let threaded = fleet::run_threaded(&config, 4);
        for (report, label) in [
            (&single, format!("lanes={lanes} threads=1")),
            (&threaded, format!("lanes={lanes} threads=4")),
        ] {
            assert_eq!(
                report.measurements_total, scalar.measurements_total,
                "{label}"
            );
            assert_eq!(
                report.verifications_total, scalar.verifications_total,
                "{label}"
            );
            assert_eq!(
                report.collections_delivered, scalar.collections_delivered,
                "{label}"
            );
            assert_eq!(
                report.collections_dropped, scalar.collections_dropped,
                "{label}"
            );
            assert_eq!(report.devices_churned, scalar.devices_churned, "{label}");
            assert_eq!(
                report.on_demand_completed, scalar.on_demand_completed,
                "{label}"
            );
            assert_eq!(report.on_demand_p50, scalar.on_demand_p50, "{label}");
            assert_eq!(report.on_demand_p99, scalar.on_demand_p99, "{label}");
            assert_eq!(report.history_entries, scalar.history_entries, "{label}");
            assert_eq!(report.simulated_busy, scalar.simulated_busy, "{label}");
            assert_eq!(report.all_healthy, scalar.all_healthy, "{label}");
        }
        assert!(single.lane_jobs > 0, "lanes={lanes} batched nothing");
    }
}

#[test]
fn wire_delivery_matches_struct_delivery_bit_for_bit() {
    // The tentpole invariant: routing every collection burst through the
    // encoded frame path must be observationally identical to the legacy
    // in-memory path — same totals, same hub coverage, same health — at 1
    // and 4 threads, on a lossless run.
    let wire_config = config(MacAlgorithm::HmacSha256);
    assert!(wire_config.wire, "wire delivery is the default");
    let mut struct_config = wire_config.clone();
    struct_config.wire = false;

    for threads in [1usize, 4] {
        let wire = fleet::run_threaded(&wire_config, threads);
        let legacy = fleet::run_threaded(&struct_config, threads);
        let label = format!("threads={threads}");

        assert_eq!(
            wire.measurements_total, legacy.measurements_total,
            "{label}"
        );
        assert_eq!(
            wire.verifications_total, legacy.verifications_total,
            "{label}"
        );
        assert_eq!(
            wire.collections_delivered, legacy.collections_delivered,
            "{label}"
        );
        assert_eq!(
            wire.collections_ingested, legacy.collections_ingested,
            "{label}"
        );
        assert_eq!(wire.devices_tracked, legacy.devices_tracked, "{label}");
        assert_eq!(wire.history_entries, legacy.history_entries, "{label}");
        assert_eq!(wire.hub_batches, legacy.hub_batches, "{label}");
        assert_eq!(wire.largest_batch, legacy.largest_batch, "{label}");
        assert_eq!(wire.simulated_busy, legacy.simulated_busy, "{label}");
        assert_eq!(wire.all_healthy, legacy.all_healthy, "{label}");
        assert!(wire.all_healthy, "{label}");

        // The wire run actually used the wire: 100% of collection traffic
        // travelled as encoded frames and decoded losslessly.
        assert!(wire.wire_frames > 0, "{label}: no frame was encoded");
        assert!(wire.wire_bytes > 0, "{label}");
        assert_eq!(
            wire.wire_responses, wire.collections_delivered,
            "{label}: every delivered collection crossed the wire"
        );
        assert_eq!(
            wire.decoded_accepted, wire.collections_ingested,
            "{label}: every ingested report came off a decoded frame"
        );
        assert_eq!(wire.decode_rejects, 0, "{label}");

        // The struct run never touched the wire counters.
        assert_eq!(legacy.wire_frames, 0, "{label}");
        assert_eq!(legacy.wire_bytes, 0, "{label}");
        assert_eq!(legacy.decoded_accepted, 0, "{label}");
    }
}

#[test]
fn wire_delivery_stays_invariant_under_loss_churn_and_on_demand() {
    // Same invariant on a hostile timeline: drops, churn and on-demand
    // traffic (which rides the struct path inside a wire run, since OD
    // reports are verified at receive time) must not open any daylight
    // between the two delivery modes, at any thread count.
    let mut wire_config = config(MacAlgorithm::HmacSha256);
    wire_config.rounds = 3;
    wire_config.churn = 0.2;
    wire_config.on_demand = 24;
    wire_config.network = NetworkConfig {
        base_latency: SimDuration::from_millis(10),
        jitter: SimDuration::from_millis(5),
        loss: 0.05,
        ..NetworkConfig::IDEAL
    };
    wire_config.seed = 11;
    let mut struct_config = wire_config.clone();
    struct_config.wire = false;

    let baseline = fleet::run_threaded(&struct_config, 1);
    for threads in [1usize, 4] {
        let wire = fleet::run_threaded(&wire_config, threads);
        let label = format!("threads={threads}");
        assert_eq!(
            wire.measurements_total, baseline.measurements_total,
            "{label}"
        );
        assert_eq!(
            wire.verifications_total, baseline.verifications_total,
            "{label}"
        );
        assert_eq!(
            wire.collections_delivered, baseline.collections_delivered,
            "{label}"
        );
        assert_eq!(
            wire.collections_dropped, baseline.collections_dropped,
            "{label}"
        );
        assert_eq!(
            wire.collections_ingested, baseline.collections_ingested,
            "{label}"
        );
        assert_eq!(wire.devices_churned, baseline.devices_churned, "{label}");
        assert_eq!(
            wire.on_demand_completed, baseline.on_demand_completed,
            "{label}"
        );
        assert_eq!(wire.on_demand_p50, baseline.on_demand_p50, "{label}");
        assert_eq!(wire.on_demand_p99, baseline.on_demand_p99, "{label}");
        assert_eq!(wire.history_entries, baseline.history_entries, "{label}");
        assert_eq!(wire.simulated_busy, baseline.simulated_busy, "{label}");
        assert_eq!(wire.all_healthy, baseline.all_healthy, "{label}");

        // Conservation on the wire axis: collections ride frames, on-demand
        // reports ride the struct path, nothing is double-counted.
        assert_eq!(wire.wire_responses, wire.collections_delivered, "{label}");
        assert_eq!(
            wire.decoded_accepted + wire.on_demand_completed,
            wire.collections_ingested,
            "{label}"
        );
        assert_eq!(wire.decode_rejects, 0, "{label}");
        assert!(
            wire.collections_dropped > 0,
            "{label}: loss dropped nothing"
        );
    }
}

#[test]
fn hub_tracks_every_device_exactly_once_at_fleet_scale() {
    let config = config(MacAlgorithm::KeyedBlake2s);
    let report = fleet::run_threaded(&config, 4);
    // Per-device isolation: 96 devices × 3 measurements × 2 rounds, no
    // entry leaked into a neighbour's history and none double-counted.
    assert_eq!(report.devices_tracked, config.provers);
    assert_eq!(report.history_entries, config.total_measurements());
    assert_eq!(
        report.collections_ingested,
        (config.provers * config.rounds) as u64
    );
}

#[test]
fn more_stagger_groups_than_provers_is_well_defined_at_scale() {
    let mut config = FleetConfig::new(5, 2, 2, 256, 64, MacAlgorithm::HmacSha256);
    config.seed = 3;
    let single = fleet::run_threaded(&config, 1);
    let threaded = fleet::run_threaded(&config, 4);
    assert_eq!(single.measurements_total, config.total_measurements());
    assert_eq!(single.measurements_total, threaded.measurements_total);
    assert_eq!(single.verifications_total, threaded.verifications_total);
    assert!(single.all_healthy && threaded.all_healthy);
}

#[test]
fn scaling_sweep_is_work_preserving() {
    let config = config(MacAlgorithm::HmacSha256);
    // sweep() itself asserts identical totals at every thread count.
    let points = scaling::sweep(&config, 4);
    assert_eq!(points.len(), 3); // 1, 2, 4
    assert!((points[0].speedup - 1.0).abs() < 1e-12);
    for point in &points {
        assert!(point.measurements_per_sec > 0.0, "rates must stay positive");
        assert!(point.verifications_per_sec > 0.0);
    }
}

#[test]
fn faulty_runs_recover_every_report_and_stay_thread_invariant() {
    // The reliability acceptance pin: with 5% loss, 2% duplication, 2%
    // reordering and 1% corruption all active, the ARQ budget recovers
    // every scheduled collection — the hub ends the run with exactly the
    // totals of the fault-free timeline, at any thread count.
    let faulty = faulty_config();
    let mut lossless = faulty.clone();
    lossless.network = NetworkConfig {
        base_latency: SimDuration::from_millis(10),
        jitter: SimDuration::from_millis(5),
        ..NetworkConfig::IDEAL
    };
    lossless.retries = 0;
    let clean = fleet::run_threaded(&lossless, 1);

    let single = fleet::run_threaded(&faulty, 1);
    let threaded = fleet::run_threaded(&faulty, 4);
    for (report, label) in [(&single, "threads=1"), (&threaded, "threads=4")] {
        // Recovery: every attempt was eventually delivered exactly once.
        assert_eq!(
            report.collections_delivered, report.collections_attempted,
            "{label}: ARQ failed to recover every report"
        );
        assert_eq!(report.collections_dropped, 0, "{label}");
        assert_eq!(report.exhausted_retries, 0, "{label}");
        assert!(
            report.collect_retransmits > 0,
            "{label}: faults retried nothing"
        );
        assert!(report.reorders > 0, "{label}: reorder faults never drew");

        // The retry histogram partitions the deliveries.
        assert_eq!(
            report.retry_histogram.iter().sum::<u64>(),
            report.collections_delivered,
            "{label}"
        );
        assert!(
            report.retry_histogram[0] < report.collections_delivered,
            "{label}: no delivery needed a retransmission"
        );

        // Exactly-once at the hub: every injected duplicate was dropped by
        // the dedup window, every corrupted copy was caught live.
        assert_eq!(report.hub_duplicates, report.frame_duplicates, "{label}");
        assert!(
            report.frame_duplicates > 0,
            "{label}: no duplicate injected"
        );
        assert!(
            report.corrupt_decode_drops + report.corrupt_tamper_drops > 0,
            "{label}: no corrupted copy exercised the reject paths"
        );
        assert_eq!(report.frames_exhausted, 0, "{label}");
        assert_eq!(report.frame_lost_responses, 0, "{label}");

        // Hub totals equal the lossless run's: the faults are invisible in
        // what the verifier side learned.
        assert_eq!(
            report.collections_ingested, clean.collections_ingested,
            "{label}"
        );
        assert_eq!(report.history_entries, clean.history_entries, "{label}");
        assert_eq!(report.devices_tracked, clean.devices_tracked, "{label}");
        assert_eq!(
            report.measurements_total, clean.measurements_total,
            "{label}"
        );
        assert_eq!(
            report.verifications_total, clean.verifications_total,
            "{label}"
        );
        assert!(
            report.all_healthy,
            "{label}: recovery must not read as compromise"
        );
    }

    // Thread invariance: collect-hop fates are drawn per (device, seq) and
    // never per shard, so those counters are identical at any thread
    // count. Frame-hop draws are keyed by the shard's frame flow — frame
    // composition is partition-dependent — so only the *recovered* totals
    // (asserted above) are invariant on that axis, not the fault counts.
    assert_eq!(single.collect_retransmits, threaded.collect_retransmits);
    assert_eq!(single.retry_histogram, threaded.retry_histogram);
    assert_eq!(single.reorders, threaded.reorders);
    assert_eq!(single.collections_ingested, threaded.collections_ingested);
    assert_eq!(single.history_entries, threaded.history_entries);
    assert_eq!(single.simulated_busy, threaded.simulated_busy);
}

#[test]
fn hub_crash_recovery_is_invisible_in_the_totals() {
    // Crash/snapshot/restore cycles mid-run must not change a single
    // observable total — the restored hub is bit-identical, so the run
    // proceeds as if the crash never happened.
    let mut crashing = faulty_config();
    crashing.hub_crashes = 2;
    let mut smooth = crashing.clone();
    smooth.hub_crashes = 0;

    for threads in [1usize, 4] {
        let crashed = fleet::run_threaded(&crashing, threads);
        let baseline = fleet::run_threaded(&smooth, threads);
        let label = format!("threads={threads}");

        // Crashes happened and produced snapshots (one cycle per shard).
        assert_eq!(
            crashed.hub_crashes,
            (threads * crashing.hub_crashes) as u64,
            "{label}"
        );
        assert!(crashed.snapshot_bytes > 0, "{label}");
        assert_eq!(baseline.hub_crashes, 0, "{label}");

        // Everything else is unchanged.
        assert_eq!(
            crashed.measurements_total, baseline.measurements_total,
            "{label}"
        );
        assert_eq!(
            crashed.verifications_total, baseline.verifications_total,
            "{label}"
        );
        assert_eq!(
            crashed.collections_delivered, baseline.collections_delivered,
            "{label}"
        );
        assert_eq!(
            crashed.collections_ingested, baseline.collections_ingested,
            "{label}"
        );
        assert_eq!(crashed.retry_histogram, baseline.retry_histogram, "{label}");
        assert_eq!(crashed.hub_duplicates, baseline.hub_duplicates, "{label}");
        assert_eq!(crashed.history_entries, baseline.history_entries, "{label}");
        assert_eq!(crashed.simulated_busy, baseline.simulated_busy, "{label}");
        assert_eq!(crashed.all_healthy, baseline.all_healthy, "{label}");
        assert!(crashed.all_healthy, "{label}");
    }
}

#[test]
fn churn_under_retransmission_never_replays_stale_evidence() {
    // A device that leaves mid-backoff must not have its pending
    // retransmissions delivered after the fact: the retry timer notices the
    // epoch changed and discards the stale copy, and the conservation
    // ledger accounts for every scheduled attempt exactly once.
    // Loss heavy enough for ARQ chains to survive into their late, long
    // backoff windows — the ones wide enough for a churn departure to land
    // inside — across enough devices that several timers go stale.
    let mut config = FleetConfig::new(128, 3, 3, 256, 4, MacAlgorithm::HmacSha256);
    config.network = NetworkConfig {
        base_latency: SimDuration::from_millis(10),
        jitter: SimDuration::from_millis(5),
        loss: 0.55,
        ..NetworkConfig::IDEAL
    };
    config.retries = 10;
    config.churn = 0.6;
    config.seed = 13;

    let single = fleet::run_threaded(&config, 1);
    let threaded = fleet::run_threaded(&config, 4);

    for (report, label) in [(&single, "threads=1"), (&threaded, "threads=4")] {
        assert!(
            report.devices_churned > 0,
            "{label}: churn drew no churners"
        );
        assert!(
            report.stale_retries > 0,
            "{label}: no retry timer ever outlived its device"
        );
        // Conservation: delivered exactly once, or lost for a named reason.
        assert_eq!(
            report.collections_delivered
                + report.exhausted_retries
                + report.churn_losses
                + report.stale_retries,
            report.collections_attempted,
            "{label}"
        );
        assert_eq!(
            report.collections_dropped,
            report.exhausted_retries + report.churn_losses + report.stale_retries,
            "{label}"
        );
        assert_eq!(
            report.retry_histogram.iter().sum::<u64>(),
            report.collections_delivered,
            "{label}"
        );
        assert!(
            report.all_healthy,
            "{label}: churn gaps must not read as compromise"
        );
    }

    assert_eq!(single.collections_delivered, threaded.collections_delivered);
    assert_eq!(single.stale_retries, threaded.stale_retries);
    assert_eq!(single.churn_losses, threaded.churn_losses);
    assert_eq!(single.exhausted_retries, threaded.exhausted_retries);
    assert_eq!(single.retry_histogram, threaded.retry_histogram);
    assert_eq!(single.history_entries, threaded.history_entries);
    assert_eq!(single.devices_churned, threaded.devices_churned);
}

/// Asserts every simulated-outcome field of two reports agrees — the
/// scheduler-equivalence contract. Wall clocks and queue geometry are the
/// only axes allowed to differ between the calendar and heap backends.
fn assert_same_outcome(a: &FleetReport, b: &FleetReport, label: &str) {
    assert_eq!(a.measurements_total, b.measurements_total, "{label}");
    assert_eq!(a.verifications_total, b.verifications_total, "{label}");
    assert_eq!(a.simulated_busy, b.simulated_busy, "{label}");
    assert_eq!(a.all_healthy, b.all_healthy, "{label}");
    assert_eq!(a.devices_tracked, b.devices_tracked, "{label}");
    assert_eq!(a.history_entries, b.history_entries, "{label}");
    assert_eq!(a.collections_ingested, b.collections_ingested, "{label}");
    assert_eq!(a.collections_attempted, b.collections_attempted, "{label}");
    assert_eq!(a.collections_delivered, b.collections_delivered, "{label}");
    assert_eq!(a.collections_dropped, b.collections_dropped, "{label}");
    assert_eq!(a.collect_retransmits, b.collect_retransmits, "{label}");
    assert_eq!(a.exhausted_retries, b.exhausted_retries, "{label}");
    assert_eq!(a.churn_losses, b.churn_losses, "{label}");
    assert_eq!(a.stale_retries, b.stale_retries, "{label}");
    assert_eq!(a.retry_histogram, b.retry_histogram, "{label}");
    assert_eq!(a.hub_duplicates, b.hub_duplicates, "{label}");
    assert_eq!(a.devices_churned, b.devices_churned, "{label}");
    assert_eq!(a.on_demand_attempted, b.on_demand_attempted, "{label}");
    assert_eq!(a.on_demand_completed, b.on_demand_completed, "{label}");
    assert_eq!(a.on_demand_p50, b.on_demand_p50, "{label}");
    assert_eq!(a.on_demand_p99, b.on_demand_p99, "{label}");
    assert_eq!(a.lane_jobs, b.lane_jobs, "{label}");
    assert_eq!(a.lane_remainder, b.lane_remainder, "{label}");
    assert_eq!(a.events_scheduled, b.events_scheduled, "{label}");
    assert_eq!(a.singleton_events, b.singleton_events, "{label}");
    assert_eq!(a.coalesced_events, b.coalesced_events, "{label}");
    assert_eq!(a.event_pool_high_water, b.event_pool_high_water, "{label}");
    // Push/pop traffic is a function of the simulated timeline alone, so
    // it too must agree; only bucket geometry is backend-specific.
    assert_eq!(a.queue.pushes, b.queue.pushes, "{label}");
    assert_eq!(a.queue.pops, b.queue.pops, "{label}");
}

#[test]
fn calendar_and_heap_schedulers_agree_across_threads_and_lanes() {
    // The acceptance matrix: every thread count × lane width, lossless,
    // must produce identical outcomes under both queue backends.
    let base = config(MacAlgorithm::HmacSha256);
    for lanes in [1usize, 4, 8] {
        for threads in [1usize, 2, 4] {
            let mut calendar_config = base.clone();
            calendar_config.lanes = lanes;
            let mut heap_config = calendar_config.clone();
            heap_config.scheduler = Scheduler::Heap;
            let calendar = fleet::run_threaded(&calendar_config, threads);
            let heap = fleet::run_threaded(&heap_config, threads);
            let label = format!("lossless lanes={lanes} threads={threads}");
            assert_same_outcome(&calendar, &heap, &label);
            assert!(calendar.all_healthy, "{label}");
        }
    }
}

#[test]
fn calendar_and_heap_schedulers_agree_under_faults_and_churn() {
    // Same matrix on the hostile timeline: loss + duplication + reorder +
    // corruption + churn + on-demand + hub crashes, with ARQ running hot.
    // This drives every event variant (retry timers, stale epochs, crash
    // snapshots) through both backends.
    let mut base = faulty_config();
    base.churn = 0.25;
    base.on_demand = 16;
    base.hub_crashes = 1;
    for lanes in [1usize, 4, 8] {
        for threads in [1usize, 2, 4] {
            let mut calendar_config = base.clone();
            calendar_config.lanes = lanes;
            let mut heap_config = calendar_config.clone();
            heap_config.scheduler = Scheduler::Heap;
            let calendar = fleet::run_threaded(&calendar_config, threads);
            let heap = fleet::run_threaded(&heap_config, threads);
            let label = format!("faulty lanes={lanes} threads={threads}");
            assert_same_outcome(&calendar, &heap, &label);
            assert!(
                calendar.collect_retransmits > 0,
                "{label}: faults retried nothing"
            );
        }
    }
}

#[test]
fn event_pool_high_water_is_bounded_by_traffic_not_run_length() {
    // The leak guard: pooled slots are recycled on every delivery, stale
    // retry and exhausted budget, so the high-water mark tracks *in-flight*
    // responses — growing the run 3× must not grow the pool 3×.
    let mut short = FleetConfig::new(64, 2, 2, 256, 4, MacAlgorithm::HmacSha256);
    short.network = NetworkConfig {
        base_latency: SimDuration::from_millis(10),
        jitter: SimDuration::from_millis(5),
        loss: 0.3,
        ..NetworkConfig::IDEAL
    };
    short.retries = 6;
    short.churn = 0.5;
    short.seed = 13;
    let mut long = short.clone();
    long.rounds = 6;

    let short_report = fleet::run_threaded(&short, 2);
    let long_report = fleet::run_threaded(&long, 2);
    assert!(short_report.event_pool_high_water > 0);
    assert!(long_report.devices_churned > 0, "churn drew no churners");
    // 3× the rounds (and 3× the ARQ traffic) must not scale the pool: the
    // bound is per-instant concurrency, which the longer run repeats
    // rather than stacks. Allow slack for fate-draw variation between the
    // two timelines, but reject anything near linear growth.
    assert!(
        long_report.event_pool_high_water <= short_report.event_pool_high_water * 2,
        "pool grew with run length: short={} long={}",
        short_report.event_pool_high_water,
        long_report.event_pool_high_water
    );
}

#[test]
fn scaling_sweep_is_work_preserving_under_loss() {
    // The sweep's totals assertion must hold for lossy runs too: delivery
    // fates are drawn per (device, sequence), never per shard.
    let points = scaling::sweep(&lossy_config(), 4);
    assert_eq!(points.len(), 3);
    for point in &points {
        assert!(point.measurements_per_sec > 0.0);
        assert!(point.verifications_per_sec > 0.0);
    }
}
