//! The sharded fleet engine must be a pure partition of the work: thread
//! count changes wall-clock, never the simulated protocol. These tests pin
//! the determinism contract the `BENCH_fleet.json` scaling sweep relies
//! on — including for lossy, churning and on-demand timelines, whose
//! per-device draws are keyed by the global device index and therefore
//! independent of the partition.

use erasmus_bench::fleet::{self, scaling, FleetConfig};
use erasmus_crypto::MacAlgorithm;
use erasmus_sim::{NetworkConfig, SimDuration};

fn config(algorithm: MacAlgorithm) -> FleetConfig {
    FleetConfig::new(96, 3, 2, 512, 4, algorithm)
}

fn lossy_config() -> FleetConfig {
    let mut config = config(MacAlgorithm::HmacSha256);
    config.network = NetworkConfig {
        base_latency: SimDuration::ZERO,
        jitter: SimDuration::ZERO,
        loss: 0.05,
    };
    config.seed = 42;
    config
}

#[test]
fn threaded_and_single_threaded_runs_are_identical() {
    let config = config(MacAlgorithm::HmacSha256);
    let single = fleet::run_threaded(&config, 1);
    let threaded = fleet::run_threaded(&config, 4);

    assert_eq!(single.threads, 1);
    assert_eq!(threaded.threads, 4);
    assert_eq!(single.measurements_total, threaded.measurements_total);
    assert_eq!(single.verifications_total, threaded.verifications_total);
    assert_eq!(single.all_healthy, threaded.all_healthy);
    assert!(single.all_healthy);

    // The same invariants hold on the simulated-cost and history axes: the
    // partition must not change what any device did or what the verifier
    // side learned.
    assert_eq!(single.simulated_busy, threaded.simulated_busy);
    assert_eq!(single.devices_tracked, threaded.devices_tracked);
    assert_eq!(single.history_entries, threaded.history_entries);
    assert_eq!(single.collections_ingested, threaded.collections_ingested);

    assert_eq!(single.measurements_total, config.total_measurements());
    assert_eq!(threaded.shards.len(), 4);
    let shard_sum: u64 = threaded.shards.iter().map(|s| s.measurements).sum();
    assert_eq!(shard_sum, threaded.measurements_total);
}

#[test]
fn default_flags_reproduce_the_phase_loop_totals() {
    // The event-driven runtime must be observationally identical to the
    // original measure-then-collect phase loops when no scenario knob is
    // turned: exact totals, exact hub coverage, every report AllHealthy —
    // at 1 and 4 threads.
    let config = config(MacAlgorithm::HmacSha256);
    for threads in [1usize, 4] {
        let report = fleet::run_threaded(&config, threads);
        assert_eq!(
            report.measurements_total,
            config.total_measurements(),
            "threads={threads}"
        );
        assert_eq!(report.verifications_total, config.total_measurements());
        assert_eq!(
            report.collections_attempted,
            config.total_collection_attempts()
        );
        assert_eq!(report.collections_delivered, report.collections_attempted);
        assert_eq!(report.collections_dropped, 0);
        assert_eq!(report.collections_ingested, report.collections_delivered);
        assert_eq!(report.devices_tracked, config.provers);
        assert_eq!(report.history_entries, config.total_measurements());
        assert!(report.all_healthy, "threads={threads}");
        assert_eq!(report.devices_churned, 0);
        assert_eq!(report.on_demand_attempted, 0);
    }
}

#[test]
fn determinism_holds_for_every_algorithm() {
    for alg in MacAlgorithm::ALL {
        let config = config(alg);
        let single = fleet::run_threaded(&config, 1);
        let threaded = fleet::run_threaded(&config, 3);
        assert_eq!(
            single.measurements_total, threaded.measurements_total,
            "{alg}"
        );
        assert_eq!(
            single.verifications_total, threaded.verifications_total,
            "{alg}"
        );
        assert_eq!(single.all_healthy, threaded.all_healthy, "{alg}");
    }
}

#[test]
fn lossy_runs_are_deterministic_and_conserve_attempts() {
    let config = lossy_config();
    let first = fleet::run_threaded(&config, 1);
    let again = fleet::run_threaded(&config, 1);
    let threaded = fleet::run_threaded(&config, 4);

    // Same seed → same packet fates, run to run and thread count to thread
    // count.
    assert_eq!(first.collections_delivered, again.collections_delivered);
    assert_eq!(first.collections_dropped, again.collections_dropped);
    assert_eq!(first.collections_delivered, threaded.collections_delivered);
    assert_eq!(first.collections_dropped, threaded.collections_dropped);
    assert_eq!(first.verifications_total, threaded.verifications_total);
    assert_eq!(first.history_entries, threaded.history_entries);

    // Conservation: every scheduled attempt is either delivered or dropped,
    // and the hub ingested exactly the delivered ones.
    assert_eq!(
        first.collections_delivered + first.collections_dropped,
        first.collections_attempted
    );
    assert_eq!(
        first.collections_attempted,
        config.total_collection_attempts()
    );
    assert!(first.collections_dropped > 0, "5% loss dropped nothing");
    assert_eq!(first.collections_ingested, first.collections_delivered);

    // Devices measure regardless of collection fate; loss only removes
    // evidence from the verifier side, it does not fabricate compromise.
    assert_eq!(first.measurements_total, config.total_measurements());
    assert!(first.all_healthy);

    // A different seed draws different fates.
    let mut reseeded = config.clone();
    reseeded.seed = 1337;
    let other = fleet::run_threaded(&reseeded, 1);
    assert_eq!(
        other.collections_delivered + other.collections_dropped,
        other.collections_attempted
    );
    assert_ne!(other.collections_delivered, first.collections_delivered);
}

#[test]
fn churn_and_on_demand_stay_thread_invariant() {
    let mut config = config(MacAlgorithm::KeyedBlake2s);
    config.rounds = 3;
    config.churn = 0.25;
    config.on_demand = 24;
    config.network = NetworkConfig {
        base_latency: SimDuration::from_millis(10),
        jitter: SimDuration::from_millis(5),
        loss: 0.02,
    };
    config.seed = 7;

    let single = fleet::run_threaded(&config, 1);
    let threaded = fleet::run_threaded(&config, 4);

    assert_eq!(single.measurements_total, threaded.measurements_total);
    assert_eq!(single.verifications_total, threaded.verifications_total);
    assert_eq!(single.collections_delivered, threaded.collections_delivered);
    assert_eq!(single.collections_dropped, threaded.collections_dropped);
    assert_eq!(single.devices_churned, threaded.devices_churned);
    assert_eq!(single.on_demand_attempted, threaded.on_demand_attempted);
    assert_eq!(single.on_demand_completed, threaded.on_demand_completed);
    assert_eq!(single.on_demand_p50, threaded.on_demand_p50);
    assert_eq!(single.on_demand_p99, threaded.on_demand_p99);
    assert_eq!(single.history_entries, threaded.history_entries);
    assert_eq!(single.simulated_busy, threaded.simulated_busy);

    assert!(single.devices_churned > 0, "25% churn drew no churners");
    assert_eq!(single.on_demand_attempted, 24);
    assert!(single.on_demand_completed > 0);
    assert!(single.on_demand_p50 <= single.on_demand_p99);
    assert_eq!(
        single.collections_delivered + single.collections_dropped,
        single.collections_attempted
    );
    // Churned devices skip part of their schedule.
    assert!(single.measurements_total < config.total_measurements() + 24);
    assert!(single.all_healthy, "gaps must not read as compromise");
}

#[test]
fn lane_batched_runs_reproduce_scalar_totals_bit_for_bit() {
    // The lane-interleaved measurement path must be a pure re-expression of
    // the scalar timeline: identical totals, health, simulated cost and hub
    // coverage for every algorithm, at 1 and 4 threads, at width 4 and 8.
    for alg in MacAlgorithm::ALL {
        let scalar_config = config(alg);
        let scalar = fleet::run_threaded(&scalar_config, 1);
        assert_eq!(scalar.lane_jobs, 0);
        for lanes in [4usize, 8] {
            for threads in [1usize, 4] {
                let mut config = scalar_config.clone();
                config.lanes = lanes;
                let report = fleet::run_threaded(&config, threads);
                let label = format!("{alg} lanes={lanes} threads={threads}");
                assert_eq!(
                    report.measurements_total, scalar.measurements_total,
                    "{label}"
                );
                assert_eq!(
                    report.verifications_total, scalar.verifications_total,
                    "{label}"
                );
                assert_eq!(report.all_healthy, scalar.all_healthy, "{label}");
                assert!(report.all_healthy, "{label}");
                assert_eq!(report.simulated_busy, scalar.simulated_busy, "{label}");
                assert_eq!(report.devices_tracked, scalar.devices_tracked, "{label}");
                assert_eq!(report.history_entries, scalar.history_entries, "{label}");
                assert_eq!(
                    report.collections_ingested, scalar.collections_ingested,
                    "{label}"
                );
                assert!(report.lane_jobs > 0, "{label}: no multi-lane job ran");
            }
        }
    }
}

#[test]
fn lane_batched_scenario_runs_stay_thread_and_lane_invariant() {
    // Loss, churn and on-demand traffic on top of lane batching: the width
    // must not change any simulated outcome, and neither must the thread
    // count at any width.
    let mut base = config(MacAlgorithm::HmacSha256);
    base.rounds = 3;
    base.churn = 0.25;
    base.on_demand = 16;
    base.network = NetworkConfig {
        base_latency: SimDuration::from_millis(10),
        jitter: SimDuration::from_millis(5),
        loss: 0.05,
    };
    base.seed = 9;

    let scalar = fleet::run_threaded(&base, 1);
    for lanes in [4usize, 8] {
        let mut config = base.clone();
        config.lanes = lanes;
        let single = fleet::run_threaded(&config, 1);
        let threaded = fleet::run_threaded(&config, 4);
        for (report, label) in [
            (&single, format!("lanes={lanes} threads=1")),
            (&threaded, format!("lanes={lanes} threads=4")),
        ] {
            assert_eq!(
                report.measurements_total, scalar.measurements_total,
                "{label}"
            );
            assert_eq!(
                report.verifications_total, scalar.verifications_total,
                "{label}"
            );
            assert_eq!(
                report.collections_delivered, scalar.collections_delivered,
                "{label}"
            );
            assert_eq!(
                report.collections_dropped, scalar.collections_dropped,
                "{label}"
            );
            assert_eq!(report.devices_churned, scalar.devices_churned, "{label}");
            assert_eq!(
                report.on_demand_completed, scalar.on_demand_completed,
                "{label}"
            );
            assert_eq!(report.on_demand_p50, scalar.on_demand_p50, "{label}");
            assert_eq!(report.on_demand_p99, scalar.on_demand_p99, "{label}");
            assert_eq!(report.history_entries, scalar.history_entries, "{label}");
            assert_eq!(report.simulated_busy, scalar.simulated_busy, "{label}");
            assert_eq!(report.all_healthy, scalar.all_healthy, "{label}");
        }
        assert!(single.lane_jobs > 0, "lanes={lanes} batched nothing");
    }
}

#[test]
fn wire_delivery_matches_struct_delivery_bit_for_bit() {
    // The tentpole invariant: routing every collection burst through the
    // encoded frame path must be observationally identical to the legacy
    // in-memory path — same totals, same hub coverage, same health — at 1
    // and 4 threads, on a lossless run.
    let wire_config = config(MacAlgorithm::HmacSha256);
    assert!(wire_config.wire, "wire delivery is the default");
    let mut struct_config = wire_config.clone();
    struct_config.wire = false;

    for threads in [1usize, 4] {
        let wire = fleet::run_threaded(&wire_config, threads);
        let legacy = fleet::run_threaded(&struct_config, threads);
        let label = format!("threads={threads}");

        assert_eq!(
            wire.measurements_total, legacy.measurements_total,
            "{label}"
        );
        assert_eq!(
            wire.verifications_total, legacy.verifications_total,
            "{label}"
        );
        assert_eq!(
            wire.collections_delivered, legacy.collections_delivered,
            "{label}"
        );
        assert_eq!(
            wire.collections_ingested, legacy.collections_ingested,
            "{label}"
        );
        assert_eq!(wire.devices_tracked, legacy.devices_tracked, "{label}");
        assert_eq!(wire.history_entries, legacy.history_entries, "{label}");
        assert_eq!(wire.hub_batches, legacy.hub_batches, "{label}");
        assert_eq!(wire.largest_batch, legacy.largest_batch, "{label}");
        assert_eq!(wire.simulated_busy, legacy.simulated_busy, "{label}");
        assert_eq!(wire.all_healthy, legacy.all_healthy, "{label}");
        assert!(wire.all_healthy, "{label}");

        // The wire run actually used the wire: 100% of collection traffic
        // travelled as encoded frames and decoded losslessly.
        assert!(wire.wire_frames > 0, "{label}: no frame was encoded");
        assert!(wire.wire_bytes > 0, "{label}");
        assert_eq!(
            wire.wire_responses, wire.collections_delivered,
            "{label}: every delivered collection crossed the wire"
        );
        assert_eq!(
            wire.decoded_accepted, wire.collections_ingested,
            "{label}: every ingested report came off a decoded frame"
        );
        assert_eq!(wire.decode_rejects, 0, "{label}");

        // The struct run never touched the wire counters.
        assert_eq!(legacy.wire_frames, 0, "{label}");
        assert_eq!(legacy.wire_bytes, 0, "{label}");
        assert_eq!(legacy.decoded_accepted, 0, "{label}");
    }
}

#[test]
fn wire_delivery_stays_invariant_under_loss_churn_and_on_demand() {
    // Same invariant on a hostile timeline: drops, churn and on-demand
    // traffic (which rides the struct path inside a wire run, since OD
    // reports are verified at receive time) must not open any daylight
    // between the two delivery modes, at any thread count.
    let mut wire_config = config(MacAlgorithm::HmacSha256);
    wire_config.rounds = 3;
    wire_config.churn = 0.2;
    wire_config.on_demand = 24;
    wire_config.network = NetworkConfig {
        base_latency: SimDuration::from_millis(10),
        jitter: SimDuration::from_millis(5),
        loss: 0.05,
    };
    wire_config.seed = 11;
    let mut struct_config = wire_config.clone();
    struct_config.wire = false;

    let baseline = fleet::run_threaded(&struct_config, 1);
    for threads in [1usize, 4] {
        let wire = fleet::run_threaded(&wire_config, threads);
        let label = format!("threads={threads}");
        assert_eq!(
            wire.measurements_total, baseline.measurements_total,
            "{label}"
        );
        assert_eq!(
            wire.verifications_total, baseline.verifications_total,
            "{label}"
        );
        assert_eq!(
            wire.collections_delivered, baseline.collections_delivered,
            "{label}"
        );
        assert_eq!(
            wire.collections_dropped, baseline.collections_dropped,
            "{label}"
        );
        assert_eq!(
            wire.collections_ingested, baseline.collections_ingested,
            "{label}"
        );
        assert_eq!(wire.devices_churned, baseline.devices_churned, "{label}");
        assert_eq!(
            wire.on_demand_completed, baseline.on_demand_completed,
            "{label}"
        );
        assert_eq!(wire.on_demand_p50, baseline.on_demand_p50, "{label}");
        assert_eq!(wire.on_demand_p99, baseline.on_demand_p99, "{label}");
        assert_eq!(wire.history_entries, baseline.history_entries, "{label}");
        assert_eq!(wire.simulated_busy, baseline.simulated_busy, "{label}");
        assert_eq!(wire.all_healthy, baseline.all_healthy, "{label}");

        // Conservation on the wire axis: collections ride frames, on-demand
        // reports ride the struct path, nothing is double-counted.
        assert_eq!(wire.wire_responses, wire.collections_delivered, "{label}");
        assert_eq!(
            wire.decoded_accepted + wire.on_demand_completed,
            wire.collections_ingested,
            "{label}"
        );
        assert_eq!(wire.decode_rejects, 0, "{label}");
        assert!(
            wire.collections_dropped > 0,
            "{label}: loss dropped nothing"
        );
    }
}

#[test]
fn hub_tracks_every_device_exactly_once_at_fleet_scale() {
    let config = config(MacAlgorithm::KeyedBlake2s);
    let report = fleet::run_threaded(&config, 4);
    // Per-device isolation: 96 devices × 3 measurements × 2 rounds, no
    // entry leaked into a neighbour's history and none double-counted.
    assert_eq!(report.devices_tracked, config.provers);
    assert_eq!(report.history_entries, config.total_measurements());
    assert_eq!(
        report.collections_ingested,
        (config.provers * config.rounds) as u64
    );
}

#[test]
fn more_stagger_groups_than_provers_is_well_defined_at_scale() {
    let mut config = FleetConfig::new(5, 2, 2, 256, 64, MacAlgorithm::HmacSha256);
    config.seed = 3;
    let single = fleet::run_threaded(&config, 1);
    let threaded = fleet::run_threaded(&config, 4);
    assert_eq!(single.measurements_total, config.total_measurements());
    assert_eq!(single.measurements_total, threaded.measurements_total);
    assert_eq!(single.verifications_total, threaded.verifications_total);
    assert!(single.all_healthy && threaded.all_healthy);
}

#[test]
fn scaling_sweep_is_work_preserving() {
    let config = config(MacAlgorithm::HmacSha256);
    // sweep() itself asserts identical totals at every thread count.
    let points = scaling::sweep(&config, 4);
    assert_eq!(points.len(), 3); // 1, 2, 4
    assert!((points[0].speedup - 1.0).abs() < 1e-12);
    for point in &points {
        assert!(point.measurements_per_sec > 0.0, "rates must stay positive");
        assert!(point.verifications_per_sec > 0.0);
    }
}

#[test]
fn scaling_sweep_is_work_preserving_under_loss() {
    // The sweep's totals assertion must hold for lossy runs too: delivery
    // fates are drawn per (device, sequence), never per shard.
    let points = scaling::sweep(&lossy_config(), 4);
    assert_eq!(points.len(), 3);
    for point in &points {
        assert!(point.measurements_per_sec > 0.0);
        assert!(point.verifications_per_sec > 0.0);
    }
}
