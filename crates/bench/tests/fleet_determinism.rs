//! The sharded fleet engine must be a pure partition of the work: thread
//! count changes wall-clock, never the simulated protocol. These tests pin
//! the determinism contract the `BENCH_fleet.json` scaling sweep relies on.

use erasmus_bench::fleet::{self, scaling, FleetConfig};
use erasmus_crypto::MacAlgorithm;

fn config(algorithm: MacAlgorithm) -> FleetConfig {
    FleetConfig {
        provers: 96,
        measurements_per_round: 3,
        rounds: 2,
        memory_bytes: 512,
        stagger_groups: 4,
        algorithm,
    }
}

#[test]
fn threaded_and_single_threaded_runs_are_identical() {
    let config = config(MacAlgorithm::HmacSha256);
    let single = fleet::run_threaded(&config, 1);
    let threaded = fleet::run_threaded(&config, 4);

    assert_eq!(single.threads, 1);
    assert_eq!(threaded.threads, 4);
    assert_eq!(single.measurements_total, threaded.measurements_total);
    assert_eq!(single.verifications_total, threaded.verifications_total);
    assert_eq!(single.all_healthy, threaded.all_healthy);
    assert!(single.all_healthy);

    // The same invariants hold on the simulated-cost and history axes: the
    // partition must not change what any device did or what the verifier
    // side learned.
    assert_eq!(single.simulated_busy, threaded.simulated_busy);
    assert_eq!(single.devices_tracked, threaded.devices_tracked);
    assert_eq!(single.history_entries, threaded.history_entries);
    assert_eq!(single.collections_ingested, threaded.collections_ingested);

    assert_eq!(single.measurements_total, config.total_measurements());
    assert_eq!(threaded.shards.len(), 4);
    let shard_sum: u64 = threaded.shards.iter().map(|s| s.measurements).sum();
    assert_eq!(shard_sum, threaded.measurements_total);
}

#[test]
fn determinism_holds_for_every_algorithm() {
    for alg in MacAlgorithm::ALL {
        let config = config(alg);
        let single = fleet::run_threaded(&config, 1);
        let threaded = fleet::run_threaded(&config, 3);
        assert_eq!(
            single.measurements_total, threaded.measurements_total,
            "{alg}"
        );
        assert_eq!(
            single.verifications_total, threaded.verifications_total,
            "{alg}"
        );
        assert_eq!(single.all_healthy, threaded.all_healthy, "{alg}");
    }
}

#[test]
fn hub_tracks_every_device_exactly_once_at_fleet_scale() {
    let config = config(MacAlgorithm::KeyedBlake2s);
    let report = fleet::run_threaded(&config, 4);
    // Per-device isolation: 96 devices × 3 measurements × 2 rounds, no
    // entry leaked into a neighbour's history and none double-counted.
    assert_eq!(report.devices_tracked, config.provers);
    assert_eq!(report.history_entries, config.total_measurements());
    assert_eq!(
        report.collections_ingested,
        (config.provers * config.rounds) as u64
    );
}

#[test]
fn scaling_sweep_is_work_preserving() {
    let config = config(MacAlgorithm::HmacSha256);
    // sweep() itself asserts identical totals at every thread count.
    let points = scaling::sweep(&config, 4);
    assert_eq!(points.len(), 3); // 1, 2, 4
    assert!((points[0].speedup - 1.0).abs() < 1e-12);
    for point in &points {
        assert!(point.measurements_per_sec > 0.0, "rates must stay positive");
        assert!(point.verifications_per_sec > 0.0);
    }
}
