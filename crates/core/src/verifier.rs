//! The verifier: collects measurements and reconstructs the prover's state
//! history.

use erasmus_crypto::{KeyedMac, MacAlgorithm, MacTag};
use erasmus_hw::DeviceKey;
use erasmus_sim::{SimDuration, SimTime};

use crate::encoding::{MeasurementView, ResponseView};
use crate::error::Error;
use crate::ids::DeviceId;
use crate::measurement::{Measurement, MemoryDigest};
use crate::protocol::{CollectionRequest, CollectionResponse, OnDemandRequest, OnDemandResponse};
use crate::report::{
    AttestationVerdict, CollectionReport, MeasurementVerdict, VerifiedMeasurement,
};

/// One piece of collection evidence, independent of whether it is owned
/// (struct path) or borrowed straight out of a wire frame (view path).
///
/// Both `Verifier` entry points funnel into one generic verification loop
/// over this trait, so the struct and frame paths are bit-identical by
/// construction — the property the wire-vs-struct determinism tests pin.
trait Evidence {
    fn timestamp(&self) -> SimTime;
    fn digest(&self) -> &MemoryDigest;
    fn tag(&self) -> MacTag;
    fn materialize(&self) -> Measurement;
}

impl Evidence for &Measurement {
    fn timestamp(&self) -> SimTime {
        Measurement::timestamp(self)
    }

    fn digest(&self) -> &MemoryDigest {
        Measurement::digest(self)
    }

    fn tag(&self) -> MacTag {
        *Measurement::tag(self)
    }

    fn materialize(&self) -> Measurement {
        (*self).clone()
    }
}

impl Evidence for MeasurementView<'_> {
    fn timestamp(&self) -> SimTime {
        MeasurementView::timestamp(self)
    }

    fn digest(&self) -> &MemoryDigest {
        MeasurementView::digest(self)
    }

    fn tag(&self) -> MacTag {
        MacTag::new(MeasurementView::tag(self))
    }

    fn materialize(&self) -> Measurement {
        self.to_measurement()
    }
}

/// The (possibly untrusted-network-facing, but key-holding) verifier.
///
/// The verifier shares `K` with the prover, knows the MAC algorithm the
/// prover was provisioned with, and optionally knows:
///
/// * the **reference digest** of the prover's healthy software image — needed
///   to tell "authentic measurement of compromised software" from "authentic
///   measurement of healthy software";
/// * the **expected measurement interval** `T_M` — needed to notice that
///   measurements are *missing* (deleted by malware or lost to buffer
///   overwrites).
///
/// # Example
///
/// ```
/// use erasmus_core::{DeviceId, Prover, ProverConfig, Verifier, CollectionRequest};
/// use erasmus_crypto::MacAlgorithm;
/// use erasmus_hw::{DeviceKey, DeviceProfile};
/// use erasmus_sim::{SimDuration, SimTime};
///
/// # fn main() -> Result<(), erasmus_core::Error> {
/// let key = DeviceKey::from_bytes([2; 32]);
/// let config = ProverConfig::builder()
///     .measurement_interval(SimDuration::from_secs(10))
///     .buffer_slots(8)
///     .build()?;
/// let mut prover = Prover::new(DeviceId::new(1), DeviceProfile::msp430_8mhz(1024), key.clone(), config)?;
/// let mut verifier = Verifier::new(key, MacAlgorithm::HmacSha256);
///
/// prover.run_until(SimTime::from_secs(40))?;
/// let response = prover.handle_collection(&CollectionRequest::latest(4), SimTime::from_secs(40));
/// let report = verifier.verify_collection(&response, SimTime::from_secs(40))?;
/// assert!(report.all_valid());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Verifier {
    alg: MacAlgorithm,
    /// Precomputed key schedule shared by every measurement check: one
    /// keyed state is derived per device and reused across whole collection
    /// responses instead of re-keying per measurement. The raw key is
    /// dropped at construction; only the schedule is retained.
    keyed: KeyedMac,
    reference_digest: Option<MemoryDigest>,
    expected_interval: Option<SimDuration>,
    last_collection: Option<SimTime>,
    last_request_issued: SimTime,
}

impl Verifier {
    /// Creates a verifier holding the shared key and MAC algorithm.
    pub fn new(key: DeviceKey, alg: MacAlgorithm) -> Self {
        let keyed = alg.with_key(key.as_bytes());
        Self {
            alg,
            keyed,
            reference_digest: None,
            expected_interval: None,
            last_collection: None,
            last_request_issued: SimTime::ZERO,
        }
    }

    /// The MAC algorithm this verifier checks against.
    pub fn mac_algorithm(&self) -> MacAlgorithm {
        self.alg
    }

    /// Registers the digest of the prover's known-good software image.
    /// Measurements whose digest differs will be flagged
    /// [`MeasurementVerdict::Compromised`].
    pub fn set_reference_digest(&mut self, digest: MemoryDigest) {
        self.reference_digest = Some(digest);
    }

    /// Convenience: computes and registers the reference digest from a copy
    /// of the healthy memory image.
    pub fn learn_reference_image(&mut self, image: &[u8]) {
        use erasmus_crypto::{Digest, Sha256};
        self.reference_digest = Some(Sha256::digest(image));
    }

    /// Registers the prover's measurement interval `T_M`, enabling
    /// missing-measurement (gap) detection.
    pub fn set_expected_interval(&mut self, interval: SimDuration) {
        self.expected_interval = Some(interval);
    }

    /// Timestamp of the last successful collection, if any.
    pub fn last_collection(&self) -> Option<SimTime> {
        self.last_collection
    }

    /// Builds a plain ERASMUS collection request for the latest `k`
    /// measurements. Unauthenticated by design (Section 3).
    pub fn make_collection_request(&self, k: usize) -> CollectionRequest {
        CollectionRequest::latest(k)
    }

    /// Builds an authenticated on-demand / ERASMUS+OD request at time `now`.
    ///
    /// Timestamps are forced to be strictly increasing so the prover's
    /// anti-replay check never rejects a legitimate request.
    pub fn make_on_demand_request(&mut self, k: usize, now: SimTime) -> OnDemandRequest {
        let treq = if now > self.last_request_issued {
            now
        } else {
            self.last_request_issued + SimDuration::from_nanos(1)
        };
        self.last_request_issued = treq;
        OnDemandRequest::new_keyed(&self.keyed, treq, k)
    }

    /// MAC and reference-digest verdict for one piece of evidence. The MAC
    /// input is rebuilt on the stack, so borrowed frame slices verify
    /// without materializing a [`Measurement`].
    fn verdict_for_parts(
        &self,
        timestamp: SimTime,
        digest: &MemoryDigest,
        tag: &MacTag,
    ) -> MeasurementVerdict {
        if !self
            .keyed
            .verify(&Measurement::mac_input(timestamp, digest), tag)
        {
            return MeasurementVerdict::Forged;
        }
        match &self.reference_digest {
            Some(reference) if digest != reference => MeasurementVerdict::Compromised,
            _ => MeasurementVerdict::Healthy,
        }
    }

    /// Number of measurements expected since the previous collection, based
    /// on the configured `T_M` (zero when unknown).
    fn expected_since_last_collection(&self, now: SimTime) -> usize {
        match (self.expected_interval, self.last_collection) {
            (Some(interval), Some(last)) => {
                (now.saturating_duration_since(last).as_nanos() / interval.as_nanos()) as usize
            }
            _ => 0,
        }
    }

    /// Verifies an ERASMUS collection response (Figure 2, verifier side).
    ///
    /// Each measurement's MAC is checked in constant time; timestamps are
    /// checked for plausibility (not in the future, strictly decreasing in
    /// the newest-first response); and, if `T_M` is known, the number of
    /// measurements covering the interval since the previous collection is
    /// compared against the expected count.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoMeasurements`] if the response is empty — an empty
    /// response from a prover that should have a history is itself suspicious
    /// and is treated as missing evidence by callers.
    pub fn verify_collection(
        &mut self,
        response: &CollectionResponse,
        now: SimTime,
    ) -> Result<CollectionReport, Error> {
        self.verify_evidence(response.device, response.measurements.iter(), now)
    }

    /// Verifies one response record straight off a validated wire frame —
    /// the zero-copy half of [`crate::VerifierHub::ingest_frame`].
    ///
    /// MACs are checked against the borrowed digest and tag slices; owned
    /// measurements are materialized only for the report. The result is
    /// bit-identical to [`Verifier::verify_collection`] over the decoded
    /// equivalent: both entry points share one verification loop.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoMeasurements`] if the record carries no
    /// measurements, exactly like the struct path.
    pub fn verify_frame_response(
        &mut self,
        response: &ResponseView<'_>,
        now: SimTime,
    ) -> Result<CollectionReport, Error> {
        self.verify_evidence(response.device(), response.measurements(), now)
    }

    /// The shared verification loop behind [`Verifier::verify_collection`]
    /// and [`Verifier::verify_frame_response`].
    fn verify_evidence<E: Evidence>(
        &mut self,
        device: DeviceId,
        items: impl Iterator<Item = E>,
        now: SimTime,
    ) -> Result<CollectionReport, Error> {
        let mut verified: Vec<VerifiedMeasurement> = Vec::with_capacity(items.size_hint().0);
        let mut any_forged = false;
        let mut any_compromised = false;
        let mut out_of_order = false;
        let mut previous: Option<SimTime> = None;
        let mut newest: Option<SimTime> = None;

        for item in items {
            let timestamp = item.timestamp();
            let mut verdict = self.verdict_for_parts(timestamp, item.digest(), &item.tag());
            // Timestamps must not lie in the verifier's future; a "future"
            // measurement can only come from a tampered store or clock.
            if timestamp > now {
                verdict = MeasurementVerdict::Forged;
            }
            if let Some(prev) = previous {
                if timestamp >= prev {
                    out_of_order = true;
                }
            }
            previous = Some(timestamp);
            newest = Some(newest.map_or(timestamp, |n| n.max(timestamp)));
            match verdict {
                MeasurementVerdict::Forged => any_forged = true,
                MeasurementVerdict::Compromised => any_compromised = true,
                MeasurementVerdict::Healthy => {}
            }
            verified.push(VerifiedMeasurement {
                measurement: item.materialize(),
                verdict,
            });
        }

        if verified.is_empty() {
            return Err(Error::NoMeasurements);
        }

        // Coverage check: did we receive as many measurements as the schedule
        // should have produced since the last collection?
        let expected = self.expected_since_last_collection(now);
        let usable = verified
            .iter()
            .filter(|vm| vm.verdict != MeasurementVerdict::Forged)
            .filter(|vm| match self.last_collection {
                Some(last) => vm.measurement.timestamp() > last,
                None => true,
            })
            .count();
        let missing = expected.saturating_sub(usable);

        let verdict = if any_forged || out_of_order || missing > 0 {
            AttestationVerdict::TamperingDetected
        } else if any_compromised {
            AttestationVerdict::CompromiseDetected
        } else {
            AttestationVerdict::AllHealthy
        };

        let freshness = newest
            .map(|t| now.saturating_duration_since(t))
            .unwrap_or(SimDuration::ZERO);

        self.last_collection = Some(now);
        Ok(CollectionReport::new(
            device, verified, verdict, missing, freshness, now,
        ))
    }

    /// Verifies an ERASMUS+OD response (Figure 4, verifier side): the fresh
    /// measurement `M_0` is checked first, then the history is verified like
    /// a normal collection.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidResponse`] if the fresh measurement fails MAC
    /// verification or does not match the request timing.
    pub fn verify_on_demand(
        &mut self,
        request: &OnDemandRequest,
        response: &OnDemandResponse,
        now: SimTime,
    ) -> Result<CollectionReport, Error> {
        if !response.fresh.verify_keyed(&self.keyed) {
            return Err(Error::InvalidResponse {
                reason: "fresh measurement failed MAC verification".to_owned(),
            });
        }
        if response.fresh.timestamp() < request.treq {
            return Err(Error::InvalidResponse {
                reason: "fresh measurement predates the request".to_owned(),
            });
        }

        // Verify the history exactly like a plain collection, then fold the
        // fresh measurement into the report.
        let mut measurements = vec![response.fresh.clone()];
        measurements.extend(response.history.iter().cloned());
        let as_collection = CollectionResponse {
            device: response.device,
            measurements,
            prover_time: response.prover_time,
        };
        self.verify_collection(&as_collection, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProverConfig;
    use crate::ids::DeviceId;
    use crate::prover::Prover;
    use erasmus_hw::DeviceProfile;

    const KEY_BYTES: [u8; 32] = [0x77u8; 32];

    fn setup() -> (Prover, Verifier) {
        let key = DeviceKey::from_bytes(KEY_BYTES);
        let config = ProverConfig::builder()
            .measurement_interval(SimDuration::from_secs(10))
            .buffer_slots(16)
            .build()
            .expect("valid config");
        let prover = Prover::new(
            DeviceId::new(1),
            DeviceProfile::msp430_8mhz(1024),
            key.clone(),
            config,
        )
        .expect("provisioning");
        let mut verifier = Verifier::new(key, MacAlgorithm::HmacSha256);
        verifier.set_expected_interval(SimDuration::from_secs(10));
        (prover, verifier)
    }

    #[test]
    fn healthy_history_verifies() {
        let (mut prover, mut verifier) = setup();
        verifier.learn_reference_image(prover.mcu().app_memory());
        prover
            .run_until(SimTime::from_secs(60))
            .expect("measurements");
        let response =
            prover.handle_collection(&CollectionRequest::latest(6), SimTime::from_secs(60));
        let report = verifier
            .verify_collection(&response, SimTime::from_secs(60))
            .expect("report");
        assert!(report.all_valid());
        assert_eq!(report.verdict(), AttestationVerdict::AllHealthy);
        assert_eq!(report.measurements().len(), 6);
        assert_eq!(report.missing(), 0);
        // The newest measurement was taken at t = 60, collected at t = 60.
        assert_eq!(report.freshness(), SimDuration::ZERO);
        assert_eq!(verifier.last_collection(), Some(SimTime::from_secs(60)));
    }

    #[test]
    fn compromised_memory_is_detected() {
        let (mut prover, mut verifier) = setup();
        verifier.learn_reference_image(prover.mcu().app_memory());
        prover
            .run_until(SimTime::from_secs(20))
            .expect("measurements");
        prover
            .mcu_mut()
            .write_app_memory(0, b"persistent malware")
            .expect("infection");
        prover
            .run_until(SimTime::from_secs(40))
            .expect("measurements");
        let response =
            prover.handle_collection(&CollectionRequest::latest(4), SimTime::from_secs(40));
        let report = verifier
            .verify_collection(&response, SimTime::from_secs(40))
            .expect("report");
        assert_eq!(report.verdict(), AttestationVerdict::CompromiseDetected);
        assert_eq!(
            report.with_verdict(MeasurementVerdict::Compromised).count(),
            2
        );
        assert_eq!(report.with_verdict(MeasurementVerdict::Healthy).count(), 2);
    }

    #[test]
    fn forged_measurement_is_detected() {
        let (mut prover, mut verifier) = setup();
        prover
            .run_until(SimTime::from_secs(40))
            .expect("measurements");
        // Malware replaces a stored measurement with garbage.
        let forged = Measurement::from_parts(
            SimTime::from_secs(30),
            [0u8; 32],
            erasmus_crypto::MacTag::new(vec![0u8; 32]),
        );
        let slot = prover.buffer().slot_for(SimTime::from_secs(30));
        prover.buffer_mut().tamper_replace(slot, forged);
        let response =
            prover.handle_collection(&CollectionRequest::latest(4), SimTime::from_secs(40));
        let report = verifier
            .verify_collection(&response, SimTime::from_secs(40))
            .expect("report");
        assert_eq!(report.verdict(), AttestationVerdict::TamperingDetected);
        assert_eq!(report.with_verdict(MeasurementVerdict::Forged).count(), 1);
    }

    #[test]
    fn deleted_measurements_show_up_as_missing() {
        let (mut prover, mut verifier) = setup();
        verifier.learn_reference_image(prover.mcu().app_memory());
        // First collection establishes a baseline.
        prover
            .run_until(SimTime::from_secs(20))
            .expect("measurements");
        let response =
            prover.handle_collection(&CollectionRequest::latest(16), SimTime::from_secs(20));
        verifier
            .verify_collection(&response, SimTime::from_secs(20))
            .expect("baseline");

        // Malware deletes everything recorded afterwards.
        prover
            .run_until(SimTime::from_secs(60))
            .expect("measurements");
        prover.buffer_mut().tamper_clear();
        let response =
            prover.handle_collection(&CollectionRequest::latest(16), SimTime::from_secs(60));
        match verifier.verify_collection(&response, SimTime::from_secs(60)) {
            // Either the buffer is completely empty (NoMeasurements)…
            Err(Error::NoMeasurements) => {}
            // …or the report flags the gap.
            Ok(report) => assert_eq!(report.verdict(), AttestationVerdict::TamperingDetected),
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn partial_deletion_is_detected_as_gap() {
        let (mut prover, mut verifier) = setup();
        verifier.learn_reference_image(prover.mcu().app_memory());
        prover
            .run_until(SimTime::from_secs(20))
            .expect("measurements");
        let response =
            prover.handle_collection(&CollectionRequest::latest(16), SimTime::from_secs(20));
        verifier
            .verify_collection(&response, SimTime::from_secs(20))
            .expect("baseline");

        prover
            .run_until(SimTime::from_secs(60))
            .expect("measurements");
        // Delete two of the four new measurements (t = 30 and t = 40).
        for secs in [30u64, 40] {
            let slot = prover.buffer().slot_for(SimTime::from_secs(secs));
            assert!(prover.buffer_mut().tamper_delete(slot));
        }
        let response =
            prover.handle_collection(&CollectionRequest::latest(16), SimTime::from_secs(60));
        let report = verifier
            .verify_collection(&response, SimTime::from_secs(60))
            .expect("report");
        assert_eq!(report.verdict(), AttestationVerdict::TamperingDetected);
        assert_eq!(report.missing(), 2);
    }

    #[test]
    fn empty_response_is_an_error() {
        let (_, mut verifier) = setup();
        let response = CollectionResponse {
            device: DeviceId::new(1),
            measurements: Vec::new(),
            prover_time: SimDuration::ZERO,
        };
        assert!(matches!(
            verifier.verify_collection(&response, SimTime::from_secs(10)),
            Err(Error::NoMeasurements)
        ));
    }

    #[test]
    fn future_timestamps_are_flagged() {
        let (mut prover, mut verifier) = setup();
        prover
            .run_until(SimTime::from_secs(20))
            .expect("measurements");
        let response =
            prover.handle_collection(&CollectionRequest::latest(2), SimTime::from_secs(20));
        // Verify "in the past": the measurements' timestamps are now in the future.
        let report = verifier
            .verify_collection(&response, SimTime::from_secs(5))
            .expect("report");
        assert_eq!(report.verdict(), AttestationVerdict::TamperingDetected);
    }

    #[test]
    fn on_demand_roundtrip_and_freshness() {
        let (mut prover, mut verifier) = setup();
        verifier.learn_reference_image(prover.mcu().app_memory());
        prover
            .run_until(SimTime::from_secs(35))
            .expect("measurements");
        let request = verifier.make_on_demand_request(2, SimTime::from_secs(36));
        let response = prover
            .handle_on_demand(&request, SimTime::from_secs(36))
            .expect("response");
        let report = verifier
            .verify_on_demand(&request, &response, SimTime::from_secs(36))
            .expect("report");
        assert!(report.all_valid());
        // Maximal freshness: the fresh measurement was taken at collection time.
        assert_eq!(report.freshness(), SimDuration::ZERO);
        assert_eq!(report.measurements().len(), 3);
    }

    #[test]
    fn on_demand_response_with_forged_fresh_measurement_rejected() {
        let (mut prover, mut verifier) = setup();
        prover
            .run_until(SimTime::from_secs(35))
            .expect("measurements");
        let request = verifier.make_on_demand_request(1, SimTime::from_secs(36));
        let mut response = prover
            .handle_on_demand(&request, SimTime::from_secs(36))
            .expect("response");
        response.fresh = Measurement::from_parts(
            response.fresh.timestamp(),
            [0u8; 32],
            erasmus_crypto::MacTag::new(vec![0u8; 32]),
        );
        assert!(matches!(
            verifier.verify_on_demand(&request, &response, SimTime::from_secs(36)),
            Err(Error::InvalidResponse { .. })
        ));
    }

    #[test]
    fn frame_path_matches_struct_path() {
        use crate::encoding::{encode_collection_batch, FrameView};

        let (mut prover, mut struct_verifier) = setup();
        struct_verifier.learn_reference_image(prover.mcu().app_memory());
        let mut frame_verifier = struct_verifier.clone();
        prover
            .run_until(SimTime::from_secs(60))
            .expect("measurements");
        let response =
            prover.handle_collection(&CollectionRequest::latest(6), SimTime::from_secs(60));

        let bytes = encode_collection_batch(std::slice::from_ref(&response));
        let frame = FrameView::parse(&bytes).expect("valid frame");
        let view = frame.responses().next().expect("one response");

        let struct_report = struct_verifier
            .verify_collection(&response, SimTime::from_secs(60))
            .expect("struct path verifies");
        let frame_report = frame_verifier
            .verify_frame_response(&view, SimTime::from_secs(60))
            .expect("frame path verifies");
        assert_eq!(struct_report, frame_report);
        assert_eq!(
            struct_verifier.last_collection(),
            frame_verifier.last_collection()
        );
    }

    #[test]
    fn empty_frame_response_is_an_error() {
        use crate::encoding::{encode_collection_batch, FrameView};

        let (_, mut verifier) = setup();
        let response = CollectionResponse {
            device: DeviceId::new(1),
            measurements: Vec::new(),
            prover_time: SimDuration::ZERO,
        };
        let bytes = encode_collection_batch(std::slice::from_ref(&response));
        let frame = FrameView::parse(&bytes).expect("valid frame");
        let view = frame.responses().next().expect("one response");
        assert!(matches!(
            verifier.verify_frame_response(&view, SimTime::from_secs(10)),
            Err(Error::NoMeasurements)
        ));
    }

    #[test]
    fn request_timestamps_are_strictly_increasing() {
        let (_, mut verifier) = setup();
        let first = verifier.make_on_demand_request(1, SimTime::from_secs(10));
        let second = verifier.make_on_demand_request(1, SimTime::from_secs(10));
        assert!(second.treq > first.treq);
    }
}
