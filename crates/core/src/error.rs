//! Error type of the ERASMUS core library.

use std::fmt;

use erasmus_hw::HwError;

/// Errors returned by provers, verifiers and protocol engines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value was invalid (e.g. a zero measurement interval).
    InvalidConfig {
        /// Which parameter was rejected.
        parameter: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The simulated hardware refused an operation.
    Hardware(HwError),
    /// An authenticated verifier request failed authentication or freshness
    /// checking (on-demand / ERASMUS+OD only).
    RequestRejected {
        /// Why the prover rejected the request.
        reason: String,
    },
    /// A collection response could not be verified at all (malformed or
    /// empty when measurements were expected).
    InvalidResponse {
        /// What was wrong.
        reason: String,
    },
    /// The prover has not produced any measurement yet.
    NoMeasurements,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration for `{parameter}`: {reason}")
            }
            Error::Hardware(err) => write!(f, "hardware error: {err}"),
            Error::RequestRejected { reason } => write!(f, "request rejected: {reason}"),
            Error::InvalidResponse { reason } => write!(f, "invalid response: {reason}"),
            Error::NoMeasurements => write!(f, "prover has no recorded measurements"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Hardware(err) => Some(err),
            _ => None,
        }
    }
}

impl From<HwError> for Error {
    fn from(err: HwError) -> Self {
        Error::Hardware(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = Error::InvalidConfig {
            parameter: "buffer_slots",
            reason: "must be non-zero".into(),
        };
        assert!(err.to_string().contains("buffer_slots"));
        assert!(Error::NoMeasurements.to_string().contains("no recorded"));
        assert!(Error::RequestRejected {
            reason: "stale".into()
        }
        .to_string()
        .contains("stale"));
        assert!(Error::InvalidResponse {
            reason: "empty".into()
        }
        .to_string()
        .contains("empty"));
    }

    #[test]
    fn hardware_errors_convert_and_chain() {
        let hw = HwError::SecureBootFailure {
            reason: "digest mismatch".into(),
        };
        let err: Error = hw.clone().into();
        assert_eq!(err, Error::Hardware(hw));
        assert!(std::error::Error::source(&err).is_some());
        assert!(std::error::Error::source(&Error::NoMeasurements).is_none());
    }
}
