//! Self-measurements: `M_t = < t, H(mem_t), MAC_K(t, H(mem_t)) >`.

use std::fmt;

use erasmus_crypto::{
    Digest, KeyedMac, MacAlgorithm, MacTag, MultiDigest, MultiKeyedMac, Sha256, Sha256xN,
};
use erasmus_sim::SimTime;

/// Byte length of the memory digest `H(mem_t)` (always SHA-256).
pub const DIGEST_LEN: usize = 32;

/// The memory digest `H(mem_t)`, on the stack.
pub type MemoryDigest = [u8; DIGEST_LEN];

/// Byte length of the canonical MAC input `(t, H(mem_t))`.
pub const MAC_INPUT_LEN: usize = 8 + DIGEST_LEN;

/// One self-measurement, exactly as defined in Section 3 of the paper.
///
/// A measurement binds a timestamp `t` (read from the RROC) to the digest of
/// the prover's memory at that time, authenticated under the device key `K`.
/// Measurements are stored in *insecure* memory: malware can delete or
/// mangle them, but — lacking `K` — it cannot forge a valid one, so any
/// tampering is detected at the next collection.
///
/// Computing and verifying a measurement is the system's hot path: both are
/// allocation-free, and the keyed variants ([`Measurement::compute_keyed`],
/// [`Measurement::verify_keyed`]) reuse a once-per-device [`KeyedMac`]
/// schedule instead of re-deriving the HMAC key schedule per measurement.
///
/// # Example
///
/// ```
/// use erasmus_core::Measurement;
/// use erasmus_crypto::MacAlgorithm;
/// use erasmus_sim::SimTime;
///
/// let key = [0x42u8; 32];
/// let memory = vec![0u8; 1024];
/// let m = Measurement::compute(&key, MacAlgorithm::HmacSha256, SimTime::from_secs(60), &memory);
/// assert!(m.verify(&key, MacAlgorithm::HmacSha256));
/// assert_eq!(m.timestamp(), SimTime::from_secs(60));
///
/// // The precomputed path produces byte-identical measurements.
/// let keyed = MacAlgorithm::HmacSha256.with_key(&key);
/// let m2 = Measurement::compute_keyed(&keyed, SimTime::from_secs(60), &memory);
/// assert_eq!(m, m2);
/// assert!(m2.verify_keyed(&keyed));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Measurement {
    timestamp: SimTime,
    digest: MemoryDigest,
    tag: MacTag,
}

impl Measurement {
    /// Computes a measurement over `memory` at time `timestamp`, deriving
    /// the MAC key schedule from scratch.
    ///
    /// `H(mem_t)` is always SHA-256 (the digest half of the construction is
    /// not varied in the paper's evaluation); the MAC over `(t, H(mem_t))`
    /// uses the configured [`MacAlgorithm`]. Prefer
    /// [`Measurement::compute_keyed`] when measuring repeatedly under the
    /// same key.
    pub fn compute(key: &[u8], alg: MacAlgorithm, timestamp: SimTime, memory: &[u8]) -> Self {
        let digest = Sha256::digest(memory);
        Self::from_digest(key, alg, timestamp, digest)
    }

    /// Computes a measurement over `memory` using a precomputed key
    /// schedule — the per-device hot path.
    pub fn compute_keyed(keyed: &KeyedMac, timestamp: SimTime, memory: &[u8]) -> Self {
        let digest = Sha256::digest(memory);
        Self::from_digest_keyed(keyed, timestamp, digest)
    }

    /// Computes `N` measurements over `N` equal-length memory images in
    /// lockstep — the fleet's lane-batched hot path.
    ///
    /// The memory digests ride the lane-interleaved SHA-256 core
    /// ([`Sha256xN`]) and the tags ride the transposed per-device key
    /// schedules ([`MultiKeyedMac`]); every lane's measurement is
    /// bit-identical to [`Measurement::compute_keyed`] under the same key,
    /// timestamp and memory.
    ///
    /// # Panics
    ///
    /// Panics if the memory images are not all the same length (the lanes
    /// share one block counter). Mixed-size fleets must batch per size
    /// class or fall back to the scalar path.
    ///
    /// # Example
    ///
    /// ```
    /// use erasmus_core::Measurement;
    /// use erasmus_crypto::{MacAlgorithm, MultiKeyedMac};
    /// use erasmus_sim::SimTime;
    ///
    /// let keys: Vec<_> = (0u8..4)
    ///     .map(|i| MacAlgorithm::HmacSha256.with_key(&[i; 32]))
    ///     .collect();
    /// let multi = MultiKeyedMac::<4>::new(std::array::from_fn(|i| &keys[i]));
    /// let images: Vec<Vec<u8>> = (0u8..4).map(|i| vec![i; 1024]).collect();
    /// let t = [SimTime::from_secs(60); 4];
    /// let batch =
    ///     Measurement::compute_keyed_batch(&multi, t, std::array::from_fn(|i| &images[i][..]));
    /// for (lane, keyed) in keys.iter().enumerate() {
    ///     let scalar = Measurement::compute_keyed(keyed, t[lane], &images[lane]);
    ///     assert_eq!(batch[lane], scalar);
    /// }
    /// ```
    pub fn compute_keyed_batch<const N: usize>(
        keyed: &MultiKeyedMac<N>,
        timestamps: [SimTime; N],
        memories: [&[u8]; N],
    ) -> [Measurement; N] {
        let digests = Sha256xN::<N>::digest(memories);
        let inputs: [[u8; MAC_INPUT_LEN]; N] =
            std::array::from_fn(|lane| Self::mac_input(timestamps[lane], &digests[lane]));
        let tags = keyed.mac(std::array::from_fn(|lane| &inputs[lane][..]));
        std::array::from_fn(|lane| Self {
            timestamp: timestamps[lane],
            digest: digests[lane],
            tag: tags[lane],
        })
    }

    /// Computes a measurement from an already-hashed memory digest.
    ///
    /// The prover's trusted code hashes memory inside the security
    /// architecture and then MACs the timestamped digest; splitting the two
    /// steps keeps that structure visible and lets the cost model charge them
    /// separately.
    pub fn from_digest(
        key: &[u8],
        alg: MacAlgorithm,
        timestamp: SimTime,
        digest: MemoryDigest,
    ) -> Self {
        let tag = alg.mac(key, &Self::mac_input(timestamp, &digest));
        Self {
            timestamp,
            digest,
            tag,
        }
    }

    /// Computes a measurement from an already-hashed memory digest using a
    /// precomputed key schedule.
    pub fn from_digest_keyed(keyed: &KeyedMac, timestamp: SimTime, digest: MemoryDigest) -> Self {
        let tag = keyed.mac(&Self::mac_input(timestamp, &digest));
        Self {
            timestamp,
            digest,
            tag,
        }
    }

    /// Reassembles a measurement from its stored parts (e.g. when reading
    /// the rolling buffer back from a wire format). No validation happens
    /// here; call [`Measurement::verify`].
    pub fn from_parts(timestamp: SimTime, digest: MemoryDigest, tag: MacTag) -> Self {
        Self {
            timestamp,
            digest,
            tag,
        }
    }

    /// The canonical MAC input: the big-endian timestamp followed by the
    /// memory digest, built on the stack. Crate-visible so the verifier can
    /// check MACs straight off borrowed wire-frame slices without
    /// materializing a `Measurement` first.
    pub(crate) fn mac_input(timestamp: SimTime, digest: &MemoryDigest) -> [u8; MAC_INPUT_LEN] {
        let mut input = [0u8; MAC_INPUT_LEN];
        input[..8].copy_from_slice(&timestamp.as_nanos().to_be_bytes());
        input[8..].copy_from_slice(digest);
        input
    }

    /// Verifies the MAC under `key`, deriving the key schedule from scratch.
    pub fn verify(&self, key: &[u8], alg: MacAlgorithm) -> bool {
        alg.verify(
            key,
            &Self::mac_input(self.timestamp, &self.digest),
            &self.tag,
        )
    }

    /// Verifies the MAC against a precomputed key schedule — the verifier's
    /// hot path when checking a whole collection response.
    pub fn verify_keyed(&self, keyed: &KeyedMac) -> bool {
        keyed.verify(&Self::mac_input(self.timestamp, &self.digest), &self.tag)
    }

    /// The RROC timestamp `t`.
    pub fn timestamp(&self) -> SimTime {
        self.timestamp
    }

    /// The memory digest `H(mem_t)`.
    pub fn digest(&self) -> &MemoryDigest {
        &self.digest
    }

    /// The authentication tag `MAC_K(t, H(mem_t))`.
    pub fn tag(&self) -> &MacTag {
        &self.tag
    }

    /// Size of the measurement on the wire (timestamp + digest + tag), used
    /// by the cost model to price collection packets.
    pub fn wire_size(&self) -> usize {
        8 + self.digest.len() + self.tag.len()
    }

    /// Freshness of this measurement at `now`: how long ago it was taken.
    /// Returns zero if `now` is earlier than the timestamp (clock skew in a
    /// tampered response).
    pub fn age_at(&self, now: SimTime) -> erasmus_sim::SimDuration {
        now.saturating_duration_since(self.timestamp)
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M(t={:.3}s, H=0x", self.timestamp.as_secs_f64())?;
        for byte in self.digest.iter().take(4) {
            write!(f, "{byte:02x}")?;
        }
        f.write_str(".., tag=")?;
        for byte in self.tag.as_bytes().iter().take(4) {
            write!(f, "{byte:02x}")?;
        }
        f.write_str("..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [0xabu8; 32];

    #[test]
    fn compute_and_verify_roundtrip() {
        for alg in MacAlgorithm::ALL {
            let m = Measurement::compute(&KEY, alg, SimTime::from_secs(10), b"memory image");
            assert!(m.verify(&KEY, alg));
            assert!(!m.verify(&[0u8; 32], alg), "wrong key must fail for {alg}");
        }
    }

    #[test]
    fn keyed_path_is_byte_identical_to_oneshot() {
        for alg in MacAlgorithm::ALL {
            let keyed = alg.with_key(&KEY);
            let oneshot = Measurement::compute(&KEY, alg, SimTime::from_secs(10), b"memory image");
            let precomputed =
                Measurement::compute_keyed(&keyed, SimTime::from_secs(10), b"memory image");
            assert_eq!(oneshot, precomputed, "{alg}");
            assert!(oneshot.verify_keyed(&keyed), "{alg}");
            assert!(precomputed.verify(&KEY, alg), "{alg}");
            // A schedule for a different key rejects.
            let wrong = alg.with_key(&[0u8; 32]);
            assert!(!precomputed.verify_keyed(&wrong), "{alg}");
        }
    }

    #[test]
    fn batch_path_is_byte_identical_to_scalar_per_lane() {
        for alg in MacAlgorithm::ALL {
            let keys: Vec<KeyedMac> = (0u8..8).map(|i| alg.with_key(&[i ^ 0xa5; 32])).collect();
            let multi = MultiKeyedMac::<8>::new(std::array::from_fn(|i| &keys[i]));
            let images: Vec<Vec<u8>> = (0u8..8).map(|i| vec![i.wrapping_mul(31); 300]).collect();
            let timestamps: [SimTime; 8] = std::array::from_fn(|i| SimTime::from_secs(i as u64));
            let batch = Measurement::compute_keyed_batch(
                &multi,
                timestamps,
                std::array::from_fn(|i| &images[i][..]),
            );
            for lane in 0..8 {
                let scalar =
                    Measurement::compute_keyed(&keys[lane], timestamps[lane], &images[lane]);
                assert_eq!(batch[lane], scalar, "{alg} lane {lane}");
                assert!(batch[lane].verify_keyed(&keys[lane]), "{alg} lane {lane}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn batch_path_rejects_ragged_memory_images() {
        let keyed = MacAlgorithm::HmacSha256.with_key(&KEY);
        let multi = MultiKeyedMac::<2>::new([&keyed, &keyed]);
        let _ = Measurement::compute_keyed_batch(
            &multi,
            [SimTime::ZERO; 2],
            [&b"short"[..], b"longer-image"],
        );
    }

    #[test]
    fn verification_fails_under_wrong_algorithm() {
        let m = Measurement::compute(&KEY, MacAlgorithm::HmacSha256, SimTime::from_secs(1), b"x");
        assert!(!m.verify(&KEY, MacAlgorithm::KeyedBlake2s));
    }

    #[test]
    fn tampering_with_timestamp_is_detected() {
        let m = Measurement::compute(
            &KEY,
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(50),
            b"mem",
        );
        let forged = Measurement::from_parts(SimTime::from_secs(51), *m.digest(), *m.tag());
        assert!(!forged.verify(&KEY, MacAlgorithm::HmacSha256));
    }

    #[test]
    fn tampering_with_digest_is_detected() {
        let m = Measurement::compute(
            &KEY,
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(50),
            b"mem",
        );
        let mut digest = *m.digest();
        digest[0] ^= 0xff;
        let forged = Measurement::from_parts(m.timestamp(), digest, *m.tag());
        assert!(!forged.verify(&KEY, MacAlgorithm::HmacSha256));
    }

    #[test]
    fn same_memory_different_time_gives_different_tag() {
        let a = Measurement::compute(
            &KEY,
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(1),
            b"mem",
        );
        let b = Measurement::compute(
            &KEY,
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(2),
            b"mem",
        );
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.tag(), b.tag());
    }

    #[test]
    fn from_digest_matches_compute() {
        let digest = Sha256::digest(b"the memory");
        let a = Measurement::from_digest(
            &KEY,
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(9),
            digest,
        );
        let b = Measurement::compute(
            &KEY,
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(9),
            b"the memory",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn wire_size_and_age() {
        let m = Measurement::compute(
            &KEY,
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(10),
            b"mem",
        );
        assert_eq!(m.wire_size(), 8 + 32 + 32);
        assert_eq!(
            m.age_at(SimTime::from_secs(25)),
            erasmus_sim::SimDuration::from_secs(15)
        );
        assert_eq!(
            m.age_at(SimTime::from_secs(5)),
            erasmus_sim::SimDuration::ZERO
        );
    }

    #[test]
    fn display_is_compact() {
        let m = Measurement::compute(
            &KEY,
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(10),
            b"mem",
        );
        let text = m.to_string();
        assert!(text.starts_with("M(t=10.000s"));
        assert!(text.contains("H=0x"));
        assert!(text.ends_with("..)"));
        // Exactly 4 digest bytes and 4 tag bytes rendered.
        let digest_hex: String = m
            .digest()
            .iter()
            .take(4)
            .map(|b| format!("{b:02x}"))
            .collect();
        let tag_hex: String = m
            .tag()
            .as_bytes()
            .iter()
            .take(4)
            .map(|b| format!("{b:02x}"))
            .collect();
        assert_eq!(
            text,
            format!("M(t=10.000s, H=0x{digest_hex}.., tag={tag_hex}..)")
        );
    }
}
