//! Scenario runner: a full ERASMUS deployment on one timeline.
//!
//! A scenario wires together a prover, a verifier, a collection schedule and
//! a set of infections, runs them on the discrete-event engine and reports
//! which infections were detected and how quickly. This is the machinery
//! behind the Figure 1 timeline, the QoA detection-probability experiments
//! and several integration tests.

use erasmus_hw::{DeviceKey, DeviceProfile};
use erasmus_sim::{Engine, SimDuration, SimTime, Trace};

use crate::config::ProverConfig;
use crate::error::Error;
use crate::ids::DeviceId;
use crate::malware::{Malware, MalwareBehavior, TamperStrategy};
use crate::protocol::CollectionRequest;
use crate::prover::Prover;
use crate::report::AttestationVerdict;
use crate::verifier::Verifier;

/// Specification of one infection in a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InfectionSpec {
    /// When the malware enters the prover.
    pub start: SimTime,
    /// How long it stays; `None` means persistent.
    pub dwell: Option<SimDuration>,
    /// What it does to the measurement store when leaving.
    pub tamper: TamperStrategy,
}

impl InfectionSpec {
    /// A mobile infection that enters at `start` and dwells for `dwell`.
    pub fn mobile(start: SimTime, dwell: SimDuration) -> Self {
        Self {
            start,
            dwell: Some(dwell),
            tamper: TamperStrategy::None,
        }
    }

    /// A persistent infection starting at `start`.
    pub fn persistent(start: SimTime) -> Self {
        Self {
            start,
            dwell: None,
            tamper: TamperStrategy::None,
        }
    }

    /// Sets the tampering strategy.
    pub fn with_tamper(mut self, tamper: TamperStrategy) -> Self {
        self.tamper = tamper;
        self
    }
}

/// What happened to one infection by the end of the scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfectionOutcome {
    /// The specification that produced it.
    pub spec: InfectionSpec,
    /// Whether any collection exposed it (via a compromised measurement or
    /// tampering evidence attributable to its residency window).
    pub detected: bool,
    /// When the verifier first learned about it.
    pub detected_at: Option<SimTime>,
}

impl InfectionOutcome {
    /// Time from infection to detection, if detected.
    pub fn detection_latency(&self) -> Option<SimDuration> {
        self.detected_at
            .map(|at| at.saturating_duration_since(self.spec.start))
    }
}

/// Aggregate result of a scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Per-infection results, in specification order.
    pub infections: Vec<InfectionOutcome>,
    /// Number of self-measurements the prover took.
    pub measurements_taken: u64,
    /// Number of collections the verifier performed.
    pub collections: u64,
    /// Number of collections whose verdict indicated compromise or
    /// tampering.
    pub alarms: u64,
    /// Total prover time spent on attestation work.
    pub prover_busy_time: SimDuration,
    /// Timeline of everything that happened.
    pub trace: Trace,
}

impl ScenarioOutcome {
    /// Number of infections that were detected.
    pub fn detected_count(&self) -> usize {
        self.infections.iter().filter(|i| i.detected).count()
    }

    /// Number of infections that escaped detection.
    pub fn undetected_count(&self) -> usize {
        self.infections.len() - self.detected_count()
    }
}

/// Builder/driver for one scenario.
///
/// # Example
///
/// The Figure 1 situation: a mobile infection that comes and goes between
/// measurements stays undetected, while a persistent infection is caught at
/// the next collection.
///
/// ```
/// use erasmus_core::{InfectionSpec, Scenario};
/// use erasmus_sim::{SimDuration, SimTime};
///
/// # fn main() -> Result<(), erasmus_core::Error> {
/// let outcome = Scenario::builder()
///     .measurement_interval(SimDuration::from_secs(10))
///     .collection_interval(SimDuration::from_secs(60))
///     .duration(SimDuration::from_secs(300))
///     .infection(InfectionSpec::mobile(SimTime::from_secs(12), SimDuration::from_secs(3)))
///     .infection(InfectionSpec::persistent(SimTime::from_secs(95)))
///     .run()?;
/// assert!(!outcome.infections[0].detected, "hit-and-run malware escapes");
/// assert!(outcome.infections[1].detected, "persistent malware is caught");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    profile: DeviceProfile,
    config: ProverConfig,
    key: DeviceKey,
    collection_interval: SimDuration,
    history_per_collection: Option<usize>,
    duration: SimDuration,
    infections: Vec<InfectionSpec>,
}

/// Internal event type driving the scenario engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScenarioEvent {
    Measurement,
    Collection,
    InfectionStart(usize),
    InfectionEnd(usize),
}

impl Scenario {
    /// Starts building a scenario with defaults: an MSP430-class prover with
    /// 1 KiB of memory, `T_M` = 10 s, `T_C` = 60 s, a 10-minute run and no
    /// infections.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// Runs the scenario to completion.
    ///
    /// # Errors
    ///
    /// Propagates configuration and hardware errors; a fully default
    /// scenario never fails.
    pub fn run(&self) -> Result<ScenarioOutcome, Error> {
        let mut prover = Prover::new(
            DeviceId::new(1),
            self.profile.clone(),
            self.key.clone(),
            self.config.clone(),
        )?;
        let mut verifier = Verifier::new(self.key.clone(), self.config.mac_algorithm());
        verifier.learn_reference_image(prover.mcu().app_memory());
        verifier.set_expected_interval(self.config.measurement_interval());

        let k = self
            .history_per_collection
            .unwrap_or_else(|| {
                (self.collection_interval.as_nanos() as f64
                    / self.config.measurement_interval().as_nanos() as f64)
                    .ceil() as usize
            })
            .max(1);

        let mut malware: Vec<Malware> = self
            .infections
            .iter()
            .map(|spec| {
                let behavior = match spec.dwell {
                    Some(dwell) => MalwareBehavior::Mobile { dwell },
                    None => MalwareBehavior::Persistent,
                };
                Malware::new(behavior, spec.tamper)
            })
            .collect();
        let mut outcomes: Vec<InfectionOutcome> = self
            .infections
            .iter()
            .map(|spec| InfectionOutcome {
                spec: *spec,
                detected: false,
                detected_at: None,
            })
            .collect();

        let mut trace = Trace::new();
        let mut engine: Engine<ScenarioEvent> = Engine::new();
        let end = SimTime::ZERO + self.duration;

        // Seed the timeline.
        engine.schedule_at(
            SimTime::ZERO + self.config.measurement_interval(),
            ScenarioEvent::Measurement,
        );
        engine.schedule_at(
            SimTime::ZERO + self.collection_interval,
            ScenarioEvent::Collection,
        );
        for (index, spec) in self.infections.iter().enumerate() {
            engine.schedule_at(spec.start, ScenarioEvent::InfectionStart(index));
            if let Some(dwell) = spec.dwell {
                engine.schedule_at(spec.start + dwell, ScenarioEvent::InfectionEnd(index));
            }
        }

        let mut collections = 0u64;
        let mut alarms = 0u64;

        while let Some(event) = engine.next_event_before(end) {
            let now = event.time;
            // Every event first lets the prover catch up on scheduled
            // measurements, recording them in the trace.
            let run_and_trace =
                |prover: &mut Prover, trace: &mut Trace, until: SimTime| -> Result<(), Error> {
                    for outcome in prover.run_until(until)? {
                        trace.record(
                            outcome.measurement.timestamp(),
                            "measurement",
                            format!("slot {} ({})", outcome.slot, outcome.measurement),
                        );
                    }
                    Ok(())
                };
            match event.payload {
                ScenarioEvent::Measurement => {
                    // Let the prover's own scheduler decide the exact instants
                    // (it may be irregular); this event is just the heartbeat.
                    run_and_trace(&mut prover, &mut trace, now)?;
                    let next = prover
                        .next_measurement_due()
                        .max(now + SimDuration::from_nanos(1));
                    if next <= end {
                        engine.schedule_at(next, ScenarioEvent::Measurement);
                    }
                }
                ScenarioEvent::Collection => {
                    run_and_trace(&mut prover, &mut trace, now)?;
                    let request = CollectionRequest::latest(k);
                    let response = prover.handle_collection(&request, now);
                    collections += 1;
                    match verifier.verify_collection(&response, now) {
                        Ok(report) => {
                            trace.record(now, "collection", report.to_string());
                            if report.verdict().indicates_compromise() {
                                alarms += 1;
                                self.attribute_detection(
                                    &report.verdict(),
                                    &report,
                                    &malware,
                                    &mut outcomes,
                                    now,
                                );
                            }
                        }
                        Err(Error::NoMeasurements) => {
                            // An empty history where one was expected is
                            // itself evidence of tampering.
                            trace.record(now, "collection", "no measurements returned".to_owned());
                            alarms += 1;
                            for (index, m) in malware.iter().enumerate() {
                                if m.tamper_strategy() == TamperStrategy::ClearBuffer
                                    && !outcomes[index].detected
                                    && m.infected_at().is_some()
                                {
                                    outcomes[index].detected = true;
                                    outcomes[index].detected_at = Some(now);
                                }
                            }
                        }
                        Err(other) => return Err(other),
                    }
                    let next = now + self.collection_interval;
                    if next <= end {
                        engine.schedule_at(next, ScenarioEvent::Collection);
                    }
                }
                ScenarioEvent::InfectionStart(index) => {
                    run_and_trace(&mut prover, &mut trace, now)?;
                    malware[index].infect(&mut prover, now)?;
                    trace.record(now, "infection", format!("infection {index} enters"));
                }
                ScenarioEvent::InfectionEnd(index) => {
                    run_and_trace(&mut prover, &mut trace, now)?;
                    malware[index].depart(&mut prover, now)?;
                    trace.record(now, "departure", format!("infection {index} leaves"));
                }
            }
        }

        Ok(ScenarioOutcome {
            infections: outcomes,
            measurements_taken: prover.measurements_taken(),
            collections,
            alarms,
            prover_busy_time: prover.total_busy_time(),
            trace,
        })
    }

    /// Attributes a detection to the infections whose residency overlaps the
    /// incriminating measurements (or, for tampering verdicts, to any
    /// infection that tampered).
    fn attribute_detection(
        &self,
        verdict: &AttestationVerdict,
        report: &crate::report::CollectionReport,
        malware: &[Malware],
        outcomes: &mut [InfectionOutcome],
        now: SimTime,
    ) {
        use crate::report::MeasurementVerdict;
        let incriminating: Vec<SimTime> = report
            .measurements()
            .iter()
            .filter(|vm| vm.verdict != MeasurementVerdict::Healthy)
            .map(|vm| vm.measurement.timestamp())
            .collect();

        for (index, m) in malware.iter().enumerate() {
            if outcomes[index].detected {
                continue;
            }
            let Some((start, until)) = m.residency(now) else {
                continue;
            };
            let overlaps_measurement = incriminating.iter().any(|&t| t >= start && t <= until);
            let tampered = *verdict == AttestationVerdict::TamperingDetected
                && m.tamper_strategy() != TamperStrategy::None;
            if overlaps_measurement || tampered {
                outcomes[index].detected = true;
                outcomes[index].detected_at = Some(now);
            }
        }
    }

    /// The collection interval `T_C` of the scenario.
    pub fn collection_interval(&self) -> SimDuration {
        self.collection_interval
    }

    /// The prover configuration used by the scenario.
    pub fn config(&self) -> &ProverConfig {
        &self.config
    }
}

/// Builder for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    profile: DeviceProfile,
    config_builder_interval: SimDuration,
    buffer_slots: Option<usize>,
    schedule: crate::ScheduleKind,
    mac: erasmus_crypto::MacAlgorithm,
    key: DeviceKey,
    collection_interval: SimDuration,
    history_per_collection: Option<usize>,
    duration: SimDuration,
    infections: Vec<InfectionSpec>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self {
            profile: DeviceProfile::msp430_8mhz(1024),
            config_builder_interval: SimDuration::from_secs(10),
            buffer_slots: None,
            schedule: crate::ScheduleKind::Regular,
            mac: erasmus_crypto::MacAlgorithm::HmacSha256,
            key: DeviceKey::from_bytes([0x5au8; 32]),
            collection_interval: SimDuration::from_secs(60),
            history_per_collection: None,
            duration: SimDuration::from_secs(600),
            infections: Vec::new(),
        }
    }
}

impl ScenarioBuilder {
    /// Sets the device profile.
    pub fn profile(mut self, profile: DeviceProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the measurement interval `T_M`.
    pub fn measurement_interval(mut self, interval: SimDuration) -> Self {
        self.config_builder_interval = interval;
        self
    }

    /// Sets the collection interval `T_C`.
    pub fn collection_interval(mut self, interval: SimDuration) -> Self {
        self.collection_interval = interval;
        self
    }

    /// Overrides the number of measurements fetched per collection
    /// (defaults to `⌈T_C / T_M⌉`).
    pub fn history_per_collection(mut self, k: usize) -> Self {
        self.history_per_collection = Some(k);
        self
    }

    /// Overrides the rolling-buffer size (defaults to enough slots that no
    /// measurement is lost at the configured `T_C`).
    pub fn buffer_slots(mut self, slots: usize) -> Self {
        self.buffer_slots = Some(slots);
        self
    }

    /// Selects the measurement schedule policy.
    pub fn schedule(mut self, schedule: crate::ScheduleKind) -> Self {
        self.schedule = schedule;
        self
    }

    /// Selects the MAC algorithm.
    pub fn mac_algorithm(mut self, mac: erasmus_crypto::MacAlgorithm) -> Self {
        self.mac = mac;
        self
    }

    /// Sets the device key.
    pub fn key(mut self, key: DeviceKey) -> Self {
        self.key = key;
        self
    }

    /// Sets the total simulated duration.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Adds one infection.
    pub fn infection(mut self, spec: InfectionSpec) -> Self {
        self.infections.push(spec);
        self
    }

    /// Adds several infections.
    pub fn infections<I: IntoIterator<Item = InfectionSpec>>(mut self, specs: I) -> Self {
        self.infections.extend(specs);
        self
    }

    /// Validates the configuration and builds the scenario, then runs it.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from [`ProverConfig`] validation and any
    /// error produced during the run.
    pub fn run(self) -> Result<ScenarioOutcome, Error> {
        self.build()?.run()
    }

    /// Validates the configuration and builds the scenario without running
    /// it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for invalid interval/buffer choices.
    pub fn build(self) -> Result<Scenario, Error> {
        let default_slots = (self.collection_interval.as_nanos() as f64
            / self.config_builder_interval.as_nanos().max(1) as f64)
            .ceil() as usize
            + 2;
        let config = ProverConfig::builder()
            .mac_algorithm(self.mac)
            .measurement_interval(self.config_builder_interval)
            .buffer_slots(self.buffer_slots.unwrap_or(default_slots.max(4)))
            .schedule(self.schedule)
            .build()?;
        if self.duration.is_zero() {
            return Err(Error::InvalidConfig {
                parameter: "duration",
                reason: "scenario duration must be non-zero".to_owned(),
            });
        }
        if self.collection_interval.is_zero() {
            return Err(Error::InvalidConfig {
                parameter: "collection_interval",
                reason: "T_C must be non-zero".to_owned(),
            });
        }
        Ok(Scenario {
            profile: self.profile,
            config,
            key: self.key,
            collection_interval: self.collection_interval,
            history_per_collection: self.history_per_collection,
            duration: self.duration,
            infections: self.infections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_scenario_raises_no_alarm() {
        let outcome = Scenario::builder()
            .duration(SimDuration::from_secs(300))
            .run()
            .expect("scenario runs");
        assert_eq!(outcome.alarms, 0);
        assert_eq!(outcome.collections, 5);
        assert!(outcome.measurements_taken >= 29);
        assert!(outcome.detected_count() == 0 && outcome.undetected_count() == 0);
        assert!(outcome.trace.of_kind("measurement").count() as u64 == outcome.measurements_taken);
    }

    #[test]
    fn figure1_mobile_escapes_persistent_detected() {
        let outcome = Scenario::builder()
            .measurement_interval(SimDuration::from_secs(10))
            .collection_interval(SimDuration::from_secs(60))
            .duration(SimDuration::from_secs(300))
            .infection(InfectionSpec::mobile(
                SimTime::from_secs(12),
                SimDuration::from_secs(3),
            ))
            .infection(InfectionSpec::persistent(SimTime::from_secs(95)))
            .run()
            .expect("scenario runs");
        assert!(!outcome.infections[0].detected);
        assert!(outcome.infections[1].detected);
        let latency = outcome.infections[1].detection_latency().expect("latency");
        // Detected at the next collection after the first incriminating
        // measurement: infection at 95 s, measured at 100 s, collected at 120 s.
        assert_eq!(latency, SimDuration::from_secs(25));
        assert!(outcome.alarms >= 1);
    }

    #[test]
    fn mobile_malware_spanning_a_measurement_is_detected() {
        let outcome = Scenario::builder()
            .measurement_interval(SimDuration::from_secs(10))
            .collection_interval(SimDuration::from_secs(60))
            .duration(SimDuration::from_secs(180))
            .infection(InfectionSpec::mobile(
                SimTime::from_secs(15),
                SimDuration::from_secs(10),
            ))
            .run()
            .expect("scenario runs");
        assert!(
            outcome.infections[0].detected,
            "dwell 10 s ≥ T_M window remainder covers t = 20 s"
        );
    }

    #[test]
    fn buffer_clearing_malware_is_caught_by_gap_detection() {
        let outcome = Scenario::builder()
            .measurement_interval(SimDuration::from_secs(10))
            .collection_interval(SimDuration::from_secs(60))
            .duration(SimDuration::from_secs(240))
            .infection(
                InfectionSpec::mobile(SimTime::from_secs(70), SimDuration::from_secs(5))
                    .with_tamper(TamperStrategy::ClearBuffer),
            )
            .run()
            .expect("scenario runs");
        assert!(
            outcome.infections[0].detected,
            "deleting history is self-incriminating"
        );
        assert!(outcome.alarms >= 1);
    }

    #[test]
    fn scenario_builder_validation() {
        assert!(Scenario::builder()
            .duration(SimDuration::ZERO)
            .build()
            .is_err());
        assert!(Scenario::builder()
            .collection_interval(SimDuration::ZERO)
            .build()
            .is_err());
        assert!(Scenario::builder()
            .measurement_interval(SimDuration::ZERO)
            .build()
            .is_err());
    }

    #[test]
    fn outcome_accessors() {
        let outcome = Scenario::builder()
            .duration(SimDuration::from_secs(120))
            .infection(InfectionSpec::persistent(SimTime::from_secs(5)))
            .run()
            .expect("scenario runs");
        assert_eq!(outcome.infections.len(), 1);
        assert_eq!(outcome.detected_count() + outcome.undetected_count(), 1);
        assert!(outcome.prover_busy_time > SimDuration::ZERO);
    }
}
