//! Protocol messages: ERASMUS collection (Figure 2), ERASMUS+OD (Figure 4),
//! classic on-demand attestation, and the ARQ retry policy that keeps
//! collection reports alive on faulty links.

use erasmus_crypto::{KeyedMac, MacAlgorithm, MacTag};
use erasmus_sim::{SimDuration, SimTime};

use crate::ids::DeviceId;
use crate::measurement::Measurement;

/// Verifier → prover: "send me your latest `k` measurements" (Figure 2).
///
/// The request carries no authentication on purpose: the ERASMUS collection
/// phase triggers no computation on the prover, so there is no computational
/// DoS to defend against (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CollectionRequest {
    /// Number of most-recent measurements requested.
    pub k: usize,
}

impl CollectionRequest {
    /// Requests the `k` latest measurements.
    pub fn latest(k: usize) -> Self {
        Self { k }
    }

    /// Requests the prover's entire buffer (`k = n` after clamping).
    pub fn all() -> Self {
        Self { k: usize::MAX }
    }
}

/// Prover → verifier: the measurements read out of the rolling buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionResponse {
    /// Which device answered.
    pub device: DeviceId,
    /// Measurements, newest first (at most `min(k, n)` of them).
    pub measurements: Vec<Measurement>,
    /// Prover-side time spent serving the request (buffer read + packet
    /// construction + transmission). With plain ERASMUS this is negligible —
    /// Table 2 reports 0.015 ms.
    pub prover_time: SimDuration,
}

impl CollectionResponse {
    /// Total payload bytes on the wire.
    pub fn payload_bytes(&self) -> usize {
        self.measurements.iter().map(Measurement::wire_size).sum()
    }

    /// The most recent measurement carried in the response, if any.
    pub fn most_recent(&self) -> Option<&Measurement> {
        self.measurements.iter().max_by_key(|m| m.timestamp())
    }
}

/// Verifier → prover: authenticated on-demand request (SMART+ style), also
/// the first message of ERASMUS+OD (Figure 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnDemandRequest {
    /// Verifier timestamp `t_req`, checked for freshness against the RROC.
    pub treq: SimTime,
    /// Number of buffered measurements to return alongside the fresh one
    /// (zero for a pure on-demand attestation).
    pub k: usize,
    /// `MAC_K(t_req, k)` proving the request comes from the verifier.
    pub tag: MacTag,
}

impl OnDemandRequest {
    /// Canonical MAC input for the request, built on the stack: the
    /// big-endian request timestamp followed by `k` as a big-endian u64.
    pub fn mac_input(treq: SimTime, k: usize) -> [u8; 16] {
        let [t0, t1, t2, t3, t4, t5, t6, t7] = treq.as_nanos().to_be_bytes();
        let [k0, k1, k2, k3, k4, k5, k6, k7] = u64::try_from(k).unwrap_or(u64::MAX).to_be_bytes();
        [
            t0, t1, t2, t3, t4, t5, t6, t7, k0, k1, k2, k3, k4, k5, k6, k7,
        ]
    }

    /// Builds an authenticated request, deriving the key schedule from
    /// scratch. Prefer [`OnDemandRequest::new_keyed`] when issuing requests
    /// repeatedly under the same key.
    pub fn new(key: &[u8], alg: MacAlgorithm, treq: SimTime, k: usize) -> Self {
        let tag = alg.mac(key, &Self::mac_input(treq, k));
        Self { treq, k, tag }
    }

    /// Builds an authenticated request from a precomputed key schedule.
    pub fn new_keyed(keyed: &KeyedMac, treq: SimTime, k: usize) -> Self {
        let tag = keyed.mac(&Self::mac_input(treq, k));
        Self { treq, k, tag }
    }

    /// Verifies the request MAC (done by the prover inside its trusted code).
    pub fn verify(&self, key: &[u8], alg: MacAlgorithm) -> bool {
        alg.verify(key, &Self::mac_input(self.treq, self.k), &self.tag)
    }

    /// Verifies the request MAC against a precomputed key schedule.
    pub fn verify_keyed(&self, keyed: &KeyedMac) -> bool {
        keyed.verify(&Self::mac_input(self.treq, self.k), &self.tag)
    }
}

/// Prover → verifier: the ERASMUS+OD response (Figure 4): a fresh on-demand
/// measurement `M_0` plus the `k` most recent buffered measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnDemandResponse {
    /// Which device answered.
    pub device: DeviceId,
    /// The freshly computed measurement `M_0`.
    pub fresh: Measurement,
    /// Buffered history, newest first (empty for pure on-demand).
    pub history: Vec<Measurement>,
    /// Prover-side time spent serving the request; dominated by computing
    /// `M_0` (Table 2 reports 285.6 ms on the i.MX6 for 10 MB / BLAKE2s).
    pub prover_time: SimDuration,
}

impl OnDemandResponse {
    /// Total payload bytes on the wire.
    pub fn payload_bytes(&self) -> usize {
        self.fresh.wire_size()
            + self
                .history
                .iter()
                .map(Measurement::wire_size)
                .sum::<usize>()
    }
}

/// ARQ retransmission policy: a bounded retry budget with exponential
/// backoff.
///
/// ERASMUS evidence is produced on a schedule whether or not the network
/// cooperates (Section 3), so a lost collection report is pure information
/// loss. Senders that hold evidence therefore retransmit un-acknowledged
/// transmissions: attempt `n` waits `base_backoff << n` (plus caller-drawn
/// jitter) before retrying, and gives up for good once `budget` retries are
/// exhausted. The policy itself is deterministic — all jitter comes from the
/// caller's seeded network model, which keeps fleet simulations
/// thread-count-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of *re*transmissions after the initial attempt. Zero
    /// disables ARQ entirely.
    pub budget: u32,
    /// Backoff before the first retransmission; doubles on every further
    /// attempt.
    pub base_backoff: SimDuration,
}

impl RetryPolicy {
    /// Default backoff before the first retransmission (100 ms — an order of
    /// magnitude above typical link latency, two below the measurement
    /// interval).
    pub const DEFAULT_BACKOFF: SimDuration = SimDuration::from_millis(100);

    /// ARQ disabled: transmissions are attempted exactly once.
    pub const DISABLED: RetryPolicy = RetryPolicy {
        budget: 0,
        base_backoff: Self::DEFAULT_BACKOFF,
    };

    /// A policy allowing `budget` retransmissions with the default backoff.
    pub fn with_budget(budget: u32) -> Self {
        Self {
            budget,
            base_backoff: Self::DEFAULT_BACKOFF,
        }
    }

    /// Whether any retransmission is allowed at all.
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    /// Whether a transmission that already failed `attempt + 1` times may be
    /// retried (attempts are numbered from zero).
    pub fn allows_retry(&self, attempt: u32) -> bool {
        attempt < self.budget
    }

    /// Backoff before retransmission number `attempt + 1`: exponential in
    /// the attempt index, with the shift saturated so absurd budgets cannot
    /// overflow.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let shift = attempt.min(16);
        SimDuration::from_nanos(self.base_backoff.as_nanos().saturating_mul(1 << shift))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::DISABLED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [5u8; 32];

    #[test]
    fn collection_request_constructors() {
        assert_eq!(CollectionRequest::latest(3).k, 3);
        assert_eq!(CollectionRequest::all().k, usize::MAX);
    }

    #[test]
    fn on_demand_request_roundtrip() {
        let req = OnDemandRequest::new(&KEY, MacAlgorithm::HmacSha256, SimTime::from_secs(100), 5);
        assert!(req.verify(&KEY, MacAlgorithm::HmacSha256));
        assert!(!req.verify(&[0u8; 32], MacAlgorithm::HmacSha256));
    }

    #[test]
    fn keyed_request_path_matches_oneshot() {
        for alg in MacAlgorithm::ALL {
            let keyed = alg.with_key(&KEY);
            let oneshot = OnDemandRequest::new(&KEY, alg, SimTime::from_secs(100), 5);
            let precomputed = OnDemandRequest::new_keyed(&keyed, SimTime::from_secs(100), 5);
            assert_eq!(oneshot, precomputed, "{alg}");
            assert!(oneshot.verify_keyed(&keyed), "{alg}");
            assert!(
                !precomputed.verify_keyed(&alg.with_key(&[0u8; 32])),
                "{alg}"
            );
        }
    }

    #[test]
    fn on_demand_request_binds_k_and_timestamp() {
        let req = OnDemandRequest::new(&KEY, MacAlgorithm::HmacSha256, SimTime::from_secs(100), 5);
        // Replaying the tag with different parameters fails.
        let altered_k = OnDemandRequest {
            k: 6,
            ..req.clone()
        };
        assert!(!altered_k.verify(&KEY, MacAlgorithm::HmacSha256));
        let altered_t = OnDemandRequest {
            treq: SimTime::from_secs(101),
            ..req
        };
        assert!(!altered_t.verify(&KEY, MacAlgorithm::HmacSha256));
    }

    #[test]
    fn response_payload_accounting() {
        let m1 = Measurement::compute(&KEY, MacAlgorithm::HmacSha256, SimTime::from_secs(1), b"a");
        let m2 = Measurement::compute(&KEY, MacAlgorithm::HmacSha256, SimTime::from_secs(2), b"b");
        let response = CollectionResponse {
            device: DeviceId::new(1),
            measurements: vec![m2.clone(), m1.clone()],
            prover_time: SimDuration::from_micros(15),
        };
        assert_eq!(response.payload_bytes(), m1.wire_size() + m2.wire_size());
        assert_eq!(
            response.most_recent().map(|m| m.timestamp()),
            Some(SimTime::from_secs(2))
        );

        let od = OnDemandResponse {
            device: DeviceId::new(1),
            fresh: m2.clone(),
            history: vec![m1.clone()],
            prover_time: SimDuration::from_millis(285),
        };
        assert_eq!(od.payload_bytes(), m1.wire_size() + m2.wire_size());
    }

    #[test]
    fn retry_policy_backoff_is_exponential_and_bounded() {
        let policy = RetryPolicy::with_budget(3);
        assert!(policy.enabled());
        assert!(policy.allows_retry(0));
        assert!(policy.allows_retry(2));
        assert!(!policy.allows_retry(3));
        assert_eq!(policy.backoff(0), RetryPolicy::DEFAULT_BACKOFF);
        assert_eq!(policy.backoff(1), RetryPolicy::DEFAULT_BACKOFF * 2);
        assert_eq!(policy.backoff(3), RetryPolicy::DEFAULT_BACKOFF * 8);
        // The shift saturates instead of overflowing on absurd attempts.
        assert_eq!(policy.backoff(200), policy.backoff(16));
        assert!(!RetryPolicy::DISABLED.enabled());
        assert!(!RetryPolicy::DISABLED.allows_retry(0));
        assert_eq!(RetryPolicy::default(), RetryPolicy::DISABLED);
    }

    #[test]
    fn empty_collection_response() {
        let response = CollectionResponse {
            device: DeviceId::new(9),
            measurements: Vec::new(),
            prover_time: SimDuration::ZERO,
        };
        assert_eq!(response.payload_bytes(), 0);
        assert!(response.most_recent().is_none());
    }
}
