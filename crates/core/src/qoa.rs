//! Quality of Attestation (QoA), Section 3.1.
//!
//! QoA is determined by two parameters: `T_M`, the time between successive
//! self-measurements, and `T_C`, the time between successive collections by
//! the verifier. ERASMUS de-couples them; on-demand attestation conflates
//! them (`T_M = T_C`, measurements only exist when collected).
//!
//! This module provides the analytical side of the paper's QoA discussion:
//! expected freshness, detection probability of mobile malware as a function
//! of its dwell time, detection latency, and the buffer-sizing rule
//! `T_C ≤ n · T_M`. The Monte-Carlo counterpart lives in
//! [`crate::scenario`], and the `qoa_detection` bench compares the two.

use erasmus_sim::SimDuration;

use crate::error::Error;

/// The QoA parameters of a deployment.
///
/// # Example
///
/// ```
/// use erasmus_core::QoaParams;
/// use erasmus_sim::SimDuration;
///
/// # fn main() -> Result<(), erasmus_core::Error> {
/// let qoa = QoaParams::new(SimDuration::from_secs(60), SimDuration::from_secs(600))?;
/// assert_eq!(qoa.recommended_history(), 10);         // k = ⌈T_C / T_M⌉
/// assert_eq!(qoa.expected_freshness(), SimDuration::from_secs(30)); // T_M / 2
/// // Mobile malware dwelling for 30 s is caught with probability 0.5.
/// assert!((qoa.mobile_detection_probability(SimDuration::from_secs(30)) - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QoaParams {
    measurement_interval: SimDuration,
    collection_interval: SimDuration,
}

impl QoaParams {
    /// Creates QoA parameters from `T_M` and `T_C`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if either interval is zero.
    pub fn new(
        measurement_interval: SimDuration,
        collection_interval: SimDuration,
    ) -> Result<Self, Error> {
        if measurement_interval.is_zero() {
            return Err(Error::InvalidConfig {
                parameter: "measurement_interval",
                reason: "T_M must be non-zero".to_owned(),
            });
        }
        if collection_interval.is_zero() {
            return Err(Error::InvalidConfig {
                parameter: "collection_interval",
                reason: "T_C must be non-zero".to_owned(),
            });
        }
        Ok(Self {
            measurement_interval,
            collection_interval,
        })
    }

    /// `T_M`: time between successive self-measurements.
    pub fn measurement_interval(&self) -> SimDuration {
        self.measurement_interval
    }

    /// `T_C`: time between successive collections.
    pub fn collection_interval(&self) -> SimDuration {
        self.collection_interval
    }

    /// The number of measurements a verifier should fetch per collection so
    /// that each is collected exactly once: `k = ⌈T_C / T_M⌉` (Section 3.1).
    pub fn recommended_history(&self) -> usize {
        let tc = self.collection_interval.as_nanos();
        let tm = self.measurement_interval.as_nanos();
        (tc.div_ceil(tm)) as usize
    }

    /// The minimum buffer size `n` that guarantees no measurement is
    /// overwritten before collection: `T_C ≤ n · T_M` (Section 3.2).
    pub fn required_buffer_slots(&self) -> usize {
        self.recommended_history()
    }

    /// Worst-case freshness of the newest measurement at collection time:
    /// `f = T_M` (the measurement fired just after the previous collection
    /// window began).
    pub fn worst_case_freshness(&self) -> SimDuration {
        self.measurement_interval
    }

    /// Expected freshness under a uniformly random collection instant:
    /// `E[f] = T_M / 2` (Section 3.1).
    pub fn expected_freshness(&self) -> SimDuration {
        self.measurement_interval / 2
    }

    /// Probability that mobile malware dwelling on the prover for `dwell`
    /// time covers at least one measurement instant, assuming a regular
    /// schedule and an arrival time uniform within a `T_M` window:
    /// `P = min(1, dwell / T_M)`.
    ///
    /// This is the quantity ERASMUS improves over on-demand attestation: with
    /// on-demand RA the relevant interval is `T_C` (typically much larger),
    /// so short-lived malware escapes.
    pub fn mobile_detection_probability(&self, dwell: SimDuration) -> f64 {
        (dwell.as_secs_f64() / self.measurement_interval.as_secs_f64()).min(1.0)
    }

    /// Same probability for *on-demand* attestation with checks every `T_C`:
    /// `P = min(1, dwell / T_C)`. Used as the baseline in the QoA benches.
    pub fn on_demand_detection_probability(&self, dwell: SimDuration) -> f64 {
        (dwell.as_secs_f64() / self.collection_interval.as_secs_f64()).min(1.0)
    }

    /// Worst-case delay between an infection (that persists) and the
    /// verifier learning about it: one full measurement interval until the
    /// state is captured plus one full collection interval until it is
    /// fetched.
    pub fn worst_case_detection_delay(&self) -> SimDuration {
        self.measurement_interval + self.collection_interval
    }

    /// Expected detection delay for persistent malware with uniformly random
    /// arrival: `T_M / 2 + T_C / 2`.
    pub fn expected_detection_delay(&self) -> SimDuration {
        self.measurement_interval / 2 + self.collection_interval / 2
    }

    /// Whether a verifier collecting every `T_C` from a buffer of `n` slots
    /// can lose measurements (`T_C > n · T_M`).
    pub fn loses_measurements_with(&self, buffer_slots: usize) -> bool {
        self.collection_interval > self.measurement_interval * buffer_slots as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qoa(tm_secs: u64, tc_secs: u64) -> QoaParams {
        QoaParams::new(
            SimDuration::from_secs(tm_secs),
            SimDuration::from_secs(tc_secs),
        )
        .expect("valid params")
    }

    #[test]
    fn recommended_history_is_ceiling() {
        assert_eq!(qoa(60, 600).recommended_history(), 10);
        assert_eq!(qoa(60, 601).recommended_history(), 11);
        assert_eq!(qoa(60, 59).recommended_history(), 1);
        assert_eq!(qoa(60, 60).recommended_history(), 1);
    }

    #[test]
    fn freshness_bounds() {
        let q = qoa(60, 600);
        assert_eq!(q.worst_case_freshness(), SimDuration::from_secs(60));
        assert_eq!(q.expected_freshness(), SimDuration::from_secs(30));
    }

    #[test]
    fn mobile_detection_probability_scales_with_dwell() {
        let q = qoa(60, 600);
        assert_eq!(q.mobile_detection_probability(SimDuration::ZERO), 0.0);
        assert!((q.mobile_detection_probability(SimDuration::from_secs(30)) - 0.5).abs() < 1e-12);
        assert_eq!(
            q.mobile_detection_probability(SimDuration::from_secs(60)),
            1.0
        );
        assert_eq!(
            q.mobile_detection_probability(SimDuration::from_secs(3600)),
            1.0
        );
    }

    #[test]
    fn erasmus_beats_on_demand_for_short_dwell() {
        let q = qoa(60, 3600);
        let dwell = SimDuration::from_secs(45);
        let erasmus = q.mobile_detection_probability(dwell);
        let on_demand = q.on_demand_detection_probability(dwell);
        assert!(
            erasmus > on_demand * 10.0,
            "erasmus {erasmus} vs on-demand {on_demand}"
        );
    }

    #[test]
    fn detection_delay_bounds() {
        let q = qoa(60, 600);
        assert_eq!(q.worst_case_detection_delay(), SimDuration::from_secs(660));
        assert_eq!(q.expected_detection_delay(), SimDuration::from_secs(330));
    }

    #[test]
    fn buffer_sizing_rule() {
        let q = qoa(60, 600);
        assert_eq!(q.required_buffer_slots(), 10);
        assert!(!q.loses_measurements_with(10));
        assert!(!q.loses_measurements_with(16));
        assert!(q.loses_measurements_with(9));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(QoaParams::new(SimDuration::ZERO, SimDuration::from_secs(1)).is_err());
        assert!(QoaParams::new(SimDuration::from_secs(1), SimDuration::ZERO).is_err());
    }

    #[test]
    fn accessors_roundtrip() {
        let q = qoa(30, 300);
        assert_eq!(q.measurement_interval(), SimDuration::from_secs(30));
        assert_eq!(q.collection_interval(), SimDuration::from_secs(300));
    }
}
