//! ERASMUS: Efficient Remote Attestation via Self-Measurement for Unattended
//! Settings — the core library of the reproduction.
//!
//! ERASMUS (Carpent, Rattanavipanon, Tsudik; DATE 2018) splits remote
//! attestation into two phases:
//!
//! * a **measurement phase**, in which the prover periodically measures its
//!   own memory — `M_t = <t, H(mem_t), MAC_K(t, H(mem_t))>` — inside a
//!   hybrid security architecture (SMART+ or HYDRA) and stores the result in
//!   a rolling buffer in insecure storage;
//! * a **collection phase**, in which the verifier occasionally fetches the
//!   latest `k` measurements. This phase involves *no* cryptography on the
//!   prover, so it imposes negligible real-time burden and needs no request
//!   authentication.
//!
//! Compared to on-demand attestation, this detects *mobile* malware that
//! enters and leaves between verifier interactions, and it decouples how
//! often the device is measured (`T_M`) from how often it is checked
//! (`T_C`) — the two axes of the paper's Quality of Attestation
//! ([`QoaParams`]).
//!
//! # Main types
//!
//! * [`Prover`] / [`Verifier`] — the two protocol roles.
//! * [`Measurement`] / [`MeasurementBuffer`] — evidence and its rolling
//!   store.
//! * [`ProverConfig`] / [`ScheduleKind`] — deployment configuration,
//!   including the irregular (Section 3.5) and lenient (Section 5)
//!   schedules.
//! * [`CollectionRequest`] / [`OnDemandRequest`] — the ERASMUS (Figure 2)
//!   and ERASMUS+OD (Figure 4) protocols.
//! * [`DeviceHistory`] / [`VerifierHub`] — the reconstructed per-device
//!   state timeline and the fleet-wide map of such timelines.
//! * [`QoaParams`] — Quality of Attestation analytics.
//! * [`Malware`] / [`Scenario`] — the threat models and the discrete-event
//!   scenario runner used by the security experiments.
//!
//! # Example
//!
//! ```
//! use erasmus_core::{CollectionRequest, DeviceId, Prover, ProverConfig, Verifier};
//! use erasmus_crypto::MacAlgorithm;
//! use erasmus_hw::{DeviceKey, DeviceProfile};
//! use erasmus_sim::{SimDuration, SimTime};
//!
//! # fn main() -> Result<(), erasmus_core::Error> {
//! let key = DeviceKey::from_bytes([0x42; 32]);
//! let config = ProverConfig::builder()
//!     .mac_algorithm(MacAlgorithm::HmacSha256)
//!     .measurement_interval(SimDuration::from_secs(10))
//!     .buffer_slots(16)
//!     .build()?;
//! let mut prover = Prover::new(
//!     DeviceId::new(1),
//!     DeviceProfile::msp430_8mhz(10 * 1024),
//!     key.clone(),
//!     config,
//! )?;
//! let mut verifier = Verifier::new(key, MacAlgorithm::HmacSha256);
//! verifier.learn_reference_image(prover.mcu().app_memory());
//!
//! // The device self-measures on schedule; the verifier collects later.
//! prover.run_until(SimTime::from_secs(60))?;
//! let response = prover.handle_collection(&CollectionRequest::latest(6), SimTime::from_secs(60));
//! let report = verifier.verify_collection(&response, SimTime::from_secs(60))?;
//! assert!(report.all_valid());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod config;
pub mod encoding;
pub mod error;
pub mod history;
pub mod hub;
pub mod ids;
pub mod malware;
pub mod measurement;
pub mod protocol;
pub mod prover;
pub mod qoa;
pub mod report;
pub mod scenario;
pub mod schedule;
pub mod verifier;

pub use buffer::MeasurementBuffer;
pub use config::{ProverConfig, ProverConfigBuilder};
pub use encoding::{
    decode_collection_batch, decode_collection_response, decode_hub_snapshot, decode_measurement,
    encode_collection_batch, encode_collection_batch_into, encode_collection_response,
    encode_collection_response_into, encode_hub_snapshot, encode_hub_snapshot_into,
    encode_measurement, encode_measurement_into, DecodeError, DecodeErrorKind, FrameView,
    MeasurementView, MeasurementViews, ResponseView, ResponseViews, MAX_BATCH_RESPONSES,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use error::Error;
pub use history::{extend_digest, DeviceHistory, HistoryEntry, HistoryMode, HistorySpan};
pub use hub::{BatchIngest, FrameIngest, VerifierHub, DEDUP_WINDOW};
pub use ids::DeviceId;
pub use malware::{Malware, MalwareBehavior, TamperStrategy};
pub use measurement::{Measurement, MemoryDigest, DIGEST_LEN, MAC_INPUT_LEN};
pub use protocol::{
    CollectionRequest, CollectionResponse, OnDemandRequest, OnDemandResponse, RetryPolicy,
};
pub use prover::{MeasurementOutcome, Prover};
pub use qoa::QoaParams;
pub use report::{AttestationVerdict, CollectionReport, MeasurementVerdict, VerifiedMeasurement};
pub use scenario::{InfectionOutcome, InfectionSpec, Scenario, ScenarioBuilder, ScenarioOutcome};
pub use schedule::{MeasurementScheduler, ScheduleKind};
pub use verifier::Verifier;

// Re-exported for convenience: the device key lives with the hardware
// substrate (it is provisioned into ROM) but is part of this crate's public
// API surface.
pub use erasmus_hw::DeviceKey;
