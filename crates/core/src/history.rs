//! Verifier-side device history: the state timeline reconstructed from
//! successive collections.
//!
//! ERASMUS's selling point is that the verifier obtains the prover's *entire
//! history* of measurements rather than a single point-in-time snapshot.
//! [`DeviceHistory`] accumulates the verified measurements from every
//! collection, deduplicates them, and answers the questions an operator
//! actually asks: when did the device first look compromised, how long was
//! it compromised, and were there windows with no evidence at all?

use std::collections::BTreeMap;

use erasmus_sim::{SimDuration, SimTime};

use crate::ids::DeviceId;
use crate::report::{CollectionReport, MeasurementVerdict};

/// One point of the reconstructed timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// When the prover took the measurement.
    pub timestamp: SimTime,
    /// What the verifier concluded about it.
    pub verdict: MeasurementVerdict,
    /// When the verifier learned about it (collection time).
    pub collected_at: SimTime,
}

/// A contiguous run of measurements sharing the same verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistorySpan {
    /// Verdict shared by every measurement in the span.
    pub verdict: MeasurementVerdict,
    /// Timestamp of the first measurement in the span.
    pub start: SimTime,
    /// Timestamp of the last measurement in the span.
    pub end: SimTime,
    /// Number of measurements in the span.
    pub measurements: usize,
}

/// The reconstructed state timeline of one device.
///
/// # Example
///
/// ```
/// use erasmus_core::{history::DeviceHistory, DeviceId};
///
/// let history = DeviceHistory::new(DeviceId::new(1));
/// assert!(history.is_empty());
/// assert!(history.first_compromise().is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceHistory {
    device: DeviceId,
    /// Keyed by measurement timestamp so repeated collections of the same
    /// measurement deduplicate naturally.
    entries: BTreeMap<SimTime, HistoryEntry>,
    collections: u64,
}

impl DeviceHistory {
    /// Creates an empty history for `device`.
    pub fn new(device: DeviceId) -> Self {
        Self {
            device,
            entries: BTreeMap::new(),
            collections: 0,
        }
    }

    /// Rebuilds a history from decoded snapshot parts (used by the hub
    /// snapshot codec in [`crate::encoding`]). `entries` must already be in
    /// ascending timestamp order — the codec enforces that as part of its
    /// canonical-form contract.
    pub(crate) fn from_snapshot_parts(
        device: DeviceId,
        collections: u64,
        entries: impl IntoIterator<Item = HistoryEntry>,
    ) -> Self {
        Self {
            device,
            entries: entries
                .into_iter()
                .map(|entry| (entry.timestamp, entry))
                .collect(),
            collections,
        }
    }

    /// The device this history belongs to.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Number of distinct measurements recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no measurement has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of collection reports folded in.
    pub fn collections(&self) -> u64 {
        self.collections
    }

    /// Folds a collection report into the history.
    ///
    /// Measurements already known (same timestamp) keep their existing
    /// verdict unless the new report downgrades them (e.g. a re-collected
    /// measurement now fails verification, which indicates tampering after
    /// the fact).
    ///
    /// Reports about a *different* device are rejected wholesale: nothing is
    /// recorded, [`DeviceHistory::collections`] does not advance, and the
    /// call returns `false`. Mixing devices' timelines would corrupt the
    /// reconstruction (a healthy neighbour could mask a compromise window);
    /// route multi-device fleets through [`crate::VerifierHub`] instead.
    pub fn ingest(&mut self, report: &CollectionReport) -> bool {
        if report.device() != self.device {
            return false;
        }
        self.collections += 1;
        for vm in report.measurements() {
            self.upsert(HistoryEntry {
                timestamp: vm.measurement.timestamp(),
                verdict: vm.verdict,
                collected_at: report.collected_at(),
            });
        }
        true
    }

    /// Records one entry under the worst-verdict-wins rule shared by
    /// [`DeviceHistory::ingest`] and [`DeviceHistory::merge_from`]: a known
    /// timestamp keeps its verdict unless the incoming one is more alarming.
    fn upsert(&mut self, entry: HistoryEntry) {
        self.entries
            .entry(entry.timestamp)
            .and_modify(|existing| {
                if severity(entry.verdict) > severity(existing.verdict) {
                    existing.verdict = entry.verdict;
                    existing.collected_at = entry.collected_at;
                }
            })
            .or_insert(entry);
    }

    /// Merges another history of the *same* device into this one, entry by
    /// entry, using the same worst-verdict-wins rule as
    /// [`DeviceHistory::ingest`]. Collection counts are summed.
    ///
    /// Returns `false` (and changes nothing) when `other` belongs to a
    /// different device. Used by [`crate::VerifierHub::merge`] to combine the
    /// per-shard hubs of a partitioned fleet run.
    pub fn merge_from(&mut self, other: &DeviceHistory) -> bool {
        if other.device != self.device {
            return false;
        }
        self.collections += other.collections;
        for entry in other.entries.values() {
            self.upsert(entry.clone());
        }
        true
    }

    /// All entries in timestamp order.
    pub fn entries(&self) -> impl Iterator<Item = &HistoryEntry> {
        self.entries.values()
    }

    /// The timestamp of the earliest measurement showing compromise or
    /// tampering, if any.
    pub fn first_compromise(&self) -> Option<SimTime> {
        self.entries
            .values()
            .find(|entry| entry.verdict != MeasurementVerdict::Healthy)
            .map(|entry| entry.timestamp)
    }

    /// The time at which the verifier *learned* of the first compromise.
    pub fn first_compromise_detected_at(&self) -> Option<SimTime> {
        self.entries
            .values()
            .filter(|entry| entry.verdict != MeasurementVerdict::Healthy)
            .map(|entry| entry.collected_at)
            .min()
    }

    /// Detection latency: from the first incriminating measurement to the
    /// collection that delivered it.
    pub fn detection_latency(&self) -> Option<SimDuration> {
        match (self.first_compromise(), self.first_compromise_detected_at()) {
            (Some(measured), Some(collected)) => {
                Some(collected.saturating_duration_since(measured))
            }
            _ => None,
        }
    }

    /// Total number of measurements with a given verdict.
    pub fn count(&self, verdict: MeasurementVerdict) -> usize {
        self.entries
            .values()
            .filter(|entry| entry.verdict == verdict)
            .count()
    }

    /// Collapses the timeline into contiguous spans of equal verdict.
    pub fn spans(&self) -> Vec<HistorySpan> {
        let mut spans: Vec<HistorySpan> = Vec::new();
        for entry in self.entries.values() {
            match spans.last_mut() {
                Some(span) if span.verdict == entry.verdict => {
                    span.end = entry.timestamp;
                    span.measurements += 1;
                }
                _ => spans.push(HistorySpan {
                    verdict: entry.verdict,
                    start: entry.timestamp,
                    end: entry.timestamp,
                    measurements: 1,
                }),
            }
        }
        spans
    }

    /// Largest gap between consecutive measurement timestamps, if at least
    /// two measurements are known. Large gaps relative to `T_M` point at
    /// deleted evidence or an undersized buffer.
    pub fn largest_gap(&self) -> Option<SimDuration> {
        let timestamps: Vec<SimTime> = self.entries.keys().copied().collect();
        timestamps
            .windows(2)
            .map(|pair| pair[1].duration_since(pair[0]))
            .max()
    }
}

/// Orders verdicts by how alarming they are, for the "keep the worst verdict"
/// rule in [`DeviceHistory::ingest`].
fn severity(verdict: MeasurementVerdict) -> u8 {
    match verdict {
        MeasurementVerdict::Healthy => 0,
        MeasurementVerdict::Compromised => 1,
        MeasurementVerdict::Forged => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProverConfig;
    use crate::protocol::CollectionRequest;
    use crate::prover::Prover;
    use crate::verifier::Verifier;
    use erasmus_crypto::MacAlgorithm;
    use erasmus_hw::{DeviceKey, DeviceProfile};

    fn provision() -> (Prover, Verifier) {
        let key = DeviceKey::from_bytes([0x44u8; 32]);
        let config = ProverConfig::builder()
            .measurement_interval(SimDuration::from_secs(10))
            .buffer_slots(16)
            .build()
            .expect("valid config");
        let prover = Prover::new(
            DeviceId::new(1),
            DeviceProfile::msp430_8mhz(1024),
            key.clone(),
            config,
        )
        .expect("provisioning");
        let mut verifier = Verifier::new(key, MacAlgorithm::HmacSha256);
        verifier.learn_reference_image(prover.mcu().app_memory());
        verifier.set_expected_interval(SimDuration::from_secs(10));
        (prover, verifier)
    }

    fn collect_into(
        history: &mut DeviceHistory,
        prover: &mut Prover,
        verifier: &mut Verifier,
        at_secs: u64,
        k: usize,
    ) {
        prover
            .run_until(SimTime::from_secs(at_secs))
            .expect("measurements");
        let response =
            prover.handle_collection(&CollectionRequest::latest(k), SimTime::from_secs(at_secs));
        let report = verifier
            .verify_collection(&response, SimTime::from_secs(at_secs))
            .expect("report");
        assert!(
            history.ingest(&report),
            "report matches the history's device"
        );
    }

    #[test]
    fn accumulates_and_deduplicates_across_collections() {
        let (mut prover, mut verifier) = provision();
        let mut history = DeviceHistory::new(DeviceId::new(1));
        collect_into(&mut history, &mut prover, &mut verifier, 60, 6);
        // Overlapping second collection re-delivers some measurements.
        collect_into(&mut history, &mut prover, &mut verifier, 120, 12);
        assert_eq!(history.collections(), 2);
        assert_eq!(history.len(), 12); // measurements at 10..120, deduplicated
        assert!(history.first_compromise().is_none());
        assert_eq!(history.count(MeasurementVerdict::Healthy), 12);
        assert_eq!(history.largest_gap(), Some(SimDuration::from_secs(10)));
        assert_eq!(history.spans().len(), 1);
    }

    #[test]
    fn compromise_window_is_reconstructed() {
        let (mut prover, mut verifier) = provision();
        let mut history = DeviceHistory::new(DeviceId::new(1));
        collect_into(&mut history, &mut prover, &mut verifier, 60, 6);

        // Persistent implant lands at t = 73 s.
        prover
            .run_until(SimTime::from_secs(73))
            .expect("measurements");
        prover
            .mcu_mut()
            .write_app_memory(0, b"implant")
            .expect("infect");
        collect_into(&mut history, &mut prover, &mut verifier, 120, 6);

        assert_eq!(history.first_compromise(), Some(SimTime::from_secs(80)));
        assert_eq!(
            history.first_compromise_detected_at(),
            Some(SimTime::from_secs(120))
        );
        assert_eq!(
            history.detection_latency(),
            Some(SimDuration::from_secs(40))
        );
        let spans = history.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].verdict, MeasurementVerdict::Healthy);
        assert_eq!(spans[0].measurements, 7); // t = 10..70
        assert_eq!(spans[1].verdict, MeasurementVerdict::Compromised);
        assert_eq!(spans[1].start, SimTime::from_secs(80));
        assert_eq!(spans[1].end, SimTime::from_secs(120));
    }

    #[test]
    fn wrong_device_reports_are_rejected() {
        let (mut prover, mut verifier) = provision();
        prover
            .run_until(SimTime::from_secs(40))
            .expect("measurements");
        let response =
            prover.handle_collection(&CollectionRequest::latest(4), SimTime::from_secs(40));
        let report = verifier
            .verify_collection(&response, SimTime::from_secs(40))
            .expect("report");

        // The prover is device 1; this history tracks device 2.
        let mut other = DeviceHistory::new(DeviceId::new(2));
        assert!(!other.ingest(&report));
        assert!(other.is_empty(), "rejected report must record nothing");
        assert_eq!(other.collections(), 0, "rejected report must not count");

        // The right history still accepts it.
        let mut own = DeviceHistory::new(DeviceId::new(1));
        assert!(own.ingest(&report));
        assert_eq!(own.len(), 4);
        assert_eq!(own.collections(), 1);
    }

    #[test]
    fn merge_from_combines_same_device_histories() {
        let (mut prover, mut verifier) = provision();
        let mut first = DeviceHistory::new(DeviceId::new(1));
        collect_into(&mut first, &mut prover, &mut verifier, 60, 6);

        let mut second = DeviceHistory::new(DeviceId::new(1));
        collect_into(&mut second, &mut prover, &mut verifier, 120, 6);

        assert!(first.merge_from(&second));
        assert_eq!(first.len(), 12); // t = 10..120, disjoint halves
        assert_eq!(first.collections(), 2);
        assert_eq!(first.largest_gap(), Some(SimDuration::from_secs(10)));

        // Device mismatch leaves the target untouched.
        let stranger = DeviceHistory::new(DeviceId::new(7));
        assert!(!first.merge_from(&stranger));
        assert_eq!(first.len(), 12);
        assert_eq!(first.collections(), 2);
    }

    #[test]
    fn empty_history_queries() {
        let history = DeviceHistory::new(DeviceId::new(9));
        assert!(history.is_empty());
        assert_eq!(history.len(), 0);
        assert!(history.spans().is_empty());
        assert!(history.largest_gap().is_none());
        assert!(history.detection_latency().is_none());
        assert_eq!(history.device(), DeviceId::new(9));
    }

    #[test]
    fn worst_verdict_wins_on_reingestion() {
        let (mut prover, mut verifier) = provision();
        let mut history = DeviceHistory::new(DeviceId::new(1));
        collect_into(&mut history, &mut prover, &mut verifier, 40, 4);
        assert_eq!(history.count(MeasurementVerdict::Healthy), 4);

        // Malware later replaces the stored measurement for t = 30 with a
        // forgery; a second collection re-delivers that slot.
        let slot = prover.buffer().slot_for(SimTime::from_secs(30));
        prover.buffer_mut().tamper_replace(
            slot,
            crate::Measurement::from_parts(
                SimTime::from_secs(30),
                [0u8; 32],
                erasmus_crypto::MacTag::new(vec![0u8; 32]),
            ),
        );
        collect_into(&mut history, &mut prover, &mut verifier, 80, 8);
        assert_eq!(history.count(MeasurementVerdict::Forged), 1);
        // The forged verdict replaced the previously healthy one for t = 30.
        let entry = history
            .entries()
            .find(|e| e.timestamp == SimTime::from_secs(30))
            .expect("entry exists");
        assert_eq!(entry.verdict, MeasurementVerdict::Forged);
    }
}
