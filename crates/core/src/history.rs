//! Verifier-side device history: the state timeline reconstructed from
//! successive collections, in O(ring capacity) memory per device.
//!
//! ERASMUS's selling point is that the verifier obtains the prover's *entire
//! history* of measurements rather than a single point-in-time snapshot.
//! Early versions of this crate stored that history literally — every entry
//! in an unbounded `BTreeMap` — which capped fleet runs at a few thousand
//! devices. [`DeviceHistory`] now keeps compact state instead:
//!
//! * a fixed-size **ring** of the K most recent entries (the operator-facing
//!   window: spans, gaps, per-entry verdicts),
//! * a **rollup** of lifetime tallies that survive eviction (entry and
//!   verdict counts, first/last timestamps, first-compromise evidence),
//! * a PCR-style **hash chain**: every entry extends a 32-byte digest,
//!   `H_new = SHA256(H_old || t || verdict || collected_at)`, so the entire
//!   timeline authenticates from one digest no matter how many entries have
//!   been evicted.
//!
//! The chain is split in two: [`DeviceHistory::chain_digest`] covers the
//! sealed prefix (entries already evicted from the ring, folded in eviction
//! order) and [`DeviceHistory::head_digest`] covers the whole timeline.
//! Evicting an entry moves it from the resident window into the sealed
//! prefix without changing the head — the invariant
//! `head == fold(chain, resident entries)` holds at all times and is
//! checked by [`DeviceHistory::verify_chain`].
//!
//! [`HistoryMode::Unbounded`] retains every entry (the pre-compaction
//! behaviour, still the default for [`DeviceHistory::new`]);
//! [`HistoryMode::Ring`] caps the resident window.

use std::collections::VecDeque;

use erasmus_crypto::{Digest, Sha256};
use erasmus_sim::{SimDuration, SimTime};

use crate::ids::DeviceId;
use crate::report::{CollectionReport, MeasurementVerdict};

/// One point of the reconstructed timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// When the prover took the measurement.
    pub timestamp: SimTime,
    /// What the verifier concluded about it.
    pub verdict: MeasurementVerdict,
    /// When the verifier learned about it (collection time).
    pub collected_at: SimTime,
}

/// A contiguous run of measurements sharing the same verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistorySpan {
    /// Verdict shared by every measurement in the span.
    pub verdict: MeasurementVerdict,
    /// Timestamp of the first measurement in the span.
    pub start: SimTime,
    /// Timestamp of the last measurement in the span.
    pub end: SimTime,
    /// Number of measurements in the span.
    pub measurements: usize,
}

/// Retention policy for a [`DeviceHistory`]'s resident entry window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryMode {
    /// Keep every entry ever recorded (the original behaviour). Memory
    /// grows linearly with the device's lifetime.
    Unbounded,
    /// Keep only the most recent entries, up to the given capacity; older
    /// entries are sealed into the hash chain and evicted. Memory is
    /// O(capacity) per device regardless of lifetime.
    Ring(usize),
}

impl HistoryMode {
    /// The resident-window capacity, or `None` when unbounded.
    pub fn capacity(self) -> Option<usize> {
        match self {
            HistoryMode::Unbounded => None,
            HistoryMode::Ring(capacity) => Some(capacity),
        }
    }
}

/// Extends a history chain digest by one entry:
/// `SHA256(prev || t_be || verdict_tag || collected_at_be)`.
///
/// `verdict_tag` uses the same 0/1/2 encoding as the snapshot codec
/// (healthy/compromised/forged — the severity order). This is the single
/// fold primitive behind both [`DeviceHistory::chain_digest`] and
/// [`DeviceHistory::head_digest`]; it is exported so external tooling (the
/// snapshot fuzz model, swarm aggregation) can recompute chains from raw
/// wire fields without a `DeviceHistory` in hand.
pub fn extend_digest(
    prev: &[u8; 32],
    timestamp_nanos: u64,
    verdict_tag: u8,
    collected_at_nanos: u64,
) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(prev);
    hasher.update(&timestamp_nanos.to_be_bytes());
    hasher.update(&[verdict_tag]);
    hasher.update(&collected_at_nanos.to_be_bytes());
    hasher.finalize()
}

fn extend_with_entry(prev: &[u8; 32], entry: &HistoryEntry) -> [u8; 32] {
    extend_digest(
        prev,
        entry.timestamp.as_nanos(),
        severity(entry.verdict),
        entry.collected_at.as_nanos(),
    )
}

/// Lifetime tallies that survive ring eviction. Every field is monotone
/// under ingestion, which keeps the rollup order-independent where the
/// resident window cannot be.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct HistoryRollup {
    /// Distinct measurements ever recorded (resident + evicted).
    pub(crate) entries: u64,
    /// Entries sealed into the chain and dropped from the ring.
    pub(crate) evictions: u64,
    /// Measurements discarded because they predate the retained window of a
    /// ring that has already evicted (late, reordered deliveries).
    pub(crate) stale_discards: u64,
    /// Lifetime verdict tallies; a worst-verdict downgrade of a resident
    /// entry moves one count between buckets.
    pub(crate) healthy: u64,
    /// See [`HistoryRollup::healthy`].
    pub(crate) compromised: u64,
    /// See [`HistoryRollup::healthy`].
    pub(crate) forged: u64,
    /// Earliest measurement timestamp ever recorded.
    pub(crate) first_timestamp: Option<SimTime>,
    /// Earliest measurement timestamp that ever carried a non-healthy
    /// verdict.
    pub(crate) first_compromise_at: Option<SimTime>,
    /// Earliest collection time at which non-healthy evidence was seen.
    pub(crate) compromise_detected_at: Option<SimTime>,
}

impl HistoryRollup {
    fn verdict_count_mut(&mut self, verdict: MeasurementVerdict) -> &mut u64 {
        match verdict {
            MeasurementVerdict::Healthy => &mut self.healthy,
            MeasurementVerdict::Compromised => &mut self.compromised,
            MeasurementVerdict::Forged => &mut self.forged,
        }
    }

    fn verdict_count(&self, verdict: MeasurementVerdict) -> u64 {
        match verdict {
            MeasurementVerdict::Healthy => self.healthy,
            MeasurementVerdict::Compromised => self.compromised,
            MeasurementVerdict::Forged => self.forged,
        }
    }

    fn note_compromise(&mut self, measured: SimTime, collected: SimTime) {
        self.first_compromise_at = Some(match self.first_compromise_at {
            Some(at) => at.min(measured),
            None => measured,
        });
        self.compromise_detected_at = Some(match self.compromise_detected_at {
            Some(at) => at.min(collected),
            None => collected,
        });
    }
}

/// The reconstructed state timeline of one device, in compact form.
///
/// # Example
///
/// ```
/// use erasmus_core::{history::DeviceHistory, DeviceId, HistoryMode};
///
/// let history = DeviceHistory::with_mode(DeviceId::new(1), HistoryMode::Ring(16));
/// assert!(history.is_empty());
/// assert!(history.first_compromise().is_none());
/// assert!(history.verify_chain());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceHistory {
    pub(crate) device: DeviceId,
    pub(crate) mode: HistoryMode,
    /// Resident window, strictly ascending by timestamp.
    pub(crate) ring: VecDeque<HistoryEntry>,
    /// Digest of the sealed (evicted) prefix, folded in eviction order.
    /// All-zero until the first eviction.
    pub(crate) chain: [u8; 32],
    /// Digest of the entire timeline: the sealed prefix extended by every
    /// resident entry in timestamp order.
    pub(crate) head: [u8; 32],
    pub(crate) collections: u64,
    pub(crate) rollup: HistoryRollup,
}

impl DeviceHistory {
    /// Creates an empty, unbounded history for `device`.
    pub fn new(device: DeviceId) -> Self {
        Self::with_mode(device, HistoryMode::Unbounded)
    }

    /// Creates an empty history for `device` under the given retention
    /// mode. A `Ring(0)` capacity is treated as `Ring(1)` — an empty
    /// resident window would make every query blind.
    pub fn with_mode(device: DeviceId, mode: HistoryMode) -> Self {
        let mode = match mode {
            HistoryMode::Ring(capacity) => HistoryMode::Ring(capacity.max(1)),
            HistoryMode::Unbounded => HistoryMode::Unbounded,
        };
        Self {
            device,
            mode,
            ring: VecDeque::new(),
            chain: [0u8; 32],
            head: [0u8; 32],
            collections: 0,
            rollup: HistoryRollup::default(),
        }
    }

    /// The device this history belongs to.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The retention mode this history was created with.
    pub fn mode(&self) -> HistoryMode {
        self.mode
    }

    /// Number of distinct measurements ever recorded, resident or evicted.
    /// (Identical to the resident count in unbounded mode.)
    pub fn len(&self) -> usize {
        usize::try_from(self.rollup.entries).unwrap_or(usize::MAX)
    }

    /// Whether no measurement has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.rollup.entries == 0
    }

    /// Number of entries currently resident in the ring.
    pub fn resident_len(&self) -> usize {
        self.ring.len()
    }

    /// Number of entries sealed into the chain and evicted from the ring.
    /// Conservation: `evictions() + resident_len() == len()`.
    pub fn evictions(&self) -> u64 {
        self.rollup.evictions
    }

    /// Number of measurements discarded for predating an already-evicted
    /// window (late, reordered deliveries in ring mode).
    pub fn stale_discards(&self) -> u64 {
        self.rollup.stale_discards
    }

    /// Number of collection reports folded in.
    pub fn collections(&self) -> u64 {
        self.collections
    }

    /// Digest of the sealed (evicted) prefix of the timeline. All-zero
    /// until the first eviction.
    pub fn chain_digest(&self) -> &[u8; 32] {
        &self.chain
    }

    /// Digest of the entire timeline: the sealed prefix extended by every
    /// resident entry. This is the device's PCR — it authenticates the
    /// full history in 32 bytes and is invariant under eviction.
    pub fn head_digest(&self) -> &[u8; 32] {
        &self.head
    }

    /// Recomputes the head from the sealed chain and the resident window
    /// and checks it against the stored head. O(resident entries).
    pub fn verify_chain(&self) -> bool {
        self.fold_resident() == self.head
    }

    fn fold_resident(&self) -> [u8; 32] {
        let mut digest = self.chain;
        for entry in &self.ring {
            digest = extend_with_entry(&digest, entry);
        }
        digest
    }

    /// Folds a collection report into the history.
    ///
    /// Measurements already known (same timestamp) keep their existing
    /// verdict unless the new report downgrades them (e.g. a re-collected
    /// measurement now fails verification, which indicates tampering after
    /// the fact).
    ///
    /// Reports about a *different* device are rejected wholesale: nothing is
    /// recorded, [`DeviceHistory::collections`] does not advance, and the
    /// call returns `false`. Mixing devices' timelines would corrupt the
    /// reconstruction (a healthy neighbour could mask a compromise window);
    /// route multi-device fleets through [`crate::VerifierHub`] instead.
    pub fn ingest(&mut self, report: &CollectionReport) -> bool {
        if report.device() != self.device {
            return false;
        }
        self.collections += 1;
        // Provers answer `latest k` newest-first; replay the report oldest-
        // first so a bounded ring never mistakes an in-report older entry
        // for one behind the sealed window. Unbounded histories are order-
        // invariant, so this changes nothing there.
        let mut entries: Vec<HistoryEntry> = report
            .measurements()
            .iter()
            .map(|vm| HistoryEntry {
                timestamp: vm.measurement.timestamp(),
                verdict: vm.verdict,
                collected_at: report.collected_at(),
            })
            .collect();
        entries.sort_by_key(|entry| entry.timestamp);
        for entry in entries {
            self.observe(entry);
        }
        true
    }

    /// Records one verified measurement under the worst-verdict-wins rule
    /// shared by [`DeviceHistory::ingest`] and [`DeviceHistory::merge_from`]:
    /// a known timestamp keeps its verdict unless the incoming one is more
    /// alarming; a fresh timestamp extends the hash chain; in ring mode a
    /// timestamp older than an already-evicted window is counted as a stale
    /// discard and dropped.
    pub fn observe(&mut self, entry: HistoryEntry) {
        match self
            .ring
            .binary_search_by_key(&entry.timestamp, |resident| resident.timestamp)
        {
            Ok(index) => {
                let old = self.ring[index].verdict;
                if severity(entry.verdict) > severity(old) {
                    self.ring[index].verdict = entry.verdict;
                    self.ring[index].collected_at = entry.collected_at;
                    *self.rollup.verdict_count_mut(old) -= 1;
                    *self.rollup.verdict_count_mut(entry.verdict) += 1;
                    self.rollup
                        .note_compromise(entry.timestamp, entry.collected_at);
                    self.head = self.fold_resident();
                }
            }
            Err(index) => {
                if index == 0 && self.rollup.evictions > 0 && !self.ring.is_empty() {
                    // Ring mode, and the entry predates the retained
                    // window: the chain has already sealed past it.
                    self.rollup.stale_discards += 1;
                    return;
                }
                self.rollup.entries += 1;
                *self.rollup.verdict_count_mut(entry.verdict) += 1;
                self.rollup.first_timestamp = Some(match self.rollup.first_timestamp {
                    Some(at) => at.min(entry.timestamp),
                    None => entry.timestamp,
                });
                if entry.verdict != MeasurementVerdict::Healthy {
                    self.rollup
                        .note_compromise(entry.timestamp, entry.collected_at);
                }
                if index == self.ring.len() {
                    // Fast path: in-order arrival is a pure PCR extend.
                    self.head = extend_with_entry(&self.head, &entry);
                    self.ring.push_back(entry);
                } else {
                    self.ring.insert(index, entry);
                    self.head = self.fold_resident();
                }
                if let HistoryMode::Ring(capacity) = self.mode {
                    while self.ring.len() > capacity {
                        let evicted = self.ring.pop_front().expect("len > capacity >= 1");
                        self.chain = extend_with_entry(&self.chain, &evicted);
                        self.rollup.evictions += 1;
                    }
                }
            }
        }
    }

    /// Merges another history of the *same* device into this one, entry by
    /// entry, using the same worst-verdict-wins rule as
    /// [`DeviceHistory::ingest`]. Collection counts, stale-discard counts
    /// and the monotone rollup minima (first timestamp, first compromise)
    /// are combined; `other`'s resident entries are re-observed under
    /// `self`'s retention mode.
    ///
    /// When `other` has already evicted entries, those entries cannot be
    /// replayed: their lifetime tallies stay with `other`, and chain
    /// equality with a sequentially-ingested history is only guaranteed
    /// while `other` is un-evicted (the fleet runtime never merges two
    /// histories of the same device that both wrapped — devices live on
    /// exactly one shard).
    ///
    /// Returns `false` (and changes nothing) when `other` belongs to a
    /// different device. Used by [`crate::VerifierHub::merge`] to combine the
    /// per-shard hubs of a partitioned fleet run.
    pub fn merge_from(&mut self, other: &DeviceHistory) -> bool {
        if other.device != self.device {
            return false;
        }
        self.collections += other.collections;
        self.rollup.stale_discards += other.rollup.stale_discards;
        if let Some(at) = other.rollup.first_timestamp {
            self.rollup.first_timestamp = Some(match self.rollup.first_timestamp {
                Some(mine) => mine.min(at),
                None => at,
            });
        }
        if let (Some(at), Some(detected)) = (
            other.rollup.first_compromise_at,
            other.rollup.compromise_detected_at,
        ) {
            self.rollup.note_compromise(at, detected);
        }
        for entry in other.ring.iter().cloned() {
            self.observe(entry);
        }
        true
    }

    /// Resident entries in timestamp order.
    pub fn entries(&self) -> impl Iterator<Item = &HistoryEntry> {
        self.ring.iter()
    }

    /// Timestamp of the earliest measurement ever recorded (survives
    /// eviction).
    pub fn first_timestamp(&self) -> Option<SimTime> {
        self.rollup.first_timestamp
    }

    /// Timestamp of the most recent measurement recorded.
    pub fn last_timestamp(&self) -> Option<SimTime> {
        self.ring.back().map(|entry| entry.timestamp)
    }

    /// The timestamp of the earliest measurement showing compromise or
    /// tampering, if any (survives eviction).
    pub fn first_compromise(&self) -> Option<SimTime> {
        self.rollup.first_compromise_at
    }

    /// The time at which the verifier *learned* of the first compromise:
    /// the earliest collection time that carried non-healthy evidence.
    pub fn first_compromise_detected_at(&self) -> Option<SimTime> {
        self.rollup.compromise_detected_at
    }

    /// Detection latency: from the first incriminating measurement to the
    /// collection that delivered it.
    pub fn detection_latency(&self) -> Option<SimDuration> {
        match (self.first_compromise(), self.first_compromise_detected_at()) {
            (Some(measured), Some(collected)) => {
                Some(collected.saturating_duration_since(measured))
            }
            _ => None,
        }
    }

    /// Lifetime number of measurements with a given verdict (survives
    /// eviction; a resident downgrade moves one count between buckets).
    pub fn count(&self, verdict: MeasurementVerdict) -> usize {
        usize::try_from(self.rollup.verdict_count(verdict)).unwrap_or(usize::MAX)
    }

    /// Collapses the resident window into contiguous spans of equal
    /// verdict. Allocation-free: spans are produced lazily off the ring.
    pub fn spans(&self) -> impl Iterator<Item = HistorySpan> + '_ {
        let mut entries = self.ring.iter().peekable();
        std::iter::from_fn(move || {
            let first = entries.next()?;
            let mut span = HistorySpan {
                verdict: first.verdict,
                start: first.timestamp,
                end: first.timestamp,
                measurements: 1,
            };
            while let Some(next) = entries.peek() {
                if next.verdict != span.verdict {
                    break;
                }
                span.end = next.timestamp;
                span.measurements += 1;
                entries.next();
            }
            Some(span)
        })
    }

    /// Largest gap between consecutive resident measurement timestamps, if
    /// at least two are retained. Large gaps relative to `T_M` point at
    /// deleted evidence or an undersized buffer. Allocation-free.
    pub fn largest_gap(&self) -> Option<SimDuration> {
        self.ring
            .iter()
            .zip(self.ring.iter().skip(1))
            .map(|(earlier, later)| later.timestamp.duration_since(earlier.timestamp))
            .max()
    }
}

/// Orders verdicts by how alarming they are, for the "keep the worst verdict"
/// rule in [`DeviceHistory::ingest`]. Doubles as the chain verdict tag —
/// the same 0/1/2 values the snapshot codec writes.
fn severity(verdict: MeasurementVerdict) -> u8 {
    match verdict {
        MeasurementVerdict::Healthy => 0,
        MeasurementVerdict::Compromised => 1,
        MeasurementVerdict::Forged => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProverConfig;
    use crate::protocol::CollectionRequest;
    use crate::prover::Prover;
    use crate::verifier::Verifier;
    use erasmus_crypto::MacAlgorithm;
    use erasmus_hw::{DeviceKey, DeviceProfile};

    fn provision() -> (Prover, Verifier) {
        let key = DeviceKey::from_bytes([0x44u8; 32]);
        let config = ProverConfig::builder()
            .measurement_interval(SimDuration::from_secs(10))
            .buffer_slots(16)
            .build()
            .expect("valid config");
        let prover = Prover::new(
            DeviceId::new(1),
            DeviceProfile::msp430_8mhz(1024),
            key.clone(),
            config,
        )
        .expect("provisioning");
        let mut verifier = Verifier::new(key, MacAlgorithm::HmacSha256);
        verifier.learn_reference_image(prover.mcu().app_memory());
        verifier.set_expected_interval(SimDuration::from_secs(10));
        (prover, verifier)
    }

    fn collect_into(
        history: &mut DeviceHistory,
        prover: &mut Prover,
        verifier: &mut Verifier,
        at_secs: u64,
        k: usize,
    ) {
        prover
            .run_until(SimTime::from_secs(at_secs))
            .expect("measurements");
        let response =
            prover.handle_collection(&CollectionRequest::latest(k), SimTime::from_secs(at_secs));
        let report = verifier
            .verify_collection(&response, SimTime::from_secs(at_secs))
            .expect("report");
        assert!(
            history.ingest(&report),
            "report matches the history's device"
        );
    }

    fn healthy_at(secs: u64) -> HistoryEntry {
        HistoryEntry {
            timestamp: SimTime::from_secs(secs),
            verdict: MeasurementVerdict::Healthy,
            collected_at: SimTime::from_secs(secs + 5),
        }
    }

    #[test]
    fn accumulates_and_deduplicates_across_collections() {
        let (mut prover, mut verifier) = provision();
        let mut history = DeviceHistory::new(DeviceId::new(1));
        collect_into(&mut history, &mut prover, &mut verifier, 60, 6);
        // Overlapping second collection re-delivers some measurements.
        collect_into(&mut history, &mut prover, &mut verifier, 120, 12);
        assert_eq!(history.collections(), 2);
        assert_eq!(history.len(), 12); // measurements at 10..120, deduplicated
        assert!(history.first_compromise().is_none());
        assert_eq!(history.count(MeasurementVerdict::Healthy), 12);
        assert_eq!(history.largest_gap(), Some(SimDuration::from_secs(10)));
        assert_eq!(history.spans().count(), 1);
        assert!(history.verify_chain());
        assert_eq!(history.evictions(), 0);
        assert_eq!(history.resident_len(), 12);
    }

    #[test]
    fn compromise_window_is_reconstructed() {
        let (mut prover, mut verifier) = provision();
        let mut history = DeviceHistory::new(DeviceId::new(1));
        collect_into(&mut history, &mut prover, &mut verifier, 60, 6);

        // Persistent implant lands at t = 73 s.
        prover
            .run_until(SimTime::from_secs(73))
            .expect("measurements");
        prover
            .mcu_mut()
            .write_app_memory(0, b"implant")
            .expect("infect");
        collect_into(&mut history, &mut prover, &mut verifier, 120, 6);

        assert_eq!(history.first_compromise(), Some(SimTime::from_secs(80)));
        assert_eq!(
            history.first_compromise_detected_at(),
            Some(SimTime::from_secs(120))
        );
        assert_eq!(
            history.detection_latency(),
            Some(SimDuration::from_secs(40))
        );
        let spans: Vec<HistorySpan> = history.spans().collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].verdict, MeasurementVerdict::Healthy);
        assert_eq!(spans[0].measurements, 7); // t = 10..70
        assert_eq!(spans[1].verdict, MeasurementVerdict::Compromised);
        assert_eq!(spans[1].start, SimTime::from_secs(80));
        assert_eq!(spans[1].end, SimTime::from_secs(120));
    }

    #[test]
    fn wrong_device_reports_are_rejected() {
        let (mut prover, mut verifier) = provision();
        prover
            .run_until(SimTime::from_secs(40))
            .expect("measurements");
        let response =
            prover.handle_collection(&CollectionRequest::latest(4), SimTime::from_secs(40));
        let report = verifier
            .verify_collection(&response, SimTime::from_secs(40))
            .expect("report");

        // The prover is device 1; this history tracks device 2.
        let mut other = DeviceHistory::new(DeviceId::new(2));
        assert!(!other.ingest(&report));
        assert!(other.is_empty(), "rejected report must record nothing");
        assert_eq!(other.collections(), 0, "rejected report must not count");

        // The right history still accepts it.
        let mut own = DeviceHistory::new(DeviceId::new(1));
        assert!(own.ingest(&report));
        assert_eq!(own.len(), 4);
        assert_eq!(own.collections(), 1);
    }

    #[test]
    fn merge_from_combines_same_device_histories() {
        let (mut prover, mut verifier) = provision();
        let mut first = DeviceHistory::new(DeviceId::new(1));
        collect_into(&mut first, &mut prover, &mut verifier, 60, 6);

        let mut second = DeviceHistory::new(DeviceId::new(1));
        collect_into(&mut second, &mut prover, &mut verifier, 120, 6);

        assert!(first.merge_from(&second));
        assert_eq!(first.len(), 12); // t = 10..120, disjoint halves
        assert_eq!(first.collections(), 2);
        assert_eq!(first.largest_gap(), Some(SimDuration::from_secs(10)));
        assert!(first.verify_chain());

        // Device mismatch leaves the target untouched.
        let stranger = DeviceHistory::new(DeviceId::new(7));
        assert!(!first.merge_from(&stranger));
        assert_eq!(first.len(), 12);
        assert_eq!(first.collections(), 2);
    }

    #[test]
    fn empty_history_queries() {
        let history = DeviceHistory::new(DeviceId::new(9));
        assert!(history.is_empty());
        assert_eq!(history.len(), 0);
        assert!(history.spans().next().is_none());
        assert!(history.largest_gap().is_none());
        assert!(history.detection_latency().is_none());
        assert!(history.first_timestamp().is_none());
        assert!(history.last_timestamp().is_none());
        assert_eq!(history.device(), DeviceId::new(9));
        assert_eq!(history.chain_digest(), &[0u8; 32]);
        assert_eq!(history.head_digest(), &[0u8; 32]);
        assert!(history.verify_chain());
    }

    #[test]
    fn worst_verdict_wins_on_reingestion() {
        let (mut prover, mut verifier) = provision();
        let mut history = DeviceHistory::new(DeviceId::new(1));
        collect_into(&mut history, &mut prover, &mut verifier, 40, 4);
        assert_eq!(history.count(MeasurementVerdict::Healthy), 4);

        // Malware later replaces the stored measurement for t = 30 with a
        // forgery; a second collection re-delivers that slot.
        let slot = prover.buffer().slot_for(SimTime::from_secs(30));
        prover.buffer_mut().tamper_replace(
            slot,
            crate::Measurement::from_parts(
                SimTime::from_secs(30),
                [0u8; 32],
                erasmus_crypto::MacTag::new(vec![0u8; 32]),
            ),
        );
        collect_into(&mut history, &mut prover, &mut verifier, 80, 8);
        assert_eq!(history.count(MeasurementVerdict::Forged), 1);
        // The forged verdict replaced the previously healthy one for t = 30.
        let entry = history
            .entries()
            .find(|e| e.timestamp == SimTime::from_secs(30))
            .expect("entry exists");
        assert_eq!(entry.verdict, MeasurementVerdict::Forged);
        // The downgrade rewrote the resident window, so the head must have
        // been refolded over it.
        assert!(history.verify_chain());
    }

    #[test]
    fn ring_evicts_oldest_and_seals_the_chain() {
        let mut ring = DeviceHistory::with_mode(DeviceId::new(3), HistoryMode::Ring(4));
        let mut unbounded = DeviceHistory::new(DeviceId::new(3));
        for secs in (10..=80).step_by(10) {
            ring.observe(healthy_at(secs));
            unbounded.observe(healthy_at(secs));
        }
        assert_eq!(ring.len(), 8, "lifetime count survives eviction");
        assert_eq!(ring.resident_len(), 4);
        assert_eq!(ring.evictions(), 4);
        assert_eq!(
            ring.evictions() + ring.resident_len() as u64,
            ring.len() as u64
        );
        assert_eq!(ring.first_timestamp(), Some(SimTime::from_secs(10)));
        assert_eq!(ring.last_timestamp(), Some(SimTime::from_secs(80)));
        assert_eq!(
            ring.entries().next().map(|e| e.timestamp),
            Some(SimTime::from_secs(50)),
            "resident window holds the most recent K"
        );
        assert!(ring.verify_chain());
        assert_ne!(ring.chain_digest(), &[0u8; 32]);
        // The head authenticates the whole timeline: eviction must not
        // change it, so ring and unbounded heads agree.
        assert_eq!(ring.head_digest(), unbounded.head_digest());
        assert_eq!(unbounded.evictions(), 0);
        assert_eq!(unbounded.chain_digest(), &[0u8; 32]);
    }

    #[test]
    fn ring_discards_stale_arrivals_behind_the_sealed_window() {
        let mut history = DeviceHistory::with_mode(DeviceId::new(4), HistoryMode::Ring(2));
        for secs in [10, 20, 30, 40] {
            history.observe(healthy_at(secs));
        }
        assert_eq!(history.evictions(), 2);
        let head_before = *history.head_digest();
        // t = 15 predates the retained window [30, 40]: sealed history
        // cannot be rewritten, so the arrival is counted and dropped.
        history.observe(healthy_at(15));
        assert_eq!(history.stale_discards(), 1);
        assert_eq!(history.len(), 4, "stale arrivals do not count as entries");
        assert_eq!(history.head_digest(), &head_before);
        assert!(history.verify_chain());
        // A duplicate of a resident entry is still a dedup, not a discard.
        history.observe(healthy_at(30));
        assert_eq!(history.stale_discards(), 1);
        assert_eq!(history.len(), 4);
    }

    #[test]
    fn out_of_order_arrivals_refold_the_head() {
        let mut in_order = DeviceHistory::new(DeviceId::new(5));
        let mut shuffled = DeviceHistory::new(DeviceId::new(5));
        for secs in [10, 20, 30, 40] {
            in_order.observe(healthy_at(secs));
        }
        for secs in [30, 10, 40, 20] {
            shuffled.observe(healthy_at(secs));
        }
        assert_eq!(in_order, shuffled, "same set, same compact state");
        assert!(shuffled.verify_chain());
        assert_eq!(in_order.head_digest(), shuffled.head_digest());
    }

    #[test]
    fn merge_matches_sequential_ingest_chain() {
        let mut sequential = DeviceHistory::with_mode(DeviceId::new(6), HistoryMode::Ring(3));
        let mut left = DeviceHistory::with_mode(DeviceId::new(6), HistoryMode::Ring(3));
        let mut right = DeviceHistory::new(DeviceId::new(6));
        for secs in [10, 20, 30] {
            sequential.observe(healthy_at(secs));
            left.observe(healthy_at(secs));
        }
        for secs in [40, 50] {
            sequential.observe(healthy_at(secs));
            right.observe(healthy_at(secs));
        }
        assert!(left.merge_from(&right));
        assert_eq!(left, sequential);
        assert!(left.verify_chain());
    }
}
