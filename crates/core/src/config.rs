//! Prover configuration.

use erasmus_crypto::MacAlgorithm;
use erasmus_sim::SimDuration;

use crate::error::Error;
use crate::schedule::ScheduleKind;

/// Configuration of one ERASMUS prover.
///
/// Use [`ProverConfig::builder`] to construct one; the builder validates the
/// QoA-relevant relationships (non-zero `T_M`, at least one buffer slot,
/// sensible irregular bounds).
///
/// # Example
///
/// ```
/// use erasmus_core::ProverConfig;
/// use erasmus_crypto::MacAlgorithm;
/// use erasmus_sim::SimDuration;
///
/// # fn main() -> Result<(), erasmus_core::Error> {
/// let config = ProverConfig::builder()
///     .mac_algorithm(MacAlgorithm::KeyedBlake2s)
///     .measurement_interval(SimDuration::from_secs(60))
///     .buffer_slots(32)
///     .build()?;
/// assert_eq!(config.buffer_slots(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProverConfig {
    mac_algorithm: MacAlgorithm,
    measurement_interval: SimDuration,
    buffer_slots: usize,
    schedule: ScheduleKind,
    phase_offset: SimDuration,
}

impl ProverConfig {
    /// Starts building a configuration with the defaults: HMAC-SHA256, a
    /// 60-second measurement interval, 16 buffer slots and a regular
    /// schedule.
    pub fn builder() -> ProverConfigBuilder {
        ProverConfigBuilder::default()
    }

    /// The MAC used for measurements.
    pub fn mac_algorithm(&self) -> MacAlgorithm {
        self.mac_algorithm
    }

    /// The measurement interval `T_M`.
    pub fn measurement_interval(&self) -> SimDuration {
        self.measurement_interval
    }

    /// Number of rolling-buffer slots `n`.
    pub fn buffer_slots(&self) -> usize {
        self.buffer_slots
    }

    /// The measurement schedule policy.
    pub fn schedule(&self) -> &ScheduleKind {
        &self.schedule
    }

    /// Phase offset within `T_M`: all scheduled measurement instants are
    /// shifted by this amount, so a fleet can stagger which devices measure
    /// at any given simulated time (Section 6 availability).
    pub fn phase_offset(&self) -> SimDuration {
        self.phase_offset
    }

    /// Largest collection period that loses no measurement: `n · T_M`.
    pub fn max_safe_collection_period(&self) -> SimDuration {
        self.measurement_interval * self.buffer_slots as u64
    }
}

impl Default for ProverConfig {
    fn default() -> Self {
        ProverConfig::builder()
            .build()
            .expect("default configuration is valid")
    }
}

/// Builder for [`ProverConfig`].
#[derive(Debug, Clone)]
pub struct ProverConfigBuilder {
    mac_algorithm: MacAlgorithm,
    measurement_interval: SimDuration,
    buffer_slots: usize,
    schedule: ScheduleKind,
    phase_offset: SimDuration,
}

impl Default for ProverConfigBuilder {
    fn default() -> Self {
        Self {
            mac_algorithm: MacAlgorithm::HmacSha256,
            measurement_interval: SimDuration::from_secs(60),
            buffer_slots: 16,
            schedule: ScheduleKind::Regular,
            phase_offset: SimDuration::ZERO,
        }
    }
}

impl ProverConfigBuilder {
    /// Selects the MAC algorithm.
    pub fn mac_algorithm(mut self, alg: MacAlgorithm) -> Self {
        self.mac_algorithm = alg;
        self
    }

    /// Sets the measurement interval `T_M`.
    pub fn measurement_interval(mut self, interval: SimDuration) -> Self {
        self.measurement_interval = interval;
        self
    }

    /// Sets the number of rolling-buffer slots `n`.
    pub fn buffer_slots(mut self, slots: usize) -> Self {
        self.buffer_slots = slots;
        self
    }

    /// Selects the measurement schedule policy.
    pub fn schedule(mut self, schedule: ScheduleKind) -> Self {
        self.schedule = schedule;
        self
    }

    /// Shifts every scheduled measurement instant by `offset` within `T_M`
    /// (must be strictly smaller than the measurement interval).
    pub fn phase_offset(mut self, offset: SimDuration) -> Self {
        self.phase_offset = offset;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the measurement interval is
    /// zero, the buffer has no slots, the phase offset is not strictly
    /// inside the measurement interval, an irregular schedule has an empty
    /// or zero-based interval range, or a lenient window factor is below 1.
    pub fn build(self) -> Result<ProverConfig, Error> {
        if self.measurement_interval.is_zero() {
            return Err(Error::InvalidConfig {
                parameter: "measurement_interval",
                reason: "T_M must be non-zero".to_owned(),
            });
        }
        if self.buffer_slots == 0 {
            return Err(Error::InvalidConfig {
                parameter: "buffer_slots",
                reason: "the rolling buffer needs at least one slot".to_owned(),
            });
        }
        if self.phase_offset >= self.measurement_interval {
            return Err(Error::InvalidConfig {
                parameter: "phase_offset",
                reason: format!(
                    "phase offset {} must lie strictly within T_M = {}",
                    self.phase_offset, self.measurement_interval
                ),
            });
        }
        match &self.schedule {
            ScheduleKind::Regular => {}
            ScheduleKind::Irregular { lower, upper } => {
                if lower.is_zero() {
                    return Err(Error::InvalidConfig {
                        parameter: "schedule",
                        reason: "irregular lower bound must be non-zero".to_owned(),
                    });
                }
                if lower >= upper {
                    return Err(Error::InvalidConfig {
                        parameter: "schedule",
                        reason: format!("irregular bounds are empty: [{lower}, {upper})"),
                    });
                }
            }
            ScheduleKind::Lenient { window_factor } => {
                if !window_factor.is_finite() || *window_factor < 1.0 {
                    return Err(Error::InvalidConfig {
                        parameter: "schedule",
                        reason: format!("lenient window factor must be >= 1, got {window_factor}"),
                    });
                }
            }
        }
        Ok(ProverConfig {
            mac_algorithm: self.mac_algorithm,
            measurement_interval: self.measurement_interval,
            buffer_slots: self.buffer_slots,
            schedule: self.schedule,
            phase_offset: self.phase_offset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let config = ProverConfig::default();
        assert_eq!(config.mac_algorithm(), MacAlgorithm::HmacSha256);
        assert_eq!(config.measurement_interval(), SimDuration::from_secs(60));
        assert_eq!(config.buffer_slots(), 16);
        assert_eq!(config.schedule(), &ScheduleKind::Regular);
        assert_eq!(
            config.max_safe_collection_period(),
            SimDuration::from_secs(960)
        );
    }

    #[test]
    fn builder_overrides_every_field() {
        let config = ProverConfig::builder()
            .mac_algorithm(MacAlgorithm::KeyedBlake2s)
            .measurement_interval(SimDuration::from_secs(5))
            .buffer_slots(4)
            .schedule(ScheduleKind::Lenient { window_factor: 2.0 })
            .build()
            .expect("valid config");
        assert_eq!(config.mac_algorithm(), MacAlgorithm::KeyedBlake2s);
        assert_eq!(config.measurement_interval(), SimDuration::from_secs(5));
        assert_eq!(config.buffer_slots(), 4);
        assert!(matches!(config.schedule(), ScheduleKind::Lenient { .. }));
    }

    #[test]
    fn phase_offset_defaults_to_zero_and_is_settable() {
        assert_eq!(ProverConfig::default().phase_offset(), SimDuration::ZERO);
        let config = ProverConfig::builder()
            .measurement_interval(SimDuration::from_secs(10))
            .phase_offset(SimDuration::from_secs(3))
            .build()
            .expect("valid config");
        assert_eq!(config.phase_offset(), SimDuration::from_secs(3));
    }

    #[test]
    fn phase_offset_outside_interval_rejected() {
        let err = ProverConfig::builder()
            .measurement_interval(SimDuration::from_secs(10))
            .phase_offset(SimDuration::from_secs(10))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::InvalidConfig {
                parameter: "phase_offset",
                ..
            }
        ));
    }

    #[test]
    fn zero_interval_rejected() {
        let err = ProverConfig::builder()
            .measurement_interval(SimDuration::ZERO)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::InvalidConfig {
                parameter: "measurement_interval",
                ..
            }
        ));
    }

    #[test]
    fn zero_slots_rejected() {
        let err = ProverConfig::builder().buffer_slots(0).build().unwrap_err();
        assert!(matches!(
            err,
            Error::InvalidConfig {
                parameter: "buffer_slots",
                ..
            }
        ));
    }

    #[test]
    fn invalid_irregular_bounds_rejected() {
        let err = ProverConfig::builder()
            .schedule(ScheduleKind::Irregular {
                lower: SimDuration::from_secs(10),
                upper: SimDuration::from_secs(10),
            })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::InvalidConfig {
                parameter: "schedule",
                ..
            }
        ));

        let err = ProverConfig::builder()
            .schedule(ScheduleKind::Irregular {
                lower: SimDuration::ZERO,
                upper: SimDuration::from_secs(10),
            })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::InvalidConfig {
                parameter: "schedule",
                ..
            }
        ));
    }

    #[test]
    fn invalid_window_factor_rejected() {
        let err = ProverConfig::builder()
            .schedule(ScheduleKind::Lenient { window_factor: 0.9 })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::InvalidConfig {
                parameter: "schedule",
                ..
            }
        ));
    }
}
