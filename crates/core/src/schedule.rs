//! Measurement scheduling: regular, irregular (CSPRNG-driven) and lenient.
//!
//! * **Regular** — a measurement every `T_M`, the paper's baseline.
//! * **Irregular** (Section 3.5) — the next interval is drawn from a CSPRNG
//!   seeded with the device key and mapped into `[L, U)`, so schedule-aware
//!   mobile malware cannot predict when the next measurement fires.
//! * **Lenient** (Section 5) — measurements nominally fire every `T_M`, but a
//!   time-critical task may defer an individual measurement to the end of a
//!   window of `w × T_M`.

use std::fmt;

use erasmus_crypto::HmacDrbg;
use erasmus_sim::{SimDuration, SimTime};

/// Which scheduling policy a prover uses.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleKind {
    /// Fixed interval `T_M`.
    Regular,
    /// CSPRNG-driven interval bounded to `[lower, upper)` (Section 3.5).
    Irregular {
        /// Lower bound `L` on the interval.
        lower: SimDuration,
        /// Upper bound `U` on the interval (exclusive).
        upper: SimDuration,
    },
    /// Regular cadence with a deferral window of `window_factor × T_M`
    /// (Section 5). `window_factor ≥ 1`.
    Lenient {
        /// The factor `w`.
        window_factor: f64,
    },
}

impl fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleKind::Regular => f.write_str("regular"),
            ScheduleKind::Irregular { lower, upper } => {
                write!(f, "irregular [{lower}, {upper})")
            }
            ScheduleKind::Lenient { window_factor } => write!(f, "lenient (w = {window_factor})"),
        }
    }
}

/// Stateful scheduler deciding when the prover self-measures.
///
/// # Example
///
/// ```
/// use erasmus_core::{MeasurementScheduler, ScheduleKind};
/// use erasmus_sim::{SimDuration, SimTime};
///
/// let mut scheduler = MeasurementScheduler::new(
///     ScheduleKind::Regular,
///     SimDuration::from_secs(10),
///     &[0u8; 32],
/// );
/// assert_eq!(scheduler.next_due(), SimTime::from_secs(10));
/// scheduler.mark_completed(SimTime::from_secs(10));
/// assert_eq!(scheduler.next_due(), SimTime::from_secs(20));
/// ```
#[derive(Debug, Clone)]
pub struct MeasurementScheduler {
    kind: ScheduleKind,
    interval: SimDuration,
    /// Phase offset within `T_M`: every due time is shifted by this amount,
    /// so a fleet can stagger its devices' measurement instants (Section 6
    /// availability — see `erasmus_swarm::StaggeredSchedule`).
    phase: SimDuration,
    drbg: HmacDrbg,
    next_due: SimTime,
    /// Nominal due time of the pending measurement (lenient schedules only);
    /// deferral may push `next_due` past it, up to
    /// `nominal_due + (w − 1)·T_M`.
    nominal_due: SimTime,
    deferrals: u64,
    completed: u64,
}

impl MeasurementScheduler {
    /// Creates a scheduler.
    ///
    /// `key` seeds the CSPRNG used by irregular schedules (the paper seeds it
    /// with the device key so the timer values are unpredictable to malware);
    /// regular and lenient schedules ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero, if an irregular schedule has
    /// `lower >= upper`, or if a lenient schedule has `window_factor < 1`.
    /// Use [`crate::ProverConfig`] for error-returning validation.
    pub fn new(kind: ScheduleKind, interval: SimDuration, key: &[u8]) -> Self {
        Self::new_with_phase(kind, interval, key, SimDuration::ZERO)
    }

    /// Creates a scheduler whose due times are all shifted by `phase` within
    /// `T_M`: the first regular measurement fires at `T_M + phase` and every
    /// subsequent one `T_M` later, so devices with distinct phases never
    /// measure at the same simulated instant.
    ///
    /// # Panics
    ///
    /// Panics like [`MeasurementScheduler::new`], and additionally if
    /// `phase >= interval` — a phase of a full interval or more would skip
    /// measurement windows instead of staggering them.
    pub fn new_with_phase(
        kind: ScheduleKind,
        interval: SimDuration,
        key: &[u8],
        phase: SimDuration,
    ) -> Self {
        assert!(!interval.is_zero(), "measurement interval must be non-zero");
        assert!(phase < interval, "phase offset must lie within T_M");
        if let ScheduleKind::Irregular { lower, upper } = &kind {
            assert!(lower < upper, "irregular schedule requires lower < upper");
            assert!(!lower.is_zero(), "irregular lower bound must be non-zero");
        }
        if let ScheduleKind::Lenient { window_factor } = &kind {
            assert!(*window_factor >= 1.0, "lenient window factor must be >= 1");
        }
        let mut scheduler = Self {
            kind,
            interval,
            phase,
            drbg: HmacDrbg::new(key, b"erasmus-irregular-schedule"),
            next_due: SimTime::ZERO,
            nominal_due: SimTime::ZERO,
            deferrals: 0,
            completed: 0,
        };
        scheduler.next_due = scheduler.first_due();
        scheduler.nominal_due = scheduler.next_due;
        scheduler
    }

    fn first_due(&mut self) -> SimTime {
        let base = match &self.kind {
            ScheduleKind::Regular | ScheduleKind::Lenient { .. } => SimTime::ZERO + self.interval,
            ScheduleKind::Irregular { lower, upper } => {
                let nanos = self.drbg.next_in_range(lower.as_nanos(), upper.as_nanos());
                SimTime::ZERO + SimDuration::from_nanos(nanos)
            }
        };
        base + self.phase
    }

    /// The scheduling policy.
    pub fn kind(&self) -> &ScheduleKind {
        &self.kind
    }

    /// The nominal measurement interval `T_M`.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The phase offset within `T_M` (zero unless built with
    /// [`MeasurementScheduler::new_with_phase`]).
    pub fn phase(&self) -> SimDuration {
        self.phase
    }

    /// When the next measurement is due.
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    /// Number of measurements whose completion has been recorded.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Number of deferrals granted (lenient schedules only).
    pub fn deferrals(&self) -> u64 {
        self.deferrals
    }

    /// Records that the measurement due at (or before) `now` has completed
    /// and computes the next due time.
    pub fn mark_completed(&mut self, now: SimTime) {
        self.completed += 1;
        match &self.kind {
            ScheduleKind::Regular => {
                self.next_due += self.interval;
                // If the prover fell behind (e.g. it was busy), skip forward
                // so the next due time is in the future of `now`.
                while self.next_due <= now {
                    self.next_due += self.interval;
                }
            }
            ScheduleKind::Irregular { lower, upper } => {
                // T_next = map(CSPRNG_K(t_i)) with map(x) = x mod (U − L) + L.
                self.drbg.reseed(&now.as_nanos().to_be_bytes());
                let nanos = self.drbg.next_in_range(lower.as_nanos(), upper.as_nanos());
                self.next_due = now + SimDuration::from_nanos(nanos);
            }
            ScheduleKind::Lenient { .. } => {
                // The next nominal measurement is at the next multiple of
                // T_M past the phase offset.
                let origin = SimTime::ZERO + self.phase;
                let since_origin = now.saturating_duration_since(origin);
                let periods = since_origin.as_nanos() / self.interval.as_nanos() + 1;
                self.nominal_due =
                    origin + SimDuration::from_nanos(periods * self.interval.as_nanos());
                self.next_due = self.nominal_due;
            }
        }
    }

    /// Fast-forwards the schedule past `now` *without* recording any
    /// completion: the measurements that were due meanwhile simply never
    /// happened (the device was powered off or absent from the network).
    ///
    /// Regular and lenient schedules stay phase-aligned — the next due time
    /// is the first `phase + k·T_M` (nominal window for lenient) strictly
    /// after `now`. Irregular schedules draw a fresh interval from `now`,
    /// exactly as [`MeasurementScheduler::mark_completed`] would.
    pub fn skip_until(&mut self, now: SimTime) {
        if self.next_due > now {
            return;
        }
        match &self.kind {
            ScheduleKind::Regular => {
                while self.next_due <= now {
                    self.next_due += self.interval;
                }
            }
            ScheduleKind::Irregular { lower, upper } => {
                self.drbg.reseed(&now.as_nanos().to_be_bytes());
                let nanos = self.drbg.next_in_range(lower.as_nanos(), upper.as_nanos());
                self.next_due = now + SimDuration::from_nanos(nanos);
            }
            ScheduleKind::Lenient { .. } => {
                let origin = SimTime::ZERO + self.phase;
                let since_origin = now.saturating_duration_since(origin);
                let periods = since_origin.as_nanos() / self.interval.as_nanos() + 1;
                self.nominal_due =
                    origin + SimDuration::from_nanos(periods * self.interval.as_nanos());
                self.next_due = self.nominal_due;
            }
        }
    }

    /// Defers the pending measurement because the device is busy with a
    /// time-critical task (Section 5).
    ///
    /// For lenient schedules the measurement nominally due at `D` may slide
    /// to the end of its window, `D + (w − 1) × T_M`. Returns the new due
    /// time, or `None` if the schedule does not permit deferral (regular and
    /// irregular schedules, `w = 1`, or the window already exhausted).
    pub fn defer(&mut self, now: SimTime) -> Option<SimTime> {
        match &self.kind {
            ScheduleKind::Lenient { window_factor } => {
                let slack =
                    SimDuration::from_secs_f64(self.interval.as_secs_f64() * (window_factor - 1.0));
                let window_end = self.nominal_due + slack;
                if self.next_due < window_end && now < window_end {
                    self.deferrals += 1;
                    self.next_due = window_end;
                    Some(self.next_due)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [3u8; 32];
    const TM: SimDuration = SimDuration::from_secs(10);

    #[test]
    fn regular_schedule_fires_every_interval() {
        let mut s = MeasurementScheduler::new(ScheduleKind::Regular, TM, &KEY);
        assert_eq!(s.next_due(), SimTime::from_secs(10));
        s.mark_completed(SimTime::from_secs(10));
        assert_eq!(s.next_due(), SimTime::from_secs(20));
        s.mark_completed(SimTime::from_secs(20));
        assert_eq!(s.next_due(), SimTime::from_secs(30));
        assert_eq!(s.completed(), 2);
    }

    #[test]
    fn phase_offset_staggers_regular_schedule() {
        let phase = SimDuration::from_secs(3);
        let mut s = MeasurementScheduler::new_with_phase(ScheduleKind::Regular, TM, &KEY, phase);
        assert_eq!(s.phase(), phase);
        assert_eq!(s.next_due(), SimTime::from_secs(13));
        s.mark_completed(SimTime::from_secs(13));
        assert_eq!(s.next_due(), SimTime::from_secs(23));
        // The catch-up path stays phase-aligned.
        s.mark_completed(SimTime::from_secs(47));
        assert_eq!(s.next_due(), SimTime::from_secs(53));
    }

    #[test]
    fn phase_offset_staggers_lenient_schedule() {
        let phase = SimDuration::from_secs(4);
        let mut s = MeasurementScheduler::new_with_phase(
            ScheduleKind::Lenient { window_factor: 2.0 },
            TM,
            &KEY,
            phase,
        );
        assert_eq!(s.next_due(), SimTime::from_secs(14));
        s.mark_completed(SimTime::from_secs(14));
        assert_eq!(s.next_due(), SimTime::from_secs(24));
        let deferred = s.defer(SimTime::from_secs(24)).expect("deferral granted");
        assert_eq!(deferred, SimTime::from_secs(34));
    }

    #[test]
    fn zero_phase_is_the_plain_schedule() {
        let mut plain = MeasurementScheduler::new(ScheduleKind::Regular, TM, &KEY);
        let mut phased = MeasurementScheduler::new_with_phase(
            ScheduleKind::Regular,
            TM,
            &KEY,
            SimDuration::ZERO,
        );
        for _ in 0..5 {
            assert_eq!(plain.next_due(), phased.next_due());
            let due = plain.next_due();
            plain.mark_completed(due);
            phased.mark_completed(due);
        }
    }

    #[test]
    #[should_panic(expected = "phase offset must lie within T_M")]
    fn phase_of_a_full_interval_panics() {
        let _ = MeasurementScheduler::new_with_phase(ScheduleKind::Regular, TM, &KEY, TM);
    }

    #[test]
    fn regular_schedule_catches_up_after_stall() {
        let mut s = MeasurementScheduler::new(ScheduleKind::Regular, TM, &KEY);
        // Prover was busy and only completes the measurement at t = 47 s.
        s.mark_completed(SimTime::from_secs(47));
        assert_eq!(s.next_due(), SimTime::from_secs(50));
    }

    #[test]
    fn irregular_schedule_respects_bounds_and_is_key_dependent() {
        let lower = SimDuration::from_secs(5);
        let upper = SimDuration::from_secs(15);
        let kind = ScheduleKind::Irregular { lower, upper };
        let mut a = MeasurementScheduler::new(kind.clone(), TM, &KEY);
        let mut b = MeasurementScheduler::new(kind.clone(), TM, &KEY);
        let mut c = MeasurementScheduler::new(kind, TM, &[7u8; 32]);

        let mut now = SimTime::ZERO;
        let mut a_intervals = Vec::new();
        let mut c_intervals = Vec::new();
        for _ in 0..50 {
            let due_a = a.next_due();
            let due_b = b.next_due();
            let due_c = c.next_due();
            // Same key → same unpredictable schedule; different key → (almost
            // surely) different schedule.
            assert_eq!(due_a, due_b);
            let gap = due_a.saturating_duration_since(now);
            assert!(gap >= lower && gap < upper, "gap {gap} outside bounds");
            a_intervals.push(due_a);
            c_intervals.push(due_c);
            now = due_a;
            a.mark_completed(due_a);
            b.mark_completed(due_b);
            c.mark_completed(due_c);
        }
        assert_ne!(a_intervals, c_intervals);
    }

    #[test]
    fn irregular_intervals_vary() {
        let kind = ScheduleKind::Irregular {
            lower: SimDuration::from_secs(5),
            upper: SimDuration::from_secs(15),
        };
        let mut s = MeasurementScheduler::new(kind, TM, &KEY);
        let mut gaps = Vec::new();
        let mut prev = SimTime::ZERO;
        for _ in 0..20 {
            let due = s.next_due();
            gaps.push(due.saturating_duration_since(prev));
            prev = due;
            s.mark_completed(due);
        }
        let first = gaps[0];
        assert!(
            gaps.iter().any(|g| *g != first),
            "intervals never varied: {gaps:?}"
        );
    }

    #[test]
    fn lenient_schedule_defers_to_window_end() {
        let mut s =
            MeasurementScheduler::new(ScheduleKind::Lenient { window_factor: 3.0 }, TM, &KEY);
        assert_eq!(s.next_due(), SimTime::from_secs(10));
        // The device is busy at t = 10; defer to the end of the 3×T_M window.
        let deferred = s.defer(SimTime::from_secs(10)).expect("deferral granted");
        assert_eq!(deferred, SimTime::from_secs(30));
        assert_eq!(s.deferrals(), 1);
        // Window exhausted: no further deferral.
        assert!(s.defer(SimTime::from_secs(30)).is_none());
        // Completing at the deferred time starts the next nominal window.
        s.mark_completed(SimTime::from_secs(30));
        assert_eq!(s.next_due(), SimTime::from_secs(40));
    }

    #[test]
    fn skip_until_fast_forwards_without_completions() {
        let phase = SimDuration::from_secs(3);
        let mut s = MeasurementScheduler::new_with_phase(ScheduleKind::Regular, TM, &KEY, phase);
        assert_eq!(s.next_due(), SimTime::from_secs(13));
        // Device offline until t = 47: due times 13/23/33/43 never happened.
        s.skip_until(SimTime::from_secs(47));
        assert_eq!(s.next_due(), SimTime::from_secs(53));
        assert_eq!(s.completed(), 0);
        // A skip into the past (or to now before the due time) is a no-op.
        s.skip_until(SimTime::from_secs(10));
        assert_eq!(s.next_due(), SimTime::from_secs(53));
    }

    #[test]
    fn skip_until_keeps_lenient_windows_phase_aligned() {
        let phase = SimDuration::from_secs(4);
        let mut s = MeasurementScheduler::new_with_phase(
            ScheduleKind::Lenient { window_factor: 2.0 },
            TM,
            &KEY,
            phase,
        );
        s.skip_until(SimTime::from_secs(31));
        assert_eq!(s.next_due(), SimTime::from_secs(34));
        // The post-skip window defers like any other nominal window.
        let deferred = s.defer(SimTime::from_secs(34)).expect("deferral granted");
        assert_eq!(deferred, SimTime::from_secs(44));
    }

    #[test]
    fn skip_until_redraws_irregular_intervals_in_bounds() {
        let lower = SimDuration::from_secs(5);
        let upper = SimDuration::from_secs(15);
        let mut s = MeasurementScheduler::new(ScheduleKind::Irregular { lower, upper }, TM, &KEY);
        s.skip_until(SimTime::from_secs(100));
        let gap = s
            .next_due()
            .saturating_duration_since(SimTime::from_secs(100));
        assert!(gap >= lower && gap < upper, "gap {gap} outside bounds");
    }

    #[test]
    fn regular_and_irregular_do_not_defer() {
        let mut regular = MeasurementScheduler::new(ScheduleKind::Regular, TM, &KEY);
        assert!(regular.defer(SimTime::from_secs(1)).is_none());
        let mut irregular = MeasurementScheduler::new(
            ScheduleKind::Irregular {
                lower: SimDuration::from_secs(1),
                upper: SimDuration::from_secs(2),
            },
            TM,
            &KEY,
        );
        assert!(irregular.defer(SimTime::from_secs(1)).is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ScheduleKind::Regular.to_string(), "regular");
        assert!(ScheduleKind::Lenient { window_factor: 2.0 }
            .to_string()
            .contains("w = 2"));
        let irregular = ScheduleKind::Irregular {
            lower: SimDuration::from_secs(1),
            upper: SimDuration::from_secs(2),
        };
        assert!(irregular.to_string().contains("irregular"));
    }

    #[test]
    #[should_panic(expected = "lower < upper")]
    fn invalid_irregular_bounds_panic() {
        let _ = MeasurementScheduler::new(
            ScheduleKind::Irregular {
                lower: SimDuration::from_secs(5),
                upper: SimDuration::from_secs(5),
            },
            TM,
            &KEY,
        );
    }

    #[test]
    #[should_panic(expected = "window factor")]
    fn invalid_window_factor_panics() {
        let _ = MeasurementScheduler::new(ScheduleKind::Lenient { window_factor: 0.5 }, TM, &KEY);
    }
}
