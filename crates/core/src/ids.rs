//! Device identifiers.

use std::fmt;

/// Identifier of a prover device.
///
/// In single-device deployments the identifier is informational; in swarm
/// deployments (`erasmus-swarm`) it keys the verifier's per-device state and
/// the topology graph.
///
/// # Example
///
/// ```
/// use erasmus_core::DeviceId;
///
/// let id = DeviceId::new(42);
/// assert_eq!(id.value(), 42);
/// assert_eq!(id.to_string(), "device-42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(u64);

impl DeviceId {
    /// Wraps a numeric identifier.
    pub const fn new(id: u64) -> Self {
        Self(id)
    }

    /// The numeric value.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "device-{}", self.0)
    }
}

impl From<u64> for DeviceId {
    fn from(id: u64) -> Self {
        Self(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let id = DeviceId::new(7);
        assert_eq!(id.value(), 7);
        assert_eq!(DeviceId::from(7u64), id);
        assert_eq!(id.to_string(), "device-7");
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(DeviceId::new(1) < DeviceId::new(2));
        let mut ids = vec![DeviceId::new(3), DeviceId::new(1), DeviceId::new(2)];
        ids.sort();
        assert_eq!(
            ids,
            vec![DeviceId::new(1), DeviceId::new(2), DeviceId::new(3)]
        );
    }
}
