//! Verifier-side history hub: per-device timelines for a whole fleet.
//!
//! A single [`crate::DeviceHistory`] reconstructs one device's state
//! timeline; an operator of an unattended swarm (Section 6) runs collections
//! against *thousands* of devices. [`VerifierHub`] is the map in front of
//! those histories: every [`CollectionReport`] produced during a run is
//! routed to the history of the device it is about, so the paper's "entire
//! history" property holds fleet-wide — and cross-device mixups are caught
//! instead of silently corrupting a neighbour's timeline.
//!
//! Hubs are cheap to create per worker/shard and can be [`merged`] back into
//! one fleet-wide view, which is how the parallel fleet harness in
//! `erasmus-bench` combines its per-thread shards.
//!
//! [`merged`]: VerifierHub::merge

use std::collections::{BTreeMap, BTreeSet};

use crate::encoding::{DecodeError, FrameView, ResponseView};
use crate::history::{DeviceHistory, HistoryMode};
use crate::ids::DeviceId;
use crate::report::CollectionReport;

/// How far the per-flow dedup window trails the highest sequence seen.
/// Retransmissions and duplicated deliveries always carry the sequence of a
/// recent transmission, so anything older than this is stale by construction
/// and treated as a duplicate.
pub const DEDUP_WINDOW: u64 = 1024;

/// Per-flow receive window backing the hub's exactly-once accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct FlowWindow {
    /// Sequences below this are stale: already accepted and pruned, or so
    /// old that accepting them could double-count.
    pub(crate) floor: u64,
    /// Sequences at or above `floor` already accepted.
    pub(crate) seen: BTreeSet<u64>,
}

impl FlowWindow {
    /// Records `sequence` if it is fresh; returns whether it was.
    fn note(&mut self, sequence: u64) -> bool {
        if sequence < self.floor || self.seen.contains(&sequence) {
            return false;
        }
        self.seen.insert(sequence);
        let horizon = sequence.saturating_sub(DEDUP_WINDOW);
        if horizon > self.floor {
            self.floor = horizon;
            self.seen = self.seen.split_off(&self.floor);
        }
        true
    }

    /// Folds another window over the same flow into this one.
    fn merge(&mut self, other: FlowWindow) {
        self.floor = self.floor.max(other.floor);
        self.seen.extend(other.seen);
        self.seen = self.seen.split_off(&self.floor);
    }
}

/// Per-batch accept/reject accounting returned by
/// [`VerifierHub::ingest_batch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchIngest {
    /// Reports folded into a device history.
    pub accepted: u64,
    /// Reports rejected by the per-device device-ID cross-check.
    pub rejected: u64,
}

impl BatchIngest {
    /// Total reports the batch carried.
    pub fn total(&self) -> u64 {
        self.accepted + self.rejected
    }
}

/// Per-frame accounting returned by [`VerifierHub::ingest_frame`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameIngest {
    /// Response records the frame carried.
    pub responses: u64,
    /// Reports folded into a device history.
    pub accepted: u64,
    /// Reports rejected by the per-device device-ID cross-check.
    pub rejected: u64,
    /// Response records the verify callback refused to turn into a report
    /// (failed MAC-level verification, unknown device, empty record, …).
    pub verify_failed: u64,
    /// Size of the decoded frame in bytes, including the count header.
    pub bytes: u64,
}

/// Per-device [`DeviceHistory`] map covering a fleet.
///
/// # Example
///
/// ```
/// use erasmus_core::{DeviceId, VerifierHub};
///
/// let hub = VerifierHub::new();
/// assert!(hub.is_empty());
/// assert!(hub.history(DeviceId::new(1)).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifierHub {
    pub(crate) histories: BTreeMap<DeviceId, DeviceHistory>,
    /// Retention mode every history this hub creates is born with.
    pub(crate) mode: HistoryMode,
    pub(crate) ingested: u64,
    pub(crate) rejected: u64,
    /// Sequenced frames rejected as duplicates by the dedup window.
    pub(crate) duplicates: u64,
    /// Per-flow receive windows for [`VerifierHub::ingest_sequenced_frame`].
    pub(crate) dedup: BTreeMap<u64, FlowWindow>,
}

impl Default for VerifierHub {
    fn default() -> Self {
        Self::with_history(HistoryMode::Unbounded)
    }
}

impl VerifierHub {
    /// Creates an empty hub with unbounded per-device histories.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty hub whose device histories follow `mode` — pass
    /// [`HistoryMode::Ring`] to cap per-device verifier state at O(capacity)
    /// regardless of fleet lifetime. A zero ring capacity is clamped to one,
    /// matching [`DeviceHistory::with_mode`], so the hub's mode always equals
    /// its histories' mode.
    pub fn with_history(mode: HistoryMode) -> Self {
        let mode = match mode {
            HistoryMode::Unbounded => HistoryMode::Unbounded,
            HistoryMode::Ring(capacity) => HistoryMode::Ring(capacity.max(1)),
        };
        Self {
            histories: BTreeMap::new(),
            mode,
            ingested: 0,
            rejected: 0,
            duplicates: 0,
            dedup: BTreeMap::new(),
        }
    }

    /// The retention mode histories created by this hub use.
    pub fn history_mode(&self) -> HistoryMode {
        self.mode
    }

    /// Ensures a (possibly empty) history exists for `device`, so that a
    /// fleet roster is visible even before its first collection.
    pub fn register(&mut self, device: DeviceId) {
        let mode = self.mode;
        self.histories
            .entry(device)
            .or_insert_with(|| DeviceHistory::with_mode(device, mode));
    }

    /// Routes a collection report to the history of the device it is about,
    /// creating that history on first contact.
    ///
    /// Returns `false` if the per-device history rejected the report (the
    /// [`DeviceHistory::ingest`] device-ID cross-check failed — impossible
    /// through this path unless the map was tampered with, but counted in
    /// [`VerifierHub::rejected`] as a defence-in-depth signal).
    pub fn ingest(&mut self, report: &CollectionReport) -> bool {
        let mode = self.mode;
        let history = self
            .histories
            .entry(report.device())
            .or_insert_with(|| DeviceHistory::with_mode(report.device(), mode));
        let accepted = history.ingest(report);
        if accepted {
            self.ingested += 1;
        } else {
            self.rejected += 1;
        }
        accepted
    }

    /// Folds a whole burst of collection reports — one network delivery
    /// event's worth — into the hub, amortizing the per-device routing.
    ///
    /// Reports are grouped by device first (a stable sort, so each device's
    /// reports keep their arrival order) and each device's history is looked
    /// up once per batch instead of once per report, which is what makes
    /// batched ingestion cheaper than repeated [`VerifierHub::ingest`] calls
    /// when collections arrive in stagger-group-sized bursts.
    ///
    /// Per-report accept/reject accounting is identical to the single-report
    /// path: the returned [`BatchIngest`] totals match what the counters
    /// advanced by.
    pub fn ingest_batch<'a, I>(&mut self, reports: I) -> BatchIngest
    where
        I: IntoIterator<Item = &'a CollectionReport>,
    {
        let mut batch: Vec<&CollectionReport> = reports.into_iter().collect();
        batch.sort_by_key(|report| report.device());
        let mut outcome = BatchIngest::default();
        let mut index = 0;
        while index < batch.len() {
            let device = batch[index].device();
            let mode = self.mode;
            let history = self
                .histories
                .entry(device)
                .or_insert_with(|| DeviceHistory::with_mode(device, mode));
            while index < batch.len() && batch[index].device() == device {
                if history.ingest(batch[index]) {
                    outcome.accepted += 1;
                } else {
                    outcome.rejected += 1;
                }
                index += 1;
            }
        }
        self.ingested += outcome.accepted;
        self.rejected += outcome.rejected;
        outcome
    }

    /// Wire-native ingestion: validates one batch frame zero-copy, has
    /// `verify` (which owns the per-device key material) check each response
    /// record straight off the frame, and folds the surviving reports in
    /// through [`VerifierHub::ingest_batch`] — so per-report accept/reject
    /// accounting is *literally* the struct path's accounting.
    ///
    /// `verify` is handed each [`ResponseView`] in wire order and returns
    /// the report to ingest, or `None` to drop the record (counted in
    /// [`FrameIngest::verify_failed`]) — e.g. for a record about an unknown
    /// device or one that fails MAC-level verification.
    ///
    /// # Errors
    ///
    /// Returns the [`DecodeError`] when the frame violates the strict codec
    /// contract. The hub is left completely untouched in that case: a frame
    /// either decodes as a whole or contributes nothing.
    pub fn ingest_frame<F>(&mut self, frame: &[u8], verify: F) -> Result<FrameIngest, DecodeError>
    where
        F: FnMut(ResponseView<'_>) -> Option<CollectionReport>,
    {
        let parsed = FrameView::parse(frame)?;
        Ok(self.ingest_parsed(&parsed, verify))
    }

    /// ARQ-aware wire ingestion: like [`VerifierHub::ingest_frame`], but the
    /// frame carries a `(flow, sequence)` identity checked against the hub's
    /// per-flow dedup window first, so retransmissions and duplicated
    /// deliveries are accepted **exactly once**.
    ///
    /// Returns `Ok(None)` — and counts the frame in
    /// [`VerifierHub::duplicates`] — when the window has already accepted
    /// this sequence (or it fell below the window floor and is stale by
    /// construction). Only a frame that decodes *and* is fresh advances the
    /// window: a corrupted retransmission neither consumes the sequence nor
    /// touches the hub, so the sender's next copy still goes through.
    ///
    /// The `Ok(Some(ingest))` outcome doubles as the hub's acknowledgement:
    /// in a live deployment this is the point where an ack for `(flow,
    /// sequence)` would be sent back to the collector.
    ///
    /// # Errors
    ///
    /// Returns the [`DecodeError`] when the frame violates the strict codec
    /// contract; the hub — including the dedup window — is left untouched.
    pub fn ingest_sequenced_frame<F>(
        &mut self,
        flow: u64,
        sequence: u64,
        frame: &[u8],
        verify: F,
    ) -> Result<Option<FrameIngest>, DecodeError>
    where
        F: FnMut(ResponseView<'_>) -> Option<CollectionReport>,
    {
        let parsed = FrameView::parse(frame)?;
        if !self.dedup.entry(flow).or_default().note(sequence) {
            self.duplicates += 1;
            return Ok(None);
        }
        Ok(Some(self.ingest_parsed(&parsed, verify)))
    }

    /// Shared tail of the frame-ingestion paths: verify each response off
    /// the already-validated frame and fold the survivors in.
    fn ingest_parsed<F>(&mut self, parsed: &FrameView<'_>, mut verify: F) -> FrameIngest
    where
        F: FnMut(ResponseView<'_>) -> Option<CollectionReport>,
    {
        let mut outcome = FrameIngest {
            responses: parsed.len() as u64,
            bytes: parsed.frame_len() as u64,
            ..FrameIngest::default()
        };
        let mut reports = Vec::with_capacity(parsed.len());
        for view in parsed.responses() {
            match verify(view) {
                Some(report) => reports.push(report),
                None => outcome.verify_failed += 1,
            }
        }
        let batch = self.ingest_batch(reports.iter());
        outcome.accepted = batch.accepted;
        outcome.rejected = batch.rejected;
        outcome
    }

    /// The history of one device, if any report (or registration) mentioned
    /// it.
    pub fn history(&self, device: DeviceId) -> Option<&DeviceHistory> {
        self.histories.get(&device)
    }

    /// Number of devices tracked.
    pub fn len(&self) -> usize {
        self.histories.len()
    }

    /// Whether no device is tracked yet.
    pub fn is_empty(&self) -> bool {
        self.histories.is_empty()
    }

    /// Iterator over the tracked histories in device order.
    pub fn histories(&self) -> impl Iterator<Item = &DeviceHistory> {
        self.histories.values()
    }

    /// Reports successfully folded in across all devices.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Reports rejected by the per-device device-ID cross-check.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Sequenced frames dropped by the dedup window as duplicates.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Total collection reports recorded across all device histories.
    pub fn total_collections(&self) -> u64 {
        self.histories.values().map(|h| h.collections()).sum()
    }

    /// Total distinct measurements ever recorded across all device
    /// histories, resident or evicted (lifetime count — invariant across
    /// retention modes).
    pub fn total_entries(&self) -> u64 {
        self.histories.values().map(|h| h.len() as u64).sum()
    }

    /// Total entries currently resident in the per-device rings. Equals
    /// [`VerifierHub::total_entries`] in unbounded mode; bounded by
    /// `devices × ring capacity` in ring mode.
    pub fn total_resident(&self) -> u64 {
        self.histories
            .values()
            .map(|h| h.resident_len() as u64)
            .sum()
    }

    /// Total entries sealed into per-device hash chains and evicted.
    /// Conservation: `total_evictions() + total_resident() ==
    /// total_entries()`.
    pub fn total_evictions(&self) -> u64 {
        self.histories.values().map(|h| h.evictions()).sum()
    }

    /// Total measurements discarded for predating an already-evicted
    /// window (ring mode only; always zero unbounded).
    pub fn total_stale_discards(&self) -> u64 {
        self.histories.values().map(|h| h.stale_discards()).sum()
    }

    /// Re-verifies every device's hash chain — `head == fold(chain,
    /// resident entries)` — and returns how many devices passed. A healthy
    /// hub returns [`VerifierHub::len`].
    pub fn verified_chains(&self) -> usize {
        self.histories.values().filter(|h| h.verify_chain()).count()
    }

    /// Devices whose timeline contains at least one non-healthy measurement,
    /// in device order.
    pub fn compromised_devices(&self) -> Vec<DeviceId> {
        self.histories
            .values()
            .filter(|h| h.first_compromise().is_some())
            .map(|h| h.device())
            .collect()
    }

    /// Whether every tracked device's timeline is entirely healthy.
    pub fn all_healthy(&self) -> bool {
        self.histories
            .values()
            .all(|h| h.first_compromise().is_none())
    }

    /// Absorbs another hub: disjoint devices are moved over wholesale,
    /// overlapping devices are combined entry-by-entry via
    /// [`DeviceHistory::merge_from`]. Ingestion counters are summed and
    /// per-flow dedup windows are unioned (sharded runs give each shard its
    /// own flows, so windows do not normally overlap).
    ///
    /// Both hubs must use the same [`HistoryMode`]; mixing modes would leave
    /// moved-over histories with a different retention policy than the
    /// receiving hub creates.
    pub fn merge(&mut self, other: VerifierHub) {
        debug_assert_eq!(
            self.mode, other.mode,
            "merged hubs must share a history mode"
        );
        self.ingested += other.ingested;
        self.rejected += other.rejected;
        self.duplicates += other.duplicates;
        for (flow, window) in other.dedup {
            match self.dedup.get_mut(&flow) {
                Some(existing) => existing.merge(window),
                None => {
                    self.dedup.insert(flow, window);
                }
            }
        }
        for (device, history) in other.histories {
            match self.histories.get_mut(&device) {
                Some(existing) => {
                    let merged = existing.merge_from(&history);
                    debug_assert!(merged, "map key always matches history device");
                }
                None => {
                    self.histories.insert(device, history);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProverConfig;
    use crate::protocol::CollectionRequest;
    use crate::prover::Prover;
    use crate::report::MeasurementVerdict;
    use crate::verifier::Verifier;
    use erasmus_crypto::MacAlgorithm;
    use erasmus_hw::{DeviceKey, DeviceProfile};
    use erasmus_sim::{SimDuration, SimTime};

    fn provision(id: u64) -> (Prover, Verifier) {
        let key = DeviceKey::derive(b"hub-test", id);
        let config = ProverConfig::builder()
            .measurement_interval(SimDuration::from_secs(10))
            .buffer_slots(16)
            .build()
            .expect("valid config");
        let prover = Prover::new(
            DeviceId::new(id),
            DeviceProfile::msp430_8mhz(512),
            key.clone(),
            config,
        )
        .expect("provisioning");
        let mut verifier = Verifier::new(key, MacAlgorithm::HmacSha256);
        verifier.learn_reference_image(prover.mcu().app_memory());
        verifier.set_expected_interval(SimDuration::from_secs(10));
        (prover, verifier)
    }

    fn collect(
        prover: &mut Prover,
        verifier: &mut Verifier,
        at_secs: u64,
        k: usize,
    ) -> CollectionReport {
        prover
            .run_until(SimTime::from_secs(at_secs))
            .expect("measurements");
        let response =
            prover.handle_collection(&CollectionRequest::latest(k), SimTime::from_secs(at_secs));
        verifier
            .verify_collection(&response, SimTime::from_secs(at_secs))
            .expect("report")
    }

    #[test]
    fn routes_reports_to_per_device_histories() {
        let mut hub = VerifierHub::new();
        for id in 0..4u64 {
            let (mut prover, mut verifier) = provision(id);
            let report = collect(&mut prover, &mut verifier, 40, 4);
            assert!(hub.ingest(&report));
        }
        assert_eq!(hub.len(), 4);
        assert_eq!(hub.ingested(), 4);
        assert_eq!(hub.rejected(), 0);
        assert_eq!(hub.total_collections(), 4);
        assert_eq!(hub.total_entries(), 16);
        assert!(hub.all_healthy());
        for id in 0..4u64 {
            let history = hub.history(DeviceId::new(id)).expect("tracked");
            assert_eq!(history.device(), DeviceId::new(id));
            assert_eq!(history.len(), 4);
        }
    }

    #[test]
    fn register_makes_silent_devices_visible() {
        let mut hub = VerifierHub::new();
        hub.register(DeviceId::new(9));
        assert_eq!(hub.len(), 1);
        let history = hub.history(DeviceId::new(9)).expect("registered");
        assert!(history.is_empty());
        assert!(hub.all_healthy());
    }

    #[test]
    fn compromised_device_is_singled_out() {
        let mut hub = VerifierHub::new();
        let (mut healthy_p, mut healthy_v) = provision(1);
        assert!(hub.ingest(&collect(&mut healthy_p, &mut healthy_v, 40, 4)));

        let (mut sick_p, mut sick_v) = provision(2);
        sick_p.run_until(SimTime::from_secs(20)).expect("run");
        sick_p
            .mcu_mut()
            .write_app_memory(0, b"implant")
            .expect("infect");
        assert!(hub.ingest(&collect(&mut sick_p, &mut sick_v, 40, 4)));

        assert!(!hub.all_healthy());
        assert_eq!(hub.compromised_devices(), vec![DeviceId::new(2)]);
        let history = hub.history(DeviceId::new(2)).expect("tracked");
        assert!(history.count(MeasurementVerdict::Compromised) >= 1);
        // The healthy neighbour's timeline is untouched.
        let neighbour = hub.history(DeviceId::new(1)).expect("tracked");
        assert_eq!(neighbour.count(MeasurementVerdict::Healthy), 4);
        assert!(neighbour.first_compromise().is_none());
    }

    #[test]
    fn batch_ingest_matches_per_report_ingest() {
        // Build one burst: two windows for device 0, one each for 1 and 2,
        // deliberately interleaved so the batch path has to group them.
        let mut reports = Vec::new();
        let (mut p0, mut v0) = provision(0);
        let (mut p1, mut v1) = provision(1);
        let (mut p2, mut v2) = provision(2);
        reports.push(collect(&mut p0, &mut v0, 40, 4));
        reports.push(collect(&mut p1, &mut v1, 40, 4));
        reports.push(collect(&mut p0, &mut v0, 80, 4));
        reports.push(collect(&mut p2, &mut v2, 40, 4));

        let mut batched = VerifierHub::new();
        let outcome = batched.ingest_batch(reports.iter());
        assert_eq!(outcome.accepted, 4);
        assert_eq!(outcome.rejected, 0);
        assert_eq!(outcome.total(), 4);

        let mut sequential = VerifierHub::new();
        for report in &reports {
            assert!(sequential.ingest(report));
        }
        assert_eq!(batched, sequential);
        assert_eq!(batched.ingested(), 4);
        assert_eq!(batched.total_collections(), 4);
        assert_eq!(batched.history(DeviceId::new(0)).expect("tracked").len(), 8);
    }

    #[test]
    fn wire_batch_decodes_verifies_and_ingests_end_to_end() {
        // The full networked-hub pipeline over the batch framing: provers
        // answer collections, the responses cross the wire as one batch
        // frame, the receiving side decodes, verifies each response and
        // folds the burst in via ingest_batch.
        use crate::encoding::{decode_collection_batch, encode_collection_batch};
        use crate::protocol::CollectionResponse;

        let mut responses: Vec<CollectionResponse> = Vec::new();
        let mut verifiers = Vec::new();
        for id in 0..3u64 {
            let (mut prover, verifier) = provision(id);
            prover.run_until(SimTime::from_secs(40)).expect("runs");
            responses.push(
                prover.handle_collection(&CollectionRequest::latest(4), SimTime::from_secs(40)),
            );
            verifiers.push(verifier);
        }

        let frame = encode_collection_batch(&responses);
        let decoded = decode_collection_batch(&frame).expect("frame decodes");
        assert_eq!(decoded.len(), 3);

        let reports: Vec<CollectionReport> = decoded
            .iter()
            .zip(verifiers.iter_mut())
            .map(|(response, verifier)| {
                verifier
                    .verify_collection(response, SimTime::from_secs(40))
                    .expect("decoded response verifies")
            })
            .collect();
        assert!(reports.iter().all(CollectionReport::all_valid));

        let mut hub = VerifierHub::new();
        let outcome = hub.ingest_batch(reports.iter());
        assert_eq!(outcome.accepted, 3);
        assert_eq!(hub.len(), 3);
        assert_eq!(hub.total_entries(), 12);
        assert!(hub.all_healthy());
    }

    #[test]
    fn ingest_frame_matches_struct_path_bit_identically() {
        use crate::encoding::encode_collection_batch;
        use crate::protocol::{CollectionRequest, CollectionResponse};

        let mut responses: Vec<CollectionResponse> = Vec::new();
        let mut verifiers = Vec::new();
        for id in 0..3u64 {
            let (mut prover, verifier) = provision(id);
            prover.run_until(SimTime::from_secs(40)).expect("runs");
            responses.push(
                prover.handle_collection(&CollectionRequest::latest(4), SimTime::from_secs(40)),
            );
            verifiers.push(verifier);
        }
        let frame = encode_collection_batch(&responses);

        // Struct path: decode, verify, ingest_batch.
        let mut struct_hub = VerifierHub::new();
        let mut struct_verifiers = verifiers.clone();
        let reports: Vec<CollectionReport> = responses
            .iter()
            .zip(struct_verifiers.iter_mut())
            .map(|(response, verifier)| {
                verifier
                    .verify_collection(response, SimTime::from_secs(40))
                    .expect("verifies")
            })
            .collect();
        let struct_outcome = struct_hub.ingest_batch(reports.iter());

        // Frame path: verify straight off the frame inside ingest_frame.
        let mut frame_hub = VerifierHub::new();
        let outcome = frame_hub
            .ingest_frame(&frame, |view| {
                let verifier = &mut verifiers[view.device().value() as usize];
                Some(
                    verifier
                        .verify_frame_response(&view, SimTime::from_secs(40))
                        .expect("verifies"),
                )
            })
            .expect("frame decodes");

        assert_eq!(outcome.responses, 3);
        assert_eq!(outcome.accepted, struct_outcome.accepted);
        assert_eq!(outcome.rejected, struct_outcome.rejected);
        assert_eq!(outcome.verify_failed, 0);
        assert_eq!(outcome.bytes, frame.len() as u64);
        assert_eq!(frame_hub, struct_hub);
        for (a, b) in struct_verifiers.iter().zip(&verifiers) {
            assert_eq!(a.last_collection(), b.last_collection());
        }
    }

    #[test]
    fn malformed_frame_leaves_hub_untouched() {
        use crate::encoding::{encode_collection_batch, DecodeErrorKind};
        use crate::protocol::CollectionRequest;

        let (mut prover, mut verifier) = provision(0);
        prover.run_until(SimTime::from_secs(40)).expect("runs");
        let response =
            prover.handle_collection(&CollectionRequest::latest(4), SimTime::from_secs(40));
        let mut frame = encode_collection_batch(std::slice::from_ref(&response));
        frame.truncate(frame.len() - 1);

        let mut hub = VerifierHub::new();
        let err = hub
            .ingest_frame(&frame, |view| {
                verifier
                    .verify_frame_response(&view, SimTime::from_secs(40))
                    .ok()
            })
            .unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::Truncated);
        assert!(hub.is_empty());
        assert_eq!(hub.ingested(), 0);
        assert_eq!(hub.rejected(), 0);
    }

    #[test]
    fn verify_failures_are_counted_not_ingested() {
        use crate::encoding::encode_collection_batch;
        use crate::protocol::CollectionRequest;

        let (mut prover, mut verifier) = provision(0);
        prover.run_until(SimTime::from_secs(40)).expect("runs");
        let response =
            prover.handle_collection(&CollectionRequest::latest(4), SimTime::from_secs(40));
        let mut frame = encode_collection_batch(std::slice::from_ref(&response));
        // Flip a digest byte: the frame still parses, the MAC check fails,
        // and the callback sees a tampering report it chooses to drop.
        // Layout: count(2) + device(8) + mcount(2) + t(8) + dlen(2) puts the
        // first digest byte at offset 22.
        frame[22] ^= 0x01;

        let mut hub = VerifierHub::new();
        let outcome = hub
            .ingest_frame(&frame, |view| {
                use crate::report::AttestationVerdict;
                let report = verifier
                    .verify_frame_response(&view, SimTime::from_secs(40))
                    .expect("still a report");
                assert_eq!(report.verdict(), AttestationVerdict::TamperingDetected);
                None
            })
            .expect("frame decodes");
        assert_eq!(outcome.responses, 1);
        assert_eq!(outcome.verify_failed, 1);
        assert_eq!(outcome.accepted, 0);
        assert!(hub.is_empty());
    }

    #[test]
    fn sequenced_frames_are_accepted_exactly_once() {
        use crate::encoding::encode_collection_batch;
        use crate::protocol::CollectionRequest;

        let (mut prover, mut verifier) = provision(0);
        prover.run_until(SimTime::from_secs(40)).expect("runs");
        let response =
            prover.handle_collection(&CollectionRequest::latest(4), SimTime::from_secs(40));
        let frame = encode_collection_batch(std::slice::from_ref(&response));

        let mut hub = VerifierHub::new();
        let mut verify = |view: ResponseView<'_>| {
            verifier
                .verify_frame_response(&view, SimTime::from_secs(40))
                .ok()
        };
        let first = hub
            .ingest_sequenced_frame(7, 0, &frame, &mut verify)
            .expect("decodes")
            .expect("fresh");
        assert_eq!(first.accepted, 1);
        assert_eq!(hub.ingested(), 1);

        // The duplicated delivery (or a retransmission whose ack was lost)
        // is rejected by the window, not double-counted.
        let echo = hub
            .ingest_sequenced_frame(7, 0, &frame, &mut verify)
            .expect("decodes");
        assert!(echo.is_none());
        assert_eq!(hub.duplicates(), 1);
        assert_eq!(hub.ingested(), 1);
        assert_eq!(hub.total_collections(), 1);

        // A later sequence on the same flow and the same sequence on another
        // flow are both fresh.
        assert!(hub
            .ingest_sequenced_frame(7, 1, &frame, &mut verify)
            .expect("decodes")
            .is_some());
        assert!(hub
            .ingest_sequenced_frame(8, 0, &frame, &mut verify)
            .expect("decodes")
            .is_some());
        assert_eq!(hub.duplicates(), 1);
    }

    #[test]
    fn corrupted_sequenced_frame_does_not_consume_the_sequence() {
        use crate::encoding::encode_collection_batch;
        use crate::protocol::CollectionRequest;

        let (mut prover, mut verifier) = provision(0);
        prover.run_until(SimTime::from_secs(40)).expect("runs");
        let response =
            prover.handle_collection(&CollectionRequest::latest(4), SimTime::from_secs(40));
        let frame = encode_collection_batch(std::slice::from_ref(&response));
        let mut corrupted = frame.clone();
        corrupted[0] ^= 0xff; // count header: guaranteed decode failure

        let mut hub = VerifierHub::new();
        let mut verify = |view: ResponseView<'_>| {
            verifier
                .verify_frame_response(&view, SimTime::from_secs(40))
                .ok()
        };
        // The corrupted first attempt is rejected wholesale...
        assert!(hub
            .ingest_sequenced_frame(7, 0, &corrupted, &mut verify)
            .is_err());
        assert!(hub.is_empty());
        assert_eq!(hub.duplicates(), 0);
        // ...and the clean retransmission of the same sequence still lands.
        let retry = hub
            .ingest_sequenced_frame(7, 0, &frame, &mut verify)
            .expect("decodes");
        assert!(retry.is_some());
        assert_eq!(hub.ingested(), 1);
    }

    #[test]
    fn snapshot_roundtrip_preserves_live_ingestion_state() {
        use crate::encoding::{decode_hub_snapshot, encode_collection_batch, encode_hub_snapshot};
        use crate::protocol::CollectionRequest;

        let (mut prover, mut verifier) = provision(0);
        prover.run_until(SimTime::from_secs(40)).expect("runs");
        let response =
            prover.handle_collection(&CollectionRequest::latest(4), SimTime::from_secs(40));
        let frame = encode_collection_batch(std::slice::from_ref(&response));

        let mut hub = VerifierHub::new();
        let mut verify = |view: ResponseView<'_>| {
            verifier
                .verify_frame_response(&view, SimTime::from_secs(40))
                .ok()
        };
        for sequence in [0u64, 1, 1, 3] {
            let _ = hub
                .ingest_sequenced_frame(7, sequence, &frame, &mut verify)
                .expect("decodes");
        }
        assert_eq!(hub.duplicates(), 1);

        // Crash: all that survives is the snapshot bytes.
        let snapshot = encode_hub_snapshot(&hub);
        let restored = decode_hub_snapshot(&snapshot).expect("snapshot decodes");
        assert_eq!(restored, hub);

        // The restored hub still deduplicates pre-crash sequences and still
        // accepts fresh ones — exactly-once accounting survives the crash.
        let mut hub = restored;
        assert!(hub
            .ingest_sequenced_frame(7, 1, &frame, &mut verify)
            .expect("decodes")
            .is_none());
        assert!(hub
            .ingest_sequenced_frame(7, 4, &frame, &mut verify)
            .expect("decodes")
            .is_some());
        assert_eq!(hub.duplicates(), 2);
    }

    #[test]
    fn dedup_window_treats_sequences_below_the_floor_as_stale() {
        let mut window = FlowWindow::default();
        assert!(window.note(0));
        assert!(window.note(DEDUP_WINDOW + 5));
        assert_eq!(window.floor, 5);
        // Replays of pruned or below-floor sequences are stale.
        assert!(!window.note(0));
        assert!(!window.note(4));
        // In-window sequences are still tracked individually.
        assert!(window.note(5));
        assert!(!window.note(5));
        assert!(!window.note(DEDUP_WINDOW + 5));
    }

    #[test]
    fn merge_carries_dedup_state_and_duplicate_counts() {
        use crate::encoding::encode_collection_batch;
        use crate::protocol::CollectionRequest;

        let (mut prover, mut verifier) = provision(0);
        prover.run_until(SimTime::from_secs(40)).expect("runs");
        let response =
            prover.handle_collection(&CollectionRequest::latest(4), SimTime::from_secs(40));
        let frame = encode_collection_batch(std::slice::from_ref(&response));

        let mut a = VerifierHub::new();
        let mut b = VerifierHub::new();
        let mut verify = |view: ResponseView<'_>| {
            verifier
                .verify_frame_response(&view, SimTime::from_secs(40))
                .ok()
        };
        assert!(a
            .ingest_sequenced_frame(1, 0, &frame, &mut verify)
            .expect("decodes")
            .is_some());
        assert!(b
            .ingest_sequenced_frame(2, 0, &frame, &mut verify)
            .expect("decodes")
            .is_some());
        assert!(b
            .ingest_sequenced_frame(2, 0, &frame, &mut verify)
            .expect("decodes")
            .is_none());

        a.merge(b);
        assert_eq!(a.duplicates(), 1);
        // The merged hub still remembers both flows' accepted sequences.
        assert!(a
            .ingest_sequenced_frame(1, 0, &frame, &mut verify)
            .expect("decodes")
            .is_none());
        assert!(a
            .ingest_sequenced_frame(2, 0, &frame, &mut verify)
            .expect("decodes")
            .is_none());
        assert_eq!(a.duplicates(), 3);
        assert_eq!(a.ingested(), 2);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut hub = VerifierHub::new();
        let outcome = hub.ingest_batch(std::iter::empty());
        assert_eq!(outcome, BatchIngest::default());
        assert!(hub.is_empty());
        assert_eq!(hub.ingested(), 0);
    }

    #[test]
    fn merge_combines_disjoint_and_overlapping_hubs() {
        // Shard A: devices 0 and 1 (first collection window).
        let mut a = VerifierHub::new();
        // Shard B: devices 1 (second window) and 2.
        let mut b = VerifierHub::new();

        let (mut p0, mut v0) = provision(0);
        assert!(a.ingest(&collect(&mut p0, &mut v0, 40, 4)));
        let (mut p1, mut v1) = provision(1);
        assert!(a.ingest(&collect(&mut p1, &mut v1, 40, 4)));
        assert!(b.ingest(&collect(&mut p1, &mut v1, 80, 4)));
        let (mut p2, mut v2) = provision(2);
        assert!(b.ingest(&collect(&mut p2, &mut v2, 40, 4)));

        a.merge(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.ingested(), 4);
        assert_eq!(a.total_collections(), 4);
        // Device 1 got both windows: t = 10..40 and t = 50..80.
        let overlapping = a.history(DeviceId::new(1)).expect("tracked");
        assert_eq!(overlapping.len(), 8);
        assert_eq!(overlapping.collections(), 2);
    }

    #[test]
    fn ring_hub_matches_unbounded_totals_with_bounded_state() {
        let mut ring = VerifierHub::with_history(HistoryMode::Ring(2));
        let mut unbounded = VerifierHub::new();
        for id in 0..3u64 {
            let (mut prover, mut verifier) = provision(id);
            for at in [40u64, 80] {
                let report = collect(&mut prover, &mut verifier, at, 4);
                assert!(ring.ingest(&report));
                assert!(unbounded.ingest(&report));
            }
        }
        // Lifetime totals are invariant across retention modes...
        assert_eq!(ring.total_entries(), unbounded.total_entries());
        assert_eq!(ring.total_collections(), unbounded.total_collections());
        assert_eq!(ring.ingested(), unbounded.ingested());
        // ...while resident state is capped and the remainder is sealed.
        assert_eq!(ring.total_resident(), 6); // 3 devices × capacity 2
        assert_eq!(
            ring.total_evictions() + ring.total_resident(),
            ring.total_entries()
        );
        assert_eq!(ring.total_stale_discards(), 0);
        assert_eq!(ring.verified_chains(), ring.len());
        // Ring heads equal unbounded heads: eviction never changes them.
        for (compact, full) in ring.histories().zip(unbounded.histories()) {
            assert_eq!(compact.head_digest(), full.head_digest());
        }
    }
}
