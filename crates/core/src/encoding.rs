//! Wire format for measurements and protocol messages.
//!
//! The paper's prover answers collections over UDP (Table 2 prices packet
//! construction and transmission separately). This module defines the byte
//! layout used by the reproduction so that collection responses can actually
//! be serialized, sized and parsed — and so the verifier can be fed bytes
//! that crossed an untrusted network rather than in-memory structs.
//!
//! All integers are big-endian. A serialized measurement is:
//!
//! ```text
//! +---------+------------+-----------------+-----------+---------------+
//! | t: u64  | dlen: u16  | digest (dlen B) | tlen: u16 | tag (tlen B)  |
//! +---------+------------+-----------------+-----------+---------------+
//! ```
//!
//! A collection response is the device id (u64), a measurement count (u16)
//! and that many measurements back to back.
//!
//! A collection *batch* is a response count (u16, at most
//! [`MAX_BATCH_RESPONSES`]) followed by that many responses back to back.
//! It is the wire frame for one hub delivery burst — the same unit
//! [`crate::VerifierHub::ingest_batch`] consumes after verification. The
//! in-process fleet harness hands verified reports over in memory; this
//! framing is the serialization boundary for a networked hub front-end
//! (decode → verify each response → `ingest_batch`), and the batch tests
//! below drive that full pipeline.

use std::fmt;

use erasmus_crypto::{MacTag, MAX_TAG_LEN};
use erasmus_sim::{SimDuration, SimTime};

use crate::ids::DeviceId;
use crate::measurement::{Measurement, MemoryDigest, DIGEST_LEN};
use crate::protocol::CollectionResponse;

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong.
    reason: String,
    /// Byte offset at which decoding failed.
    offset: usize,
}

impl DecodeError {
    fn new(reason: impl Into<String>, offset: usize) -> Self {
        Self {
            reason: reason.into(),
            offset,
        }
    }

    /// Byte offset at which decoding failed.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for DecodeError {}

// Digest and tag lengths are bounded by the fixed-size in-memory types: a
// digest is always 32 bytes of SHA-256, and no supported MAC produces a tag
// longer than `MAX_TAG_LEN`. Anything else can only come from corrupted or
// hostile input and is rejected before allocation.

struct Reader<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, offset: 0 }
    }

    fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8], DecodeError> {
        if self.offset + len > self.bytes.len() {
            return Err(DecodeError::new(
                format!("truncated while reading {what} ({len} bytes needed)"),
                self.offset,
            ));
        }
        let slice = &self.bytes[self.offset..self.offset + len];
        self.offset += len;
        Ok(slice)
    }

    fn u64(&mut self, what: &str) -> Result<u64, DecodeError> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_be_bytes(
            bytes.try_into().expect("slice length is 8"),
        ))
    }

    fn u16(&mut self, what: &str) -> Result<u16, DecodeError> {
        let bytes = self.take(2, what)?;
        Ok(u16::from_be_bytes(
            bytes.try_into().expect("slice length is 2"),
        ))
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.offset != self.bytes.len() {
            return Err(DecodeError::new(
                format!(
                    "{} trailing bytes after message",
                    self.bytes.len() - self.offset
                ),
                self.offset,
            ));
        }
        Ok(())
    }
}

/// Serializes one measurement.
pub fn encode_measurement(measurement: &Measurement) -> Vec<u8> {
    let digest = measurement.digest();
    let tag = measurement.tag().as_bytes();
    let mut out = Vec::with_capacity(8 + 2 + digest.len() + 2 + tag.len());
    out.extend_from_slice(&measurement.timestamp().as_nanos().to_be_bytes());
    out.extend_from_slice(&(digest.len() as u16).to_be_bytes());
    out.extend_from_slice(digest);
    out.extend_from_slice(&(tag.len() as u16).to_be_bytes());
    out.extend_from_slice(tag);
    out
}

fn decode_measurement_from(reader: &mut Reader<'_>) -> Result<Measurement, DecodeError> {
    let timestamp = reader.u64("timestamp")?;
    let digest_len = reader.u16("digest length")? as usize;
    if digest_len != DIGEST_LEN {
        return Err(DecodeError::new(
            format!("implausible digest length {digest_len}"),
            reader.offset,
        ));
    }
    let mut digest = MemoryDigest::default();
    digest.copy_from_slice(reader.take(digest_len, "digest")?);
    let tag_len = reader.u16("tag length")? as usize;
    if tag_len == 0 || tag_len > MAX_TAG_LEN {
        return Err(DecodeError::new(
            format!("implausible tag length {tag_len}"),
            reader.offset,
        ));
    }
    let tag = reader.take(tag_len, "tag")?;
    Ok(Measurement::from_parts(
        SimTime::from_nanos(timestamp),
        digest,
        MacTag::new(tag),
    ))
}

/// Parses one measurement, rejecting trailing bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated input, implausible field lengths
/// or trailing garbage. A successfully decoded measurement still needs MAC
/// verification — decoding performs no cryptography.
pub fn decode_measurement(bytes: &[u8]) -> Result<Measurement, DecodeError> {
    let mut reader = Reader::new(bytes);
    let measurement = decode_measurement_from(&mut reader)?;
    reader.finish()?;
    Ok(measurement)
}

/// Serializes a collection response (the prover → verifier UDP payload).
pub fn encode_collection_response(response: &CollectionResponse) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(8 + 2 + response.payload_bytes() + 4 * response.measurements.len());
    out.extend_from_slice(&response.device.value().to_be_bytes());
    out.extend_from_slice(&(response.measurements.len() as u16).to_be_bytes());
    for measurement in &response.measurements {
        out.extend_from_slice(&encode_measurement(measurement));
    }
    out
}

/// Parses a collection response.
///
/// The prover-time field is not on the wire (it is a simulation artefact);
/// the decoded response carries [`SimDuration::ZERO`] there.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated input, implausible counts or
/// trailing garbage.
pub fn decode_collection_response(bytes: &[u8]) -> Result<CollectionResponse, DecodeError> {
    let mut reader = Reader::new(bytes);
    let response = decode_collection_response_from(&mut reader)?;
    reader.finish()?;
    Ok(response)
}

/// Largest number of responses one batch frame may carry. Mirrors the
/// exact-digest-length rule: an implausible count can only come from
/// corrupted or hostile input and is rejected before any allocation.
pub const MAX_BATCH_RESPONSES: usize = 1024;

fn decode_collection_response_from(
    reader: &mut Reader<'_>,
) -> Result<CollectionResponse, DecodeError> {
    let device = reader.u64("device id")?;
    let count = reader.u16("measurement count")? as usize;
    let mut measurements = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        measurements.push(decode_measurement_from(reader)?);
    }
    Ok(CollectionResponse {
        device: DeviceId::new(device),
        measurements,
        prover_time: SimDuration::ZERO,
    })
}

/// Serializes a burst of collection responses as one batch frame — what a
/// single hub delivery event carries on the wire before each response is
/// verified and the reports are folded in via
/// [`crate::VerifierHub::ingest_batch`].
///
/// # Panics
///
/// Panics if `responses` exceeds [`MAX_BATCH_RESPONSES`]; split larger
/// bursts into multiple frames.
pub fn encode_collection_batch(responses: &[CollectionResponse]) -> Vec<u8> {
    assert!(
        responses.len() <= MAX_BATCH_RESPONSES,
        "batch of {} responses exceeds MAX_BATCH_RESPONSES ({MAX_BATCH_RESPONSES})",
        responses.len()
    );
    let mut out = Vec::new();
    out.extend_from_slice(&(responses.len() as u16).to_be_bytes());
    for response in responses {
        out.extend_from_slice(&encode_collection_response(response));
    }
    out
}

/// Parses a batch frame.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated input, a batch count above
/// [`MAX_BATCH_RESPONSES`], any malformed inner response, or trailing
/// garbage — so a frame either parses completely or not at all.
pub fn decode_collection_batch(bytes: &[u8]) -> Result<Vec<CollectionResponse>, DecodeError> {
    let mut reader = Reader::new(bytes);
    let count = reader.u16("batch count")? as usize;
    if count > MAX_BATCH_RESPONSES {
        return Err(DecodeError::new(
            format!("implausible batch count {count}"),
            0,
        ));
    }
    let mut responses = Vec::with_capacity(count);
    for _ in 0..count {
        responses.push(decode_collection_response_from(&mut reader)?);
    }
    reader.finish()?;
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use erasmus_crypto::MacAlgorithm;

    const KEY: [u8; 32] = [0x33u8; 32];

    fn sample(secs: u64) -> Measurement {
        Measurement::compute(
            &KEY,
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(secs),
            b"mem",
        )
    }

    #[test]
    fn measurement_roundtrip() {
        let original = sample(1234);
        let bytes = encode_measurement(&original);
        assert_eq!(bytes.len(), original.wire_size() + 4);
        let decoded = decode_measurement(&bytes).expect("decodes");
        assert_eq!(decoded, original);
        assert!(decoded.verify(&KEY, MacAlgorithm::HmacSha256));
    }

    #[test]
    fn collection_response_roundtrip() {
        let response = CollectionResponse {
            device: DeviceId::new(42),
            measurements: vec![sample(30), sample(20), sample(10)],
            prover_time: SimDuration::from_micros(15),
        };
        let bytes = encode_collection_response(&response);
        let decoded = decode_collection_response(&bytes).expect("decodes");
        assert_eq!(decoded.device, DeviceId::new(42));
        assert_eq!(decoded.measurements, response.measurements);
        assert_eq!(decoded.prover_time, SimDuration::ZERO);
    }

    #[test]
    fn empty_response_roundtrip() {
        let response = CollectionResponse {
            device: DeviceId::new(7),
            measurements: Vec::new(),
            prover_time: SimDuration::ZERO,
        };
        let decoded =
            decode_collection_response(&encode_collection_response(&response)).expect("decodes");
        assert!(decoded.measurements.is_empty());
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = encode_measurement(&sample(5));
        for len in [0usize, 1, 7, 9, bytes.len() - 1] {
            let err = decode_measurement(&bytes[..len]).unwrap_err();
            assert!(err.to_string().contains("decode error"), "{err}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_measurement(&sample(5));
        bytes.push(0xff);
        let err = decode_measurement(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn implausible_lengths_are_rejected() {
        // Hand-craft a measurement header with an absurd digest length.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&5u64.to_be_bytes());
        bytes.extend_from_slice(&60000u16.to_be_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let err = decode_measurement(&bytes).unwrap_err();
        assert!(err.to_string().contains("implausible digest length"));
        assert!(err.offset() >= 10);
    }

    #[test]
    fn wrong_count_in_response_is_rejected() {
        let response = CollectionResponse {
            device: DeviceId::new(1),
            measurements: vec![sample(1)],
            prover_time: SimDuration::ZERO,
        };
        let mut bytes = encode_collection_response(&response);
        // Claim two measurements but provide one.
        bytes[9] = 2;
        assert!(decode_collection_response(&bytes).is_err());
    }

    #[test]
    fn decoded_tampered_bytes_fail_mac_verification() {
        let original = sample(99);
        let mut bytes = encode_measurement(&original);
        // Flip one digest byte on the wire.
        bytes[12] ^= 0x01;
        let decoded = decode_measurement(&bytes).expect("still well-formed");
        assert!(!decoded.verify(&KEY, MacAlgorithm::HmacSha256));
    }

    fn sample_response(device: u64, count: usize) -> CollectionResponse {
        CollectionResponse {
            device: DeviceId::new(device),
            measurements: (0..count).map(|i| sample(10 * (i as u64 + 1))).collect(),
            prover_time: SimDuration::ZERO,
        }
    }

    #[test]
    fn batch_roundtrip() {
        let batch = vec![
            sample_response(1, 3),
            sample_response(2, 0),
            sample_response(7, 1),
        ];
        let bytes = encode_collection_batch(&batch);
        let decoded = decode_collection_batch(&bytes).expect("decodes");
        assert_eq!(decoded, batch);

        let empty = decode_collection_batch(&encode_collection_batch(&[])).expect("decodes");
        assert!(empty.is_empty());
    }

    #[test]
    fn oversized_batch_count_is_rejected() {
        let mut bytes = ((MAX_BATCH_RESPONSES + 1) as u16).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 64]);
        let err = decode_collection_batch(&bytes).unwrap_err();
        assert!(err.to_string().contains("implausible batch count"), "{err}");
    }

    #[test]
    fn batch_with_missing_response_is_rejected() {
        let mut bytes = encode_collection_batch(&[sample_response(1, 1)]);
        // Claim two responses but carry one.
        bytes[1] = 2;
        let err = decode_collection_batch(&bytes).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use erasmus_crypto::MAX_TAG_LEN;
    use proptest::prelude::*;

    fn arb_measurement() -> impl Strategy<Value = Measurement> {
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), DIGEST_LEN),
            proptest::collection::vec(any::<u8>(), 1..=MAX_TAG_LEN),
        )
            .prop_map(|(nanos, digest_bytes, tag_bytes)| {
                let mut digest = MemoryDigest::default();
                digest.copy_from_slice(&digest_bytes);
                Measurement::from_parts(SimTime::from_nanos(nanos), digest, MacTag::new(&tag_bytes))
            })
    }

    fn arb_response() -> impl Strategy<Value = CollectionResponse> {
        (
            any::<u64>(),
            proptest::collection::vec(arb_measurement(), 0..8),
        )
            .prop_map(|(device, measurements)| CollectionResponse {
                device: DeviceId::new(device),
                measurements,
                prover_time: SimDuration::ZERO,
            })
    }

    proptest! {
        /// Any well-formed measurement survives the wire byte-for-byte.
        #[test]
        fn measurement_roundtrips(measurement in arb_measurement()) {
            let bytes = encode_measurement(&measurement);
            prop_assert_eq!(decode_measurement(&bytes).unwrap(), measurement);
        }

        /// Any well-formed response — including ones with zero
        /// measurements — survives the wire.
        #[test]
        fn response_roundtrips(response in arb_response()) {
            let bytes = encode_collection_response(&response);
            prop_assert_eq!(decode_collection_response(&bytes).unwrap(), response);
        }

        /// A whole delivery batch survives the wire, preserving response
        /// order (the hub's per-device arrival order depends on it).
        #[test]
        fn batch_roundtrips(batch in proptest::collection::vec(arb_response(), 0..6)) {
            let bytes = encode_collection_batch(&batch);
            prop_assert_eq!(decode_collection_batch(&bytes).unwrap(), batch);
        }

        /// Batch framing is prefix-strict: every strict prefix of a valid
        /// frame is rejected as truncated (no partial batch ever parses).
        #[test]
        fn truncated_batches_are_rejected(
            batch in proptest::collection::vec(arb_response(), 1..4),
            cut in any::<usize>(),
        ) {
            let bytes = encode_collection_batch(&batch);
            let len = cut % bytes.len(); // in 0..bytes.len(): strict prefix
            prop_assert!(decode_collection_batch(&bytes[..len]).is_err());
        }

        /// ...and suffix-strict: trailing garbage is rejected too.
        #[test]
        fn oversized_batches_are_rejected(
            batch in proptest::collection::vec(arb_response(), 0..4),
            trailer in proptest::collection::vec(any::<u8>(), 1..16),
        ) {
            let mut bytes = encode_collection_batch(&batch);
            bytes.extend_from_slice(&trailer);
            prop_assert!(decode_collection_batch(&bytes).is_err());
        }
    }
}
