//! Wire format for measurements and protocol messages.
//!
//! The paper's prover answers collections over UDP (Table 2 prices packet
//! construction and transmission separately). This module defines the byte
//! layout used by the reproduction so that collection responses can actually
//! be serialized, sized and parsed — and so the verifier can be fed bytes
//! that crossed an untrusted network rather than in-memory structs.
//!
//! All integers are big-endian. A serialized measurement is:
//!
//! ```text
//! +---------+------------+-----------------+-----------+---------------+
//! | t: u64  | dlen: u16  | digest (dlen B) | tlen: u16 | tag (tlen B)  |
//! +---------+------------+-----------------+-----------+---------------+
//! ```
//!
//! A collection response is the device id (u64), a measurement count (u16)
//! and that many measurements back to back.
//!
//! A collection *batch* is a response count (u16, at most
//! [`MAX_BATCH_RESPONSES`]) followed by that many responses back to back.
//! It is the wire frame for one hub delivery burst — the unit
//! [`crate::VerifierHub::ingest_frame`] consumes: decode, verify each
//! response straight off the frame, fold the reports in.
//!
//! # Strictness
//!
//! The codec is deliberately unforgiving — every rule below is load-bearing
//! for the fuzz harness's differential oracle:
//!
//! * **Exact lengths.** A digest length other than [`DIGEST_LEN`] or a tag
//!   length of zero or above `MAX_TAG_LEN` is rejected before any copy.
//! * **Prefix-strict.** Every strict prefix of a valid frame is rejected as
//!   truncated; a frame either parses completely or not at all.
//! * **Suffix-strict.** Trailing bytes after the last record are rejected.
//! * **Canonical.** The format is bijective: for every frame accepted by
//!   [`decode_collection_batch`], re-encoding the result reproduces the
//!   input byte for byte.
//!
//! # Hub snapshots
//!
//! [`encode_hub_snapshot`] / [`decode_hub_snapshot`] serialize a whole
//! [`crate::VerifierHub`] — counters, per-flow dedup windows and every
//! device history — under the same strictness rules, so a verifier can
//! crash, restore from its last snapshot and keep ingesting with
//! exactly-once accounting intact. A snapshot opens with the magic `0x4552`
//! (`"ER"`), which is deliberately above [`MAX_BATCH_RESPONSES`]: bytes of
//! one format can never be mistaken for the other, the frame decoder
//! rejects a snapshot outright (and vice versa).
//!
//! # Zero-copy views
//!
//! [`FrameView::parse`] validates a whole frame in one allocation-free pass
//! and hands out borrowed [`ResponseView`]s / [`MeasurementView`]s whose
//! digest and tag point straight into the frame buffer. The verifier checks
//! MACs off those borrowed slices; owned [`Measurement`]s are materialized
//! only for the reports that survive verification. The owned decoders
//! ([`decode_collection_batch`] & co.) are thin wrappers over the views, so
//! there is exactly one strict contract.

use std::fmt;

use erasmus_crypto::{MacTag, MAX_TAG_LEN};
use erasmus_sim::{SimDuration, SimTime};

use crate::history::{extend_digest, DeviceHistory, HistoryEntry, HistoryMode, HistoryRollup};
use crate::hub::{FlowWindow, VerifierHub};
use crate::ids::DeviceId;
use crate::measurement::{Measurement, MemoryDigest, DIGEST_LEN};
use crate::protocol::CollectionResponse;
use crate::report::MeasurementVerdict;

/// Category of strict-codec violation behind a [`DecodeError`].
///
/// The adversarial-frame corpus tests cover every variant; keep
/// [`DecodeErrorKind::ALL`] in sync when extending the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeErrorKind {
    /// The input ended before a field could be read in full.
    Truncated,
    /// A digest length field disagreed with [`DIGEST_LEN`].
    DigestLength,
    /// A tag length field was zero or above `MAX_TAG_LEN`.
    TagLength,
    /// A batch count field was above [`MAX_BATCH_RESPONSES`].
    BatchCount,
    /// A well-formed message was followed by trailing bytes.
    TrailingBytes,
}

impl DecodeErrorKind {
    /// Every way the strict codec can reject input.
    pub const ALL: [DecodeErrorKind; 5] = [
        DecodeErrorKind::Truncated,
        DecodeErrorKind::DigestLength,
        DecodeErrorKind::TagLength,
        DecodeErrorKind::BatchCount,
        DecodeErrorKind::TrailingBytes,
    ];
}

impl fmt::Display for DecodeErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            DecodeErrorKind::Truncated => "truncated",
            DecodeErrorKind::DigestLength => "digest length",
            DecodeErrorKind::TagLength => "tag length",
            DecodeErrorKind::BatchCount => "batch count",
            DecodeErrorKind::TrailingBytes => "trailing bytes",
        };
        f.write_str(text)
    }
}

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Which contract rule was violated.
    kind: DecodeErrorKind,
    /// What went wrong.
    reason: String,
    /// Byte offset at which decoding failed.
    offset: usize,
}

impl DecodeError {
    fn new(kind: DecodeErrorKind, reason: impl Into<String>, offset: usize) -> Self {
        Self {
            kind,
            reason: reason.into(),
            offset,
        }
    }

    /// Which contract rule was violated.
    pub fn kind(&self) -> DecodeErrorKind {
        self.kind
    }

    /// Byte offset at which decoding failed.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for DecodeError {}

// Digest and tag lengths are bounded by the fixed-size in-memory types: a
// digest is always 32 bytes of SHA-256, and no supported MAC produces a tag
// longer than `MAX_TAG_LEN`. Anything else can only come from corrupted or
// hostile input and is rejected before allocation.

#[derive(Debug, Clone)]
struct Reader<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, offset: 0 }
    }

    /// Reads `len` bytes. Total over hostile lengths: the bounds check is
    /// overflow-safe and the slice comes from `get`, never from indexing.
    fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8], DecodeError> {
        let slice = self
            .offset
            .checked_add(len)
            .and_then(|end| self.bytes.get(self.offset..end));
        match slice {
            Some(slice) => {
                self.offset += len;
                Ok(slice)
            }
            None => Err(DecodeError::new(
                DecodeErrorKind::Truncated,
                format!("truncated while reading {what} ({len} bytes needed)"),
                self.offset,
            )),
        }
    }

    /// Reads exactly `N` bytes as a fixed-size array reference — the
    /// panic-free replacement for `take(..).try_into().expect(..)`.
    fn array<const N: usize>(&mut self, what: &str) -> Result<&'a [u8; N], DecodeError> {
        let offset = self.offset;
        match self.take(N, what)?.try_into() {
            Ok(array) => Ok(array),
            // Unreachable (take returned exactly N bytes), but handled:
            // decode paths never panic, not even on internal surprises.
            Err(_) => Err(DecodeError::new(
                DecodeErrorKind::Truncated,
                format!("internal length mismatch while reading {what}"),
                offset,
            )),
        }
    }

    fn u64(&mut self, what: &str) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(*self.array::<8>(what)?))
    }

    fn u32(&mut self, what: &str) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(*self.array::<4>(what)?))
    }

    fn u16(&mut self, what: &str) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(*self.array::<2>(what)?))
    }

    fn u8(&mut self, what: &str) -> Result<u8, DecodeError> {
        let [byte] = *self.array::<1>(what)?;
        Ok(byte)
    }

    /// Reads a u32 record count as a `usize`, rejecting counts the platform
    /// cannot index (only reachable on 16-bit targets).
    fn count(&mut self, what: &str) -> Result<usize, DecodeError> {
        let offset = self.offset;
        let value = self.u32(what)?;
        usize::try_from(value).map_err(|_| {
            DecodeError::new(
                DecodeErrorKind::BatchCount,
                format!("{what} {value} does not fit this platform's usize"),
                offset,
            )
        })
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.offset != self.bytes.len() {
            return Err(DecodeError::new(
                DecodeErrorKind::TrailingBytes,
                format!(
                    "{} trailing bytes after message",
                    self.bytes.len() - self.offset
                ),
                self.offset,
            ));
        }
        Ok(())
    }
}

/// Zero-copy view of one measurement record inside a validated frame.
///
/// The digest and tag borrow straight from the frame buffer; nothing is
/// copied or allocated until [`MeasurementView::to_measurement`]. Views are
/// only handed out by [`FrameView`] / [`ResponseView`] after the whole frame
/// passed strict validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasurementView<'a> {
    timestamp: SimTime,
    digest: &'a MemoryDigest,
    tag: &'a [u8],
}

impl<'a> MeasurementView<'a> {
    /// The RROC timestamp `t`.
    pub fn timestamp(&self) -> SimTime {
        self.timestamp
    }

    /// The memory digest `H(mem_t)`, borrowed from the frame.
    pub fn digest(&self) -> &'a MemoryDigest {
        self.digest
    }

    /// The authentication tag bytes, borrowed from the frame.
    pub fn tag(&self) -> &'a [u8] {
        self.tag
    }

    /// Materializes an owned [`Measurement`] (the only copying step on the
    /// frame ingestion path, deferred until a report is actually built).
    pub fn to_measurement(&self) -> Measurement {
        Measurement::from_parts(self.timestamp, *self.digest, MacTag::new(self.tag))
    }
}

fn measurement_view_from<'a>(reader: &mut Reader<'a>) -> Result<MeasurementView<'a>, DecodeError> {
    let timestamp = reader.u64("timestamp")?;
    let digest_len = usize::from(reader.u16("digest length")?);
    if digest_len != DIGEST_LEN {
        return Err(DecodeError::new(
            DecodeErrorKind::DigestLength,
            format!("implausible digest length {digest_len}"),
            reader.offset,
        ));
    }
    let digest: &MemoryDigest = reader.array::<DIGEST_LEN>("digest")?;
    let tag_len = usize::from(reader.u16("tag length")?);
    if tag_len == 0 || tag_len > MAX_TAG_LEN {
        return Err(DecodeError::new(
            DecodeErrorKind::TagLength,
            format!("implausible tag length {tag_len}"),
            reader.offset,
        ));
    }
    let tag = reader.take(tag_len, "tag")?;
    Ok(MeasurementView {
        timestamp: SimTime::from_nanos(timestamp),
        digest,
        tag,
    })
}

/// Iterator over the [`MeasurementView`]s of one response record.
///
/// Walks bytes that were already validated by [`FrameView::parse`] (or one
/// of the owned decoders), so iteration itself cannot fail.
#[derive(Debug, Clone)]
pub struct MeasurementViews<'a> {
    reader: Reader<'a>,
    remaining: usize,
}

impl<'a> Iterator for MeasurementViews<'a> {
    type Item = MeasurementView<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Records were validated at parse time; a decode error here is
        // unreachable, and ending the iteration is the panic-free answer.
        measurement_view_from(&mut self.reader).ok()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for MeasurementViews<'_> {}

/// Zero-copy view of one collection-response record inside a validated
/// frame.
#[derive(Debug, Clone, Copy)]
pub struct ResponseView<'a> {
    device: DeviceId,
    count: usize,
    records: &'a [u8],
}

impl<'a> ResponseView<'a> {
    /// The device this response claims to come from.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Number of measurement records the response carries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the response carries no measurements.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterator over the borrowed measurement records, newest first (the
    /// order the prover serialized them in).
    pub fn measurements(&self) -> MeasurementViews<'a> {
        MeasurementViews {
            reader: Reader::new(self.records),
            remaining: self.count,
        }
    }

    /// Materializes an owned [`CollectionResponse`].
    ///
    /// The prover-time field is not on the wire (it is a simulation
    /// artefact); the materialized response carries [`SimDuration::ZERO`]
    /// there.
    pub fn to_response(&self) -> CollectionResponse {
        CollectionResponse {
            device: self.device,
            measurements: self.measurements().map(|m| m.to_measurement()).collect(),
            prover_time: SimDuration::ZERO,
        }
    }
}

fn response_view_from<'a>(reader: &mut Reader<'a>) -> Result<ResponseView<'a>, DecodeError> {
    let device = reader.u64("device id")?;
    let count = usize::from(reader.u16("measurement count")?);
    let start = reader.offset;
    for _ in 0..count {
        measurement_view_from(reader)?;
    }
    Ok(ResponseView {
        device: DeviceId::new(device),
        count,
        // The range is in bounds by construction (both ends came from the
        // reader); the empty fallback keeps the path total regardless.
        records: reader.bytes.get(start..reader.offset).unwrap_or_default(),
    })
}

/// Iterator over the [`ResponseView`]s of a validated frame.
#[derive(Debug, Clone)]
pub struct ResponseViews<'a> {
    reader: Reader<'a>,
    remaining: usize,
}

impl<'a> Iterator for ResponseViews<'a> {
    type Item = ResponseView<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Same contract as MeasurementViews: validated at parse time.
        response_view_from(&mut self.reader).ok()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for ResponseViews<'_> {}

/// Zero-copy view of a whole validated batch frame — the hub's wire-native
/// ingestion unit.
///
/// [`FrameView::parse`] makes exactly one strict validation pass (bounds
/// checks only, no allocation, no copying); the view's iterators then
/// re-walk the validated bytes infallibly. Holding a `FrameView` is proof
/// the frame satisfies the full codec contract described in the
/// [module docs](self).
///
/// # Example
///
/// ```
/// use erasmus_core::{encode_collection_batch, CollectionResponse, DeviceId, FrameView};
/// use erasmus_sim::SimDuration;
///
/// let burst = vec![CollectionResponse {
///     device: DeviceId::new(7),
///     measurements: Vec::new(),
///     prover_time: SimDuration::ZERO,
/// }];
/// let bytes = encode_collection_batch(&burst);
/// let frame = FrameView::parse(&bytes).expect("valid frame");
/// assert_eq!(frame.len(), 1);
/// assert_eq!(frame.responses().next().unwrap().device(), DeviceId::new(7));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    count: usize,
    records: &'a [u8],
    frame_len: usize,
}

impl<'a> FrameView<'a> {
    /// Validates a batch frame in one allocation-free pass.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] (with a structured [`DecodeErrorKind`]) for
    /// truncated input, a batch count above [`MAX_BATCH_RESPONSES`], any
    /// malformed inner record, or trailing garbage — a frame either
    /// validates completely or not at all.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, DecodeError> {
        let mut reader = Reader::new(bytes);
        let count = usize::from(reader.u16("batch count")?);
        if count > MAX_BATCH_RESPONSES {
            return Err(DecodeError::new(
                DecodeErrorKind::BatchCount,
                format!("implausible batch count {count}"),
                0,
            ));
        }
        let start = reader.offset;
        for _ in 0..count {
            response_view_from(&mut reader)?;
        }
        reader.finish()?;
        Ok(Self {
            count,
            // `start` is at most `bytes.len()` (the reader just walked the
            // whole frame); the empty fallback keeps the path total.
            records: bytes.get(start..).unwrap_or_default(),
            frame_len: bytes.len(),
        })
    }

    /// Number of response records the frame carries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the frame carries no responses.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Size of the whole frame in bytes, including the count header.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Iterator over the borrowed response records in wire order (the hub's
    /// per-device arrival order depends on it).
    pub fn responses(&self) -> ResponseViews<'a> {
        ResponseViews {
            reader: Reader::new(self.records),
            remaining: self.count,
        }
    }
}

/// Appends the serialized measurement to `out`.
pub fn encode_measurement_into(out: &mut Vec<u8>, measurement: &Measurement) {
    let digest = measurement.digest();
    let tag = measurement.tag().as_bytes();
    out.reserve(8 + 2 + digest.len() + 2 + tag.len());
    out.extend_from_slice(&measurement.timestamp().as_nanos().to_be_bytes());
    // analyzer: allow(checked-casts) — digest.len() is DIGEST_LEN (32), far below u16::MAX
    out.extend_from_slice(&(digest.len() as u16).to_be_bytes());
    out.extend_from_slice(digest);
    // analyzer: allow(checked-casts) — tag.len() is at most MAX_TAG_LEN (32), far below u16::MAX
    out.extend_from_slice(&(tag.len() as u16).to_be_bytes());
    out.extend_from_slice(tag);
}

/// Serializes one measurement.
pub fn encode_measurement(measurement: &Measurement) -> Vec<u8> {
    let mut out = Vec::new();
    encode_measurement_into(&mut out, measurement);
    out
}

fn decode_measurement_from(reader: &mut Reader<'_>) -> Result<Measurement, DecodeError> {
    measurement_view_from(reader).map(|view| view.to_measurement())
}

/// Parses one measurement, rejecting trailing bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated input, implausible field lengths
/// or trailing garbage. A successfully decoded measurement still needs MAC
/// verification — decoding performs no cryptography.
pub fn decode_measurement(bytes: &[u8]) -> Result<Measurement, DecodeError> {
    let mut reader = Reader::new(bytes);
    let measurement = decode_measurement_from(&mut reader)?;
    reader.finish()?;
    Ok(measurement)
}

/// Appends the serialized collection response to `out`.
///
/// # Panics
///
/// Panics if the response carries more than `u16::MAX` measurements —
/// previously the count silently truncated modulo 65536 on the wire,
/// producing a frame the strict decoder rejects (or worse, misparses as a
/// shorter response followed by trailing bytes).
pub fn encode_collection_response_into(out: &mut Vec<u8>, response: &CollectionResponse) {
    assert!(
        response.measurements.len() <= usize::from(u16::MAX),
        "response with {} measurements overflows the u16 wire count",
        response.measurements.len()
    );
    out.reserve(8 + 2 + response.payload_bytes() + 4 * response.measurements.len());
    out.extend_from_slice(&response.device.value().to_be_bytes());
    // analyzer: allow(checked-casts) — bounded by the assert above
    out.extend_from_slice(&(response.measurements.len() as u16).to_be_bytes());
    for measurement in &response.measurements {
        encode_measurement_into(out, measurement);
    }
}

/// Serializes a collection response (the prover → verifier UDP payload).
pub fn encode_collection_response(response: &CollectionResponse) -> Vec<u8> {
    let mut out = Vec::new();
    encode_collection_response_into(&mut out, response);
    out
}

/// Parses a collection response.
///
/// The prover-time field is not on the wire (it is a simulation artefact);
/// the decoded response carries [`SimDuration::ZERO`] there.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated input, implausible counts or
/// trailing garbage.
pub fn decode_collection_response(bytes: &[u8]) -> Result<CollectionResponse, DecodeError> {
    let mut reader = Reader::new(bytes);
    let view = response_view_from(&mut reader)?;
    reader.finish()?;
    Ok(view.to_response())
}

/// Largest number of responses one batch frame may carry. Mirrors the
/// exact-digest-length rule: an implausible count can only come from
/// corrupted or hostile input and is rejected before any allocation.
pub const MAX_BATCH_RESPONSES: usize = 1024;

/// Appends a burst of collection responses to `out` as one batch frame.
///
/// This is the shard engines' hot path: one reusable buffer per shard,
/// cleared between bursts, instead of a fresh allocation per frame.
///
/// # Panics
///
/// Panics if `responses` exceeds [`MAX_BATCH_RESPONSES`]; split larger
/// bursts into multiple frames.
pub fn encode_collection_batch_into(out: &mut Vec<u8>, responses: &[CollectionResponse]) {
    assert!(
        responses.len() <= MAX_BATCH_RESPONSES,
        "batch of {} responses exceeds MAX_BATCH_RESPONSES ({MAX_BATCH_RESPONSES})",
        responses.len()
    );
    // analyzer: allow(checked-casts) — bounded by the MAX_BATCH_RESPONSES assert above
    out.extend_from_slice(&(responses.len() as u16).to_be_bytes());
    for response in responses {
        encode_collection_response_into(out, response);
    }
}

/// Serializes a burst of collection responses as one batch frame — what a
/// single hub delivery event carries on the wire before each response is
/// verified and the reports are folded in via
/// [`crate::VerifierHub::ingest_frame`].
///
/// # Panics
///
/// Panics if `responses` exceeds [`MAX_BATCH_RESPONSES`]; split larger
/// bursts into multiple frames.
pub fn encode_collection_batch(responses: &[CollectionResponse]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_collection_batch_into(&mut out, responses);
    out
}

/// Parses a batch frame into owned responses.
///
/// Thin wrapper over [`FrameView::parse`], so the owned and zero-copy
/// decoders enforce the same strict contract by construction.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated input, a batch count above
/// [`MAX_BATCH_RESPONSES`], any malformed inner response, or trailing
/// garbage — so a frame either parses completely or not at all.
pub fn decode_collection_batch(bytes: &[u8]) -> Result<Vec<CollectionResponse>, DecodeError> {
    let frame = FrameView::parse(bytes)?;
    Ok(frame.responses().map(|view| view.to_response()).collect())
}

/// Magic opening a hub snapshot: `"ER"` as a big-endian u16. Chosen above
/// [`MAX_BATCH_RESPONSES`] so the batch-frame decoder can never confuse a
/// snapshot for a frame (it reads the magic as an implausible batch count).
pub const SNAPSHOT_MAGIC: u16 = 0x4552;

/// Current hub-snapshot format version. Version 2 introduced the compact
/// history layout: per-device rollup tallies, the sealed-chain/head digest
/// pair and a bounded resident window instead of the full entry list.
pub const SNAPSHOT_VERSION: u8 = 2;

/// Wire tag for [`HistoryMode::Unbounded`] in a snapshot header.
const MODE_UNBOUNDED: u8 = 0;
/// Wire tag for [`HistoryMode::Ring`] in a snapshot header.
const MODE_RING: u8 = 1;

fn mode_tag(mode: HistoryMode) -> (u8, u32) {
    match mode {
        HistoryMode::Unbounded => (MODE_UNBOUNDED, 0),
        HistoryMode::Ring(capacity) => (
            MODE_RING,
            u32::try_from(capacity).unwrap_or(u32::MAX).max(1),
        ),
    }
}

/// Appends the serialized hub snapshot to `out`.
///
/// The layout (all integers big-endian) is:
///
/// ```text
/// magic: u16 = 0x4552 ("ER")    version: u8 = 2
/// mode: u8 (0 = unbounded | 1 = ring)   capacity: u32 (0 iff unbounded)
/// ingested: u64   rejected: u64   duplicates: u64
/// flow_count: u32, then per flow (ascending flow id):
///     flow: u64   floor: u64   seq_count: u32   seqs: u64 × seq_count
/// device_count: u32, then per device (ascending device id):
///     device: u64   collections: u64
///     entries: u64   evictions: u64   stale_discards: u64
///     healthy: u64   compromised: u64   forged: u64
///     flags: u8 (bit 0: compromise evidence follows)
///     [first_compromise: u64   detected_at: u64]   — iff flag bit 0
///     [first_timestamp: u64]                       — iff entries > 0
///     chain: 32 B   head: 32 B
///     resident_count: u32
///     then per resident entry (ascending timestamp):
///         timestamp: u64   collected_at: u64   verdict: u8 (0|1|2)
/// ```
///
/// Sequences and timestamps are strictly ascending on the wire, the rollup
/// must satisfy its conservation laws (`healthy + compromised + forged ==
/// entries`, `evictions + resident_count == entries`) and the head digest
/// must equal the sealed chain folded over the resident entries — the codec
/// is canonical, so a decoded snapshot re-encodes byte-identically and a
/// forged chain never restores.
pub fn encode_hub_snapshot_into(out: &mut Vec<u8>, hub: &VerifierHub) {
    out.extend_from_slice(&SNAPSHOT_MAGIC.to_be_bytes());
    out.push(SNAPSHOT_VERSION);
    let (mode, capacity) = mode_tag(hub.mode);
    out.push(mode);
    out.extend_from_slice(&capacity.to_be_bytes());
    out.extend_from_slice(&hub.ingested.to_be_bytes());
    out.extend_from_slice(&hub.rejected.to_be_bytes());
    out.extend_from_slice(&hub.duplicates.to_be_bytes());
    // analyzer: allow(checked-casts) — an in-memory flow map cannot reach 2^32 entries (>64 GiB at ~16 B each)
    out.extend_from_slice(&(hub.dedup.len() as u32).to_be_bytes());
    for (flow, window) in &hub.dedup {
        out.extend_from_slice(&flow.to_be_bytes());
        out.extend_from_slice(&window.floor.to_be_bytes());
        // analyzer: allow(checked-casts) — dedup windows are pruned to DEDUP_WINDOW (1024) sequences
        out.extend_from_slice(&(window.seen.len() as u32).to_be_bytes());
        for sequence in &window.seen {
            out.extend_from_slice(&sequence.to_be_bytes());
        }
    }
    // analyzer: allow(checked-casts) — an in-memory device map cannot reach 2^32 entries (>256 GiB at ~64 B each)
    out.extend_from_slice(&(hub.histories.len() as u32).to_be_bytes());
    for (device, history) in &hub.histories {
        debug_assert_eq!(
            history.mode(),
            hub.mode,
            "snapshot encodes the hub-wide history mode"
        );
        out.extend_from_slice(&device.value().to_be_bytes());
        out.extend_from_slice(&history.collections().to_be_bytes());
        let rollup = &history.rollup;
        out.extend_from_slice(&rollup.entries.to_be_bytes());
        out.extend_from_slice(&rollup.evictions.to_be_bytes());
        out.extend_from_slice(&rollup.stale_discards.to_be_bytes());
        out.extend_from_slice(&rollup.healthy.to_be_bytes());
        out.extend_from_slice(&rollup.compromised.to_be_bytes());
        out.extend_from_slice(&rollup.forged.to_be_bytes());
        let compromise = rollup
            .first_compromise_at
            .zip(rollup.compromise_detected_at);
        out.push(u8::from(compromise.is_some()));
        if let Some((measured, detected)) = compromise {
            out.extend_from_slice(&measured.as_nanos().to_be_bytes());
            out.extend_from_slice(&detected.as_nanos().to_be_bytes());
        }
        if rollup.entries > 0 {
            let first = rollup.first_timestamp.map_or(0, |at| at.as_nanos());
            out.extend_from_slice(&first.to_be_bytes());
        }
        out.extend_from_slice(&history.chain);
        out.extend_from_slice(&history.head);
        // analyzer: allow(checked-casts) — the resident window is bounded by the ring capacity (u32 on the wire)
        out.extend_from_slice(&(history.resident_len() as u32).to_be_bytes());
        for entry in history.entries() {
            out.extend_from_slice(&entry.timestamp.as_nanos().to_be_bytes());
            out.extend_from_slice(&entry.collected_at.as_nanos().to_be_bytes());
            out.push(verdict_tag(entry.verdict));
        }
    }
}

/// Serializes a [`crate::VerifierHub`] as a compact crash-recovery snapshot.
///
/// See [`encode_hub_snapshot_into`] for the layout.
pub fn encode_hub_snapshot(hub: &VerifierHub) -> Vec<u8> {
    let mut out = Vec::new();
    encode_hub_snapshot_into(&mut out, hub);
    out
}

/// Parses a hub snapshot, restoring counters, dedup windows and device
/// histories exactly as they were encoded.
///
/// The snapshot codec enforces the same strictness rules as the frame
/// codec: exact lengths, prefix- and suffix-strict, and canonical — flows,
/// sequences, devices and timestamps must be strictly ascending, so every
/// accepted snapshot re-encodes byte-identically.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated input, a wrong magic or version,
/// out-of-order or below-floor records, an out-of-range verdict tag, or
/// trailing garbage.
pub fn decode_hub_snapshot(bytes: &[u8]) -> Result<VerifierHub, DecodeError> {
    let mut reader = Reader::new(bytes);
    let magic = reader.u16("snapshot magic")?;
    if magic != SNAPSHOT_MAGIC {
        return Err(DecodeError::new(
            DecodeErrorKind::BatchCount,
            format!("not a hub snapshot (magic {magic:#06x})"),
            0,
        ));
    }
    let version = reader.u8("snapshot version")?;
    if version != SNAPSHOT_VERSION {
        return Err(DecodeError::new(
            DecodeErrorKind::BatchCount,
            format!("unsupported hub snapshot version {version}"),
            2,
        ));
    }
    let mode_at = reader.offset;
    let mode_byte = reader.u8("history mode")?;
    let capacity_at = reader.offset;
    let capacity = reader.u32("ring capacity")?;
    let mode = match (mode_byte, capacity) {
        (MODE_UNBOUNDED, 0) => HistoryMode::Unbounded,
        (MODE_UNBOUNDED, _) => {
            return Err(DecodeError::new(
                DecodeErrorKind::BatchCount,
                format!("unbounded snapshot carries ring capacity {capacity}"),
                capacity_at,
            ));
        }
        (MODE_RING, 0) => {
            return Err(DecodeError::new(
                DecodeErrorKind::BatchCount,
                "ring snapshot carries zero capacity".to_string(),
                capacity_at,
            ));
        }
        (MODE_RING, capacity) => HistoryMode::Ring(usize::try_from(capacity).map_err(|_| {
            DecodeError::new(
                DecodeErrorKind::BatchCount,
                format!("ring capacity {capacity} does not fit this platform's usize"),
                capacity_at,
            )
        })?),
        (tag, _) => {
            return Err(DecodeError::new(
                DecodeErrorKind::TagLength,
                format!("snapshot history mode {tag} out of range"),
                mode_at,
            ));
        }
    };
    let ingested = reader.u64("ingested counter")?;
    let rejected = reader.u64("rejected counter")?;
    let duplicates = reader.u64("duplicates counter")?;

    let flow_count = reader.count("flow count")?;
    let mut dedup = std::collections::BTreeMap::new();
    let mut previous_flow: Option<u64> = None;
    for _ in 0..flow_count {
        let flow_at = reader.offset;
        let flow = reader.u64("flow id")?;
        if previous_flow.is_some_and(|previous| previous >= flow) {
            return Err(DecodeError::new(
                DecodeErrorKind::BatchCount,
                format!("snapshot flows out of order at flow {flow}"),
                flow_at,
            ));
        }
        previous_flow = Some(flow);
        let floor = reader.u64("window floor")?;
        let seq_count = reader.count("sequence count")?;
        let mut seen = std::collections::BTreeSet::new();
        let mut previous_seq: Option<u64> = None;
        for _ in 0..seq_count {
            let seq_at = reader.offset;
            let sequence = reader.u64("window sequence")?;
            if sequence < floor {
                return Err(DecodeError::new(
                    DecodeErrorKind::BatchCount,
                    format!("snapshot sequence {sequence} below window floor {floor}"),
                    seq_at,
                ));
            }
            if previous_seq.is_some_and(|previous| previous >= sequence) {
                return Err(DecodeError::new(
                    DecodeErrorKind::BatchCount,
                    format!("snapshot sequences out of order at {sequence}"),
                    seq_at,
                ));
            }
            previous_seq = Some(sequence);
            seen.insert(sequence);
        }
        dedup.insert(flow, FlowWindow { floor, seen });
    }

    let device_count = reader.count("device count")?;
    let mut histories = std::collections::BTreeMap::new();
    let mut previous_device: Option<u64> = None;
    for _ in 0..device_count {
        let device_at = reader.offset;
        let device = reader.u64("device id")?;
        if previous_device.is_some_and(|previous| previous >= device) {
            return Err(DecodeError::new(
                DecodeErrorKind::BatchCount,
                format!("snapshot devices out of order at device {device}"),
                device_at,
            ));
        }
        previous_device = Some(device);
        let collections = reader.u64("collection count")?;
        let entries = reader.u64("entry count")?;
        let evictions_at = reader.offset;
        let evictions = reader.u64("eviction count")?;
        if mode == HistoryMode::Unbounded && evictions != 0 {
            return Err(DecodeError::new(
                DecodeErrorKind::BatchCount,
                format!("unbounded snapshot claims {evictions} evictions"),
                evictions_at,
            ));
        }
        let stale_at = reader.offset;
        let stale_discards = reader.u64("stale discard count")?;
        if mode == HistoryMode::Unbounded && stale_discards != 0 {
            return Err(DecodeError::new(
                DecodeErrorKind::BatchCount,
                format!("unbounded snapshot claims {stale_discards} stale discards"),
                stale_at,
            ));
        }
        let healthy_at = reader.offset;
        let healthy = reader.u64("healthy count")?;
        let compromised = reader.u64("compromised count")?;
        let forged = reader.u64("forged count")?;
        let verdict_sum = healthy
            .checked_add(compromised)
            .and_then(|sum| sum.checked_add(forged));
        if verdict_sum != Some(entries) {
            return Err(DecodeError::new(
                DecodeErrorKind::BatchCount,
                format!("snapshot verdict counts do not sum to {entries} entries"),
                healthy_at,
            ));
        }
        let flags_at = reader.offset;
        let flags = reader.u8("history flags")?;
        if flags & !1 != 0 {
            return Err(DecodeError::new(
                DecodeErrorKind::TagLength,
                format!("snapshot history flags {flags:#04x} out of range"),
                flags_at,
            ));
        }
        let (first_compromise_at, compromise_detected_at) = if flags & 1 != 0 {
            let measured = reader.u64("first compromise time")?;
            let detected = reader.u64("compromise detection time")?;
            (
                Some(SimTime::from_nanos(measured)),
                Some(SimTime::from_nanos(detected)),
            )
        } else {
            (None, None)
        };
        let first_ts_at = reader.offset;
        let first_timestamp = if entries > 0 {
            Some(SimTime::from_nanos(reader.u64("first timestamp")?))
        } else {
            None
        };
        let chain_at = reader.offset;
        let chain = *reader.array::<32>("chain digest")?;
        let head_at = reader.offset;
        let head = *reader.array::<32>("head digest")?;
        let resident_at = reader.offset;
        let resident_count = reader.count("resident count")?;
        let conserved = evictions.checked_add(u64::try_from(resident_count).unwrap_or(u64::MAX))
            == Some(entries);
        if !conserved {
            return Err(DecodeError::new(
                DecodeErrorKind::BatchCount,
                format!(
                    "snapshot window breaks conservation: {evictions} evictions + \
                     {resident_count} resident != {entries} entries"
                ),
                resident_at,
            ));
        }
        if entries > 0 && resident_count == 0 {
            return Err(DecodeError::new(
                DecodeErrorKind::BatchCount,
                "snapshot retains no entries for a non-empty history".to_string(),
                resident_at,
            ));
        }
        if let HistoryMode::Ring(ring_capacity) = mode {
            if resident_count > ring_capacity {
                return Err(DecodeError::new(
                    DecodeErrorKind::BatchCount,
                    format!(
                        "snapshot retains {resident_count} entries over capacity {ring_capacity}"
                    ),
                    resident_at,
                ));
            }
        }
        let mut ring = std::collections::VecDeque::with_capacity(resident_count);
        let mut folded = chain;
        let mut previous_timestamp: Option<u64> = None;
        for _ in 0..resident_count {
            let entry_at = reader.offset;
            let timestamp = reader.u64("entry timestamp")?;
            if previous_timestamp.is_some_and(|previous| previous >= timestamp) {
                return Err(DecodeError::new(
                    DecodeErrorKind::BatchCount,
                    format!("snapshot entries out of order at t={timestamp}"),
                    entry_at,
                ));
            }
            previous_timestamp = Some(timestamp);
            let collected_at = reader.u64("entry collection time")?;
            let tag_at = reader.offset;
            let tag = reader.u8("verdict tag")?;
            let verdict = verdict_from_tag(tag).ok_or_else(|| {
                DecodeError::new(
                    DecodeErrorKind::TagLength,
                    format!("snapshot verdict tag {tag} out of range"),
                    tag_at,
                )
            })?;
            folded = extend_digest(&folded, timestamp, tag, collected_at);
            ring.push_back(HistoryEntry {
                timestamp: SimTime::from_nanos(timestamp),
                verdict,
                collected_at: SimTime::from_nanos(collected_at),
            });
        }
        if let (Some(first), Some(front)) = (first_timestamp, ring.front()) {
            if first > front.timestamp {
                return Err(DecodeError::new(
                    DecodeErrorKind::BatchCount,
                    "snapshot first timestamp is later than its oldest retained entry".to_string(),
                    first_ts_at,
                ));
            }
        }
        if evictions == 0 && chain != [0u8; 32] {
            return Err(DecodeError::new(
                DecodeErrorKind::DigestLength,
                "snapshot chain digest is non-zero with no evictions".to_string(),
                chain_at,
            ));
        }
        if folded != head {
            return Err(DecodeError::new(
                DecodeErrorKind::DigestLength,
                "snapshot head digest does not extend its chain".to_string(),
                head_at,
            ));
        }
        let id = DeviceId::new(device);
        histories.insert(
            id,
            DeviceHistory {
                device: id,
                mode,
                ring,
                chain,
                head,
                collections,
                rollup: HistoryRollup {
                    entries,
                    evictions,
                    stale_discards,
                    healthy,
                    compromised,
                    forged,
                    first_timestamp,
                    first_compromise_at,
                    compromise_detected_at,
                },
            },
        );
    }
    reader.finish()?;
    Ok(VerifierHub {
        histories,
        mode,
        ingested,
        rejected,
        duplicates,
        dedup,
    })
}

fn verdict_tag(verdict: MeasurementVerdict) -> u8 {
    match verdict {
        MeasurementVerdict::Healthy => 0,
        MeasurementVerdict::Compromised => 1,
        MeasurementVerdict::Forged => 2,
    }
}

fn verdict_from_tag(tag: u8) -> Option<MeasurementVerdict> {
    match tag {
        0 => Some(MeasurementVerdict::Healthy),
        1 => Some(MeasurementVerdict::Compromised),
        2 => Some(MeasurementVerdict::Forged),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erasmus_crypto::MacAlgorithm;

    const KEY: [u8; 32] = [0x33u8; 32];

    fn sample(secs: u64) -> Measurement {
        Measurement::compute(
            &KEY,
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(secs),
            b"mem",
        )
    }

    #[test]
    fn measurement_roundtrip() {
        let original = sample(1234);
        let bytes = encode_measurement(&original);
        assert_eq!(bytes.len(), original.wire_size() + 4);
        let decoded = decode_measurement(&bytes).expect("decodes");
        assert_eq!(decoded, original);
        assert!(decoded.verify(&KEY, MacAlgorithm::HmacSha256));
    }

    #[test]
    fn collection_response_roundtrip() {
        let response = CollectionResponse {
            device: DeviceId::new(42),
            measurements: vec![sample(30), sample(20), sample(10)],
            prover_time: SimDuration::from_micros(15),
        };
        let bytes = encode_collection_response(&response);
        let decoded = decode_collection_response(&bytes).expect("decodes");
        assert_eq!(decoded.device, DeviceId::new(42));
        assert_eq!(decoded.measurements, response.measurements);
        assert_eq!(decoded.prover_time, SimDuration::ZERO);
    }

    #[test]
    fn empty_response_roundtrip() {
        let response = CollectionResponse {
            device: DeviceId::new(7),
            measurements: Vec::new(),
            prover_time: SimDuration::ZERO,
        };
        let decoded =
            decode_collection_response(&encode_collection_response(&response)).expect("decodes");
        assert!(decoded.measurements.is_empty());
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = encode_measurement(&sample(5));
        for len in [0usize, 1, 7, 9, bytes.len() - 1] {
            let err = decode_measurement(&bytes[..len]).unwrap_err();
            assert!(err.to_string().contains("decode error"), "{err}");
            assert_eq!(err.kind(), DecodeErrorKind::Truncated, "cut at {len}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_measurement(&sample(5));
        bytes.push(0xff);
        let err = decode_measurement(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"));
        assert_eq!(err.kind(), DecodeErrorKind::TrailingBytes);
    }

    #[test]
    fn implausible_lengths_are_rejected() {
        // Hand-craft a measurement header with an absurd digest length.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&5u64.to_be_bytes());
        bytes.extend_from_slice(&60000u16.to_be_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let err = decode_measurement(&bytes).unwrap_err();
        assert!(err.to_string().contains("implausible digest length"));
        assert_eq!(err.kind(), DecodeErrorKind::DigestLength);
        assert!(err.offset() >= 10);
    }

    #[test]
    fn wrong_count_in_response_is_rejected() {
        let response = CollectionResponse {
            device: DeviceId::new(1),
            measurements: vec![sample(1)],
            prover_time: SimDuration::ZERO,
        };
        let mut bytes = encode_collection_response(&response);
        // Claim two measurements but provide one.
        bytes[9] = 2;
        assert!(decode_collection_response(&bytes).is_err());
    }

    #[test]
    fn decoded_tampered_bytes_fail_mac_verification() {
        let original = sample(99);
        let mut bytes = encode_measurement(&original);
        // Flip one digest byte on the wire.
        bytes[12] ^= 0x01;
        let decoded = decode_measurement(&bytes).expect("still well-formed");
        assert!(!decoded.verify(&KEY, MacAlgorithm::HmacSha256));
    }

    fn sample_response(device: u64, count: usize) -> CollectionResponse {
        CollectionResponse {
            device: DeviceId::new(device),
            measurements: (0..count).map(|i| sample(10 * (i as u64 + 1))).collect(),
            prover_time: SimDuration::ZERO,
        }
    }

    #[test]
    fn batch_roundtrip() {
        let batch = vec![
            sample_response(1, 3),
            sample_response(2, 0),
            sample_response(7, 1),
        ];
        let bytes = encode_collection_batch(&batch);
        let decoded = decode_collection_batch(&bytes).expect("decodes");
        assert_eq!(decoded, batch);

        let empty = decode_collection_batch(&encode_collection_batch(&[])).expect("decodes");
        assert!(empty.is_empty());
    }

    #[test]
    fn oversized_batch_count_is_rejected() {
        let mut bytes = ((MAX_BATCH_RESPONSES + 1) as u16).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 64]);
        let err = decode_collection_batch(&bytes).unwrap_err();
        assert!(err.to_string().contains("implausible batch count"), "{err}");
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
    }

    #[test]
    fn batch_with_missing_response_is_rejected() {
        let mut bytes = encode_collection_batch(&[sample_response(1, 1)]);
        // Claim two responses but carry one.
        bytes[1] = 2;
        let err = decode_collection_batch(&bytes).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        assert_eq!(err.kind(), DecodeErrorKind::Truncated);
    }

    #[test]
    fn frame_view_matches_owned_decoder() {
        let batch = vec![
            sample_response(9, 2),
            sample_response(3, 0),
            sample_response(5, 4),
        ];
        let bytes = encode_collection_batch(&batch);
        let frame = FrameView::parse(&bytes).expect("parses");
        assert_eq!(frame.len(), batch.len());
        assert_eq!(frame.frame_len(), bytes.len());
        assert!(!frame.is_empty());

        for (view, expected) in frame.responses().zip(&batch) {
            assert_eq!(view.device(), expected.device);
            assert_eq!(view.len(), expected.measurements.len());
            assert_eq!(view.is_empty(), expected.measurements.is_empty());
            for (mv, m) in view.measurements().zip(&expected.measurements) {
                assert_eq!(mv.timestamp(), m.timestamp());
                assert_eq!(mv.digest(), m.digest());
                assert_eq!(mv.tag(), m.tag().as_bytes());
                assert_eq!(&mv.to_measurement(), m);
            }
            assert_eq!(&view.to_response(), expected);
        }
    }

    #[test]
    fn view_iterators_report_exact_lengths() {
        let batch = vec![sample_response(1, 3), sample_response(2, 1)];
        let bytes = encode_collection_batch(&batch);
        let frame = FrameView::parse(&bytes).expect("parses");
        let mut responses = frame.responses();
        assert_eq!(responses.len(), 2);
        let first = responses.next().expect("first response");
        assert_eq!(responses.len(), 1);
        let mut measurements = first.measurements();
        assert_eq!(measurements.len(), 3);
        measurements.next();
        assert_eq!(measurements.len(), 2);
        assert_eq!(measurements.count(), 2);
    }

    #[test]
    fn into_encoders_append_without_clearing() {
        let response = sample_response(4, 2);
        let mut out = vec![0xaa, 0xbb];
        encode_collection_batch_into(&mut out, std::slice::from_ref(&response));
        assert_eq!(&out[..2], &[0xaa, 0xbb]);
        assert_eq!(
            &out[2..],
            &encode_collection_batch(std::slice::from_ref(&response))[..]
        );
    }

    #[test]
    fn error_kind_every_variant_is_constructible() {
        // Truncated
        assert_eq!(
            decode_collection_batch(&[0x00]).unwrap_err().kind(),
            DecodeErrorKind::Truncated
        );
        // BatchCount
        let oversized = ((MAX_BATCH_RESPONSES + 1) as u16).to_be_bytes();
        assert_eq!(
            decode_collection_batch(&oversized).unwrap_err().kind(),
            DecodeErrorKind::BatchCount
        );
        // TrailingBytes
        let mut padded = encode_collection_batch(&[]);
        padded.push(0);
        assert_eq!(
            decode_collection_batch(&padded).unwrap_err().kind(),
            DecodeErrorKind::TrailingBytes
        );
        // DigestLength and TagLength via a crafted single-measurement frame.
        let mut frame = Vec::new();
        frame.extend_from_slice(&1u16.to_be_bytes()); // 1 response
        frame.extend_from_slice(&1u64.to_be_bytes()); // device
        frame.extend_from_slice(&1u16.to_be_bytes()); // 1 measurement
        frame.extend_from_slice(&9u64.to_be_bytes()); // timestamp
        let digest_len_at = frame.len();
        frame.extend_from_slice(&(DIGEST_LEN as u16).to_be_bytes());
        frame.extend_from_slice(&[0u8; DIGEST_LEN]);
        let tag_len_at = frame.len();
        frame.extend_from_slice(&4u16.to_be_bytes());
        frame.extend_from_slice(&[0u8; 4]);
        assert!(decode_collection_batch(&frame).is_ok());

        let mut bad_digest = frame.clone();
        bad_digest[digest_len_at + 1] = DIGEST_LEN as u8 + 1;
        assert_eq!(
            decode_collection_batch(&bad_digest).unwrap_err().kind(),
            DecodeErrorKind::DigestLength
        );
        let mut bad_tag = frame.clone();
        bad_tag[tag_len_at + 1] = 0;
        assert_eq!(
            decode_collection_batch(&bad_tag).unwrap_err().kind(),
            DecodeErrorKind::TagLength
        );
    }

    /// Ingests three entries per device for devices 2 (healthy) and
    /// 6 (compromised), then backdates the collection counters, so both the
    /// rollup and compromise-evidence sections carry non-default values.
    fn populate_devices(hub: &mut VerifierHub) {
        let mode = hub.history_mode();
        for (device, verdict) in [
            (2u64, MeasurementVerdict::Healthy),
            (6u64, MeasurementVerdict::Compromised),
        ] {
            let id = DeviceId::new(device);
            let history = hub
                .histories
                .entry(id)
                .or_insert_with(|| DeviceHistory::with_mode(id, mode));
            for i in 1..=3u64 {
                history.observe(HistoryEntry {
                    timestamp: SimTime::from_secs(10 * i),
                    verdict,
                    collected_at: SimTime::from_secs(10 * i + 5),
                });
            }
            history.collections = device;
        }
    }

    /// A hub with counters, two dedup windows and two device histories —
    /// every snapshot field populated with non-default values.
    fn populated_hub() -> VerifierHub {
        let mut hub = VerifierHub {
            ingested: 17,
            rejected: 3,
            duplicates: 2,
            ..VerifierHub::default()
        };
        hub.dedup.insert(
            4,
            FlowWindow {
                floor: 0,
                seen: [0u64, 1, 3].into_iter().collect(),
            },
        );
        hub.dedup.insert(
            9,
            FlowWindow {
                floor: 40,
                seen: [41u64, 44].into_iter().collect(),
            },
        );
        populate_devices(&mut hub);
        hub
    }

    /// The same device timelines as [`populated_hub`] but ingested into a
    /// two-slot ring, so every history has wrapped: one eviction, a sealed
    /// non-zero chain and a two-entry retained window. No dedup flows, so
    /// the first device record sits at offset 40.
    fn populated_ring_hub() -> VerifierHub {
        let mut hub = VerifierHub::with_history(HistoryMode::Ring(2));
        hub.ingested = 6;
        populate_devices(&mut hub);
        hub
    }

    #[test]
    fn hub_snapshot_roundtrip_is_lossless_and_canonical() {
        for hub in [
            VerifierHub::default(),
            populated_hub(),
            populated_ring_hub(),
        ] {
            let bytes = encode_hub_snapshot(&hub);
            let decoded = decode_hub_snapshot(&bytes).expect("snapshot decodes");
            assert_eq!(decoded, hub);
            assert_eq!(encode_hub_snapshot(&decoded), bytes, "canonical re-encode");
            assert_eq!(decoded.verified_chains(), decoded.len(), "chains verify");
        }
    }

    #[test]
    fn hub_snapshot_restores_a_wrapped_ring() {
        let hub = populated_ring_hub();
        let decoded = decode_hub_snapshot(&encode_hub_snapshot(&hub)).expect("snapshot decodes");
        assert_eq!(decoded.history_mode(), HistoryMode::Ring(2));
        let history = decoded
            .history(DeviceId::new(6))
            .expect("device 6 restored");
        assert_eq!(history.len(), 3, "lifetime count survives the wrap");
        assert_eq!(history.resident_len(), 2);
        assert_eq!(history.evictions(), 1);
        assert_ne!(
            history.chain_digest(),
            &[0u8; 32],
            "eviction sealed the chain"
        );
        assert!(history.verify_chain());
        assert_eq!(history.first_compromise(), Some(SimTime::from_secs(10)));
        assert_eq!(history.first_timestamp(), Some(SimTime::from_secs(10)));
    }

    #[test]
    fn hub_snapshot_into_appends_without_clearing() {
        let hub = populated_hub();
        let mut out = vec![0xaa, 0xbb];
        encode_hub_snapshot_into(&mut out, &hub);
        assert_eq!(&out[..2], &[0xaa, 0xbb]);
        assert_eq!(&out[2..], &encode_hub_snapshot(&hub)[..]);
    }

    #[test]
    fn hub_snapshot_is_prefix_and_suffix_strict() {
        for hub in [populated_hub(), populated_ring_hub()] {
            let bytes = encode_hub_snapshot(&hub);
            for len in 0..bytes.len() {
                let err = decode_hub_snapshot(&bytes[..len]).unwrap_err();
                assert_eq!(err.kind(), DecodeErrorKind::Truncated, "cut at {len}");
            }
            let mut padded = bytes.clone();
            padded.push(0);
            let err = decode_hub_snapshot(&padded).unwrap_err();
            assert_eq!(err.kind(), DecodeErrorKind::TrailingBytes);
        }
    }

    #[test]
    fn hub_snapshot_rejects_wrong_magic_and_version() {
        let mut bytes = encode_hub_snapshot(&VerifierHub::default());
        bytes[0] = 0x00;
        let err = decode_hub_snapshot(&bytes).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("not a hub snapshot"), "{err}");

        let mut bytes = encode_hub_snapshot(&VerifierHub::default());
        bytes[2] = SNAPSHOT_VERSION + 1;
        let err = decode_hub_snapshot(&bytes).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn hub_snapshot_rejects_non_canonical_record_order() {
        // Header: magic (2) + version (1) + mode (1) + capacity (4) + three
        // u64 counters (24) = 32, then the u32 flow count at 32.
        let hub = populated_hub();
        let bytes = encode_hub_snapshot(&hub);

        // Swap the two flow ids (offset 36 and the second flow record's id)
        // so flows arrive descending.
        let first_flow_at = 36;
        let second_flow_at = first_flow_at + 8 + 8 + 4 + 3 * 8;
        let mut swapped = bytes.clone();
        swapped.copy_within(second_flow_at..second_flow_at + 8, first_flow_at);
        swapped[second_flow_at..second_flow_at + 8].copy_from_slice(&4u64.to_be_bytes());
        let err = decode_hub_snapshot(&swapped).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("flows out of order"), "{err}");

        // Duplicate the first sequence of flow 4 into its second slot so the
        // sequence list stops ascending.
        let first_seq_at = first_flow_at + 8 + 8 + 4;
        let mut stalled = bytes.clone();
        stalled.copy_within(first_seq_at..first_seq_at + 8, first_seq_at + 8);
        let err = decode_hub_snapshot(&stalled).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("sequences out of order"), "{err}");
    }

    #[test]
    fn hub_snapshot_rejects_sequences_below_the_floor() {
        // A window whose recorded sequence sits below its own floor can only
        // come from corruption; the in-memory window prunes on advance.
        let mut hub = VerifierHub::default();
        hub.dedup.insert(
            1,
            FlowWindow {
                floor: 100,
                seen: [7u64].into_iter().collect(),
            },
        );
        let err = decode_hub_snapshot(&encode_hub_snapshot(&hub)).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("below window floor"), "{err}");
    }

    /// Offset of the first device record in a [`populated_hub`] snapshot:
    /// 32-byte header, u32 flow count, flow 4 (3 sequences), flow 9
    /// (2 sequences), u32 device count.
    fn populated_hub_device_at() -> usize {
        32 + 4 + (8 + 8 + 4 + 3 * 8) + (8 + 8 + 4 + 2 * 8) + 4
    }

    /// Byte offsets of device 2's record fields relative to the start of its
    /// record. Device 2 is all-healthy, so its flags byte is zero and no
    /// compromise pair is present: id (8), collections (8), six rollup
    /// counters (48), flags (1), first timestamp (8), chain (32), head (32),
    /// resident count (4), then 17-byte entries.
    const DEV_ENTRIES_AT: usize = 16;
    const DEV_EVICTIONS_AT: usize = 24;
    const DEV_STALE_AT: usize = 32;
    const DEV_HEALTHY_AT: usize = 40;
    const DEV_FLAGS_AT: usize = 64;
    const DEV_FIRST_TS_AT: usize = 65;
    const DEV_CHAIN_AT: usize = 73;
    const DEV_HEAD_AT: usize = 105;
    const DEV_RESIDENT_AT: usize = 137;
    const DEV_FIRST_ENTRY_AT: usize = 141;

    #[test]
    fn hub_snapshot_rejects_disordered_devices_and_timestamps() {
        let hub = populated_hub();
        let bytes = encode_hub_snapshot(&hub);
        let device_at = populated_hub_device_at();
        assert_eq!(&bytes[device_at..device_at + 8], &2u64.to_be_bytes());
        let mut disordered = bytes.clone();
        disordered[device_at..device_at + 8].copy_from_slice(&7u64.to_be_bytes());
        let err = decode_hub_snapshot(&disordered).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("devices out of order"), "{err}");

        let first_entry_at = device_at + DEV_FIRST_ENTRY_AT;
        let mut stalled = bytes.clone();
        // Copy entry 1's timestamp over entry 2's (each entry is 17 bytes).
        stalled.copy_within(first_entry_at..first_entry_at + 8, first_entry_at + 17);
        let err = decode_hub_snapshot(&stalled).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("entries out of order"), "{err}");
    }

    #[test]
    fn hub_snapshot_rejects_out_of_range_verdicts() {
        let hub = populated_hub();
        let bytes = encode_hub_snapshot(&hub);
        let verdict_at = populated_hub_device_at() + DEV_FIRST_ENTRY_AT + 16;
        let mut bad = bytes.clone();
        assert_eq!(bad[verdict_at], 0, "healthy verdict tag");
        bad[verdict_at] = 3;
        let err = decode_hub_snapshot(&bad).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::TagLength);
        assert!(err.to_string().contains("verdict tag 3"), "{err}");
    }

    #[test]
    fn hub_snapshot_rejects_bad_mode_headers() {
        // Mode tag out of range.
        let mut bytes = encode_hub_snapshot(&VerifierHub::default());
        bytes[3] = 2;
        let err = decode_hub_snapshot(&bytes).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::TagLength);
        assert!(err.to_string().contains("history mode"), "{err}");

        // An unbounded snapshot must carry a zero capacity.
        let mut bytes = encode_hub_snapshot(&VerifierHub::default());
        bytes[7] = 1;
        let err = decode_hub_snapshot(&bytes).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("ring capacity"), "{err}");

        // A ring snapshot must carry a non-zero capacity.
        let mut bytes = encode_hub_snapshot(&populated_ring_hub());
        bytes[4..8].copy_from_slice(&0u32.to_be_bytes());
        let err = decode_hub_snapshot(&bytes).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("zero capacity"), "{err}");
    }

    #[test]
    fn hub_snapshot_rejects_rollup_books_that_do_not_balance() {
        let bytes = encode_hub_snapshot(&populated_hub());
        let device_at = populated_hub_device_at();

        // Verdict counts must sum to the lifetime entry count.
        let mut bad = bytes.clone();
        bad[device_at + DEV_HEALTHY_AT + 7] = 4; // healthy: 3 -> 4
        let err = decode_hub_snapshot(&bad).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("do not sum"), "{err}");

        // Evictions + resident must equal entries.
        let mut bad = bytes.clone();
        bad[device_at + DEV_ENTRIES_AT + 7] = 4; // entries: 3 -> 4
        bad[device_at + DEV_HEALTHY_AT + 7] = 4; // keep the verdict sum consistent
        let err = decode_hub_snapshot(&bad).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("conservation"), "{err}");
    }

    #[test]
    fn hub_snapshot_rejects_phantom_evictions_in_unbounded_mode() {
        let bytes = encode_hub_snapshot(&populated_hub());
        let device_at = populated_hub_device_at();

        let mut bad = bytes.clone();
        bad[device_at + DEV_EVICTIONS_AT + 7] = 1; // evictions: 0 -> 1
        let err = decode_hub_snapshot(&bad).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("evictions"), "{err}");

        let mut bad = bytes.clone();
        bad[device_at + DEV_STALE_AT + 7] = 1; // stale discards: 0 -> 1
        let err = decode_hub_snapshot(&bad).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("stale"), "{err}");
    }

    #[test]
    fn hub_snapshot_rejects_out_of_range_flags() {
        let bytes = encode_hub_snapshot(&populated_hub());
        let flags_at = populated_hub_device_at() + DEV_FLAGS_AT;
        let mut bad = bytes.clone();
        assert_eq!(bad[flags_at], 0, "device 2 carries no compromise pair");
        bad[flags_at] = 2;
        let err = decode_hub_snapshot(&bad).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::TagLength);
        assert!(err.to_string().contains("flags"), "{err}");
    }

    #[test]
    fn hub_snapshot_rejects_an_implausible_first_timestamp() {
        let bytes = encode_hub_snapshot(&populated_hub());
        let first_ts_at = populated_hub_device_at() + DEV_FIRST_TS_AT;
        let mut bad = bytes.clone();
        bad[first_ts_at..first_ts_at + 8].copy_from_slice(&u64::MAX.to_be_bytes());
        let err = decode_hub_snapshot(&bad).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("first timestamp"), "{err}");
    }

    #[test]
    fn hub_snapshot_rejects_forged_digests() {
        let bytes = encode_hub_snapshot(&populated_hub());
        let device_at = populated_hub_device_at();

        // A non-zero chain with no evictions cannot come from a real history.
        let mut bad = bytes.clone();
        bad[device_at + DEV_CHAIN_AT] = 1;
        let err = decode_hub_snapshot(&bad).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::DigestLength);
        assert!(err.to_string().contains("no evictions"), "{err}");

        // A tampered head no longer extends the sealed chain.
        let mut bad = bytes.clone();
        bad[device_at + DEV_HEAD_AT] ^= 1;
        let err = decode_hub_snapshot(&bad).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::DigestLength);
        assert!(err.to_string().contains("does not extend"), "{err}");

        // Tampering with a retained entry breaks the head fold too.
        let mut bad = bytes.clone();
        let collected_at = device_at + DEV_FIRST_ENTRY_AT + 8;
        bad[collected_at + 7] ^= 1;
        let err = decode_hub_snapshot(&bad).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::DigestLength);
        assert!(err.to_string().contains("does not extend"), "{err}");
    }

    #[test]
    fn hub_snapshot_rejects_ring_windows_that_overflow_their_capacity() {
        // populated_ring_hub has no dedup flows: 32-byte header, u32 flow
        // count, u32 device count, then device 2's record at offset 40.
        let bytes = encode_hub_snapshot(&populated_ring_hub());
        let device_at = 32 + 4 + 4;
        assert_eq!(&bytes[device_at..device_at + 8], &2u64.to_be_bytes());

        // Lower the declared capacity below the retained window.
        let mut bad = bytes.clone();
        bad[4..8].copy_from_slice(&1u32.to_be_bytes());
        let err = decode_hub_snapshot(&bad).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("over capacity"), "{err}");

        // A non-empty history must retain at least one entry.
        let mut bad = bytes.clone();
        bad[device_at + DEV_EVICTIONS_AT + 7] = 3; // evictions: 1 -> 3 keeps conservation
        let resident_at = device_at + DEV_RESIDENT_AT;
        bad[resident_at..resident_at + 4].copy_from_slice(&0u32.to_be_bytes());
        let err = decode_hub_snapshot(&bad).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("retains no entries"), "{err}");
    }

    #[test]
    fn snapshot_and_frame_formats_reject_each_other() {
        let snapshot = encode_hub_snapshot(&populated_hub());
        // The snapshot magic reads as an implausible batch count.
        let err = decode_collection_batch(&snapshot).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(FrameView::parse(&snapshot).is_err());

        // And a valid frame never opens with the snapshot magic.
        let frame = encode_collection_batch(&[sample_response(1, 1)]);
        let err = decode_hub_snapshot(&frame).unwrap_err();
        assert_eq!(err.kind(), DecodeErrorKind::BatchCount);
        assert!(err.to_string().contains("not a hub snapshot"), "{err}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use erasmus_crypto::MAX_TAG_LEN;
    use proptest::prelude::*;

    fn arb_measurement() -> impl Strategy<Value = Measurement> {
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), DIGEST_LEN),
            proptest::collection::vec(any::<u8>(), 1..=MAX_TAG_LEN),
        )
            .prop_map(|(nanos, digest_bytes, tag_bytes)| {
                let mut digest = MemoryDigest::default();
                digest.copy_from_slice(&digest_bytes);
                Measurement::from_parts(SimTime::from_nanos(nanos), digest, MacTag::new(&tag_bytes))
            })
    }

    fn arb_response() -> impl Strategy<Value = CollectionResponse> {
        (
            any::<u64>(),
            proptest::collection::vec(arb_measurement(), 0..8),
        )
            .prop_map(|(device, measurements)| CollectionResponse {
                device: DeviceId::new(device),
                measurements,
                prover_time: SimDuration::ZERO,
            })
    }

    proptest! {
        /// Any well-formed measurement survives the wire byte-for-byte.
        #[test]
        fn measurement_roundtrips(measurement in arb_measurement()) {
            let bytes = encode_measurement(&measurement);
            prop_assert_eq!(decode_measurement(&bytes).unwrap(), measurement);
        }

        /// Any well-formed response — including ones with zero
        /// measurements — survives the wire.
        #[test]
        fn response_roundtrips(response in arb_response()) {
            let bytes = encode_collection_response(&response);
            prop_assert_eq!(decode_collection_response(&bytes).unwrap(), response);
        }

        /// A whole delivery batch survives the wire, preserving response
        /// order (the hub's per-device arrival order depends on it).
        #[test]
        fn batch_roundtrips(batch in proptest::collection::vec(arb_response(), 0..6)) {
            let bytes = encode_collection_batch(&batch);
            prop_assert_eq!(decode_collection_batch(&bytes).unwrap(), batch);
        }

        /// The zero-copy view path decodes exactly what the owned path
        /// decodes, and re-encoding is canonical (byte-identical input).
        #[test]
        fn views_agree_with_owned_path_and_reencode_canonically(
            batch in proptest::collection::vec(arb_response(), 0..6),
        ) {
            let bytes = encode_collection_batch(&batch);
            let frame = FrameView::parse(&bytes).unwrap();
            let via_views: Vec<CollectionResponse> =
                frame.responses().map(|view| view.to_response()).collect();
            prop_assert_eq!(&via_views, &decode_collection_batch(&bytes).unwrap());
            prop_assert_eq!(encode_collection_batch(&via_views), bytes);
        }

        /// Batch framing is prefix-strict: every strict prefix of a valid
        /// frame is rejected as truncated (no partial batch ever parses).
        #[test]
        fn truncated_batches_are_rejected(
            batch in proptest::collection::vec(arb_response(), 1..4),
            cut in any::<usize>(),
        ) {
            let bytes = encode_collection_batch(&batch);
            let len = cut % bytes.len(); // in 0..bytes.len(): strict prefix
            prop_assert!(decode_collection_batch(&bytes[..len]).is_err());
        }

        /// ...and suffix-strict: trailing garbage is rejected too.
        #[test]
        fn oversized_batches_are_rejected(
            batch in proptest::collection::vec(arb_response(), 0..4),
            trailer in proptest::collection::vec(any::<u8>(), 1..16),
        ) {
            let mut bytes = encode_collection_batch(&batch);
            bytes.extend_from_slice(&trailer);
            prop_assert!(decode_collection_batch(&bytes).is_err());
        }

        /// Any hub — unbounded or ring, wrapped or not, with arbitrary
        /// device timelines — survives the snapshot codec losslessly and
        /// re-encodes byte-identically.
        #[test]
        fn hub_snapshot_roundtrips_for_arbitrary_hubs(
            mode in (0usize..6).prop_map(|capacity| match capacity {
                0 => HistoryMode::Unbounded,
                capacity => HistoryMode::Ring(capacity),
            }),
            devices in proptest::collection::vec(
                (0u64..32, proptest::collection::vec((0u64..128, any::<u8>()), 0..12)),
                0..5,
            ),
            counters in (any::<u64>(), any::<u64>(), any::<u64>()),
        ) {
            let mut hub = VerifierHub::with_history(mode);
            hub.ingested = counters.0;
            hub.rejected = counters.1;
            hub.duplicates = counters.2;
            const VERDICTS: [MeasurementVerdict; 3] = [
                MeasurementVerdict::Healthy,
                MeasurementVerdict::Compromised,
                MeasurementVerdict::Forged,
            ];
            for (device, draws) in devices {
                let id = DeviceId::new(device);
                let history = hub
                    .histories
                    .entry(id)
                    .or_insert_with(|| DeviceHistory::with_mode(id, mode));
                for (ts, selector) in draws {
                    history.observe(HistoryEntry {
                        timestamp: SimTime::from_secs(ts),
                        verdict: VERDICTS[usize::from(selector) % VERDICTS.len()],
                        collected_at: SimTime::from_secs(ts + 3),
                    });
                }
            }
            let bytes = encode_hub_snapshot(&hub);
            let decoded = decode_hub_snapshot(&bytes).expect("own snapshot decodes");
            prop_assert_eq!(&decoded, &hub);
            prop_assert_eq!(encode_hub_snapshot(&decoded), bytes, "canonical");
        }
    }
}
