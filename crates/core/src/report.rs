//! Verification reports and attestation verdicts.

use std::fmt;

use erasmus_sim::{SimDuration, SimTime};

use crate::ids::DeviceId;
use crate::measurement::Measurement;

/// Verdict about a single collected measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasurementVerdict {
    /// The MAC verifies and the memory digest matches the known-good
    /// reference (or no reference is configured).
    Healthy,
    /// The MAC verifies but the memory digest differs from the known-good
    /// reference: the device was running unexpected software at that time.
    Compromised,
    /// The MAC does not verify: the stored measurement was forged or
    /// corrupted — direct evidence of tampering.
    Forged,
}

impl fmt::Display for MeasurementVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            MeasurementVerdict::Healthy => "healthy",
            MeasurementVerdict::Compromised => "compromised",
            MeasurementVerdict::Forged => "forged",
        };
        f.write_str(text)
    }
}

/// A collected measurement together with its verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedMeasurement {
    /// The measurement as received.
    pub measurement: Measurement,
    /// What the verifier concluded about it.
    pub verdict: MeasurementVerdict,
}

/// Overall verdict of one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttestationVerdict {
    /// Every expected measurement is present, authentic and healthy.
    AllHealthy,
    /// At least one authentic measurement shows unexpected software.
    CompromiseDetected,
    /// Measurements are missing, forged or out of order — something with
    /// write access to the store interfered (Section 3.2: tampering is
    /// self-incriminating).
    TamperingDetected,
    /// The response carried no evidence at all.
    NoEvidence,
}

impl AttestationVerdict {
    /// Whether this verdict should trigger corrective action.
    pub fn indicates_compromise(self) -> bool {
        !matches!(self, AttestationVerdict::AllHealthy)
    }
}

impl fmt::Display for AttestationVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            AttestationVerdict::AllHealthy => "all healthy",
            AttestationVerdict::CompromiseDetected => "compromise detected",
            AttestationVerdict::TamperingDetected => "tampering detected",
            AttestationVerdict::NoEvidence => "no evidence",
        };
        f.write_str(text)
    }
}

/// The verifier's conclusion after one collection phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionReport {
    device: DeviceId,
    verified: Vec<VerifiedMeasurement>,
    verdict: AttestationVerdict,
    missing: usize,
    freshness: SimDuration,
    collected_at: SimTime,
}

impl CollectionReport {
    /// Builds a report (used by [`crate::Verifier`]).
    pub(crate) fn new(
        device: DeviceId,
        verified: Vec<VerifiedMeasurement>,
        verdict: AttestationVerdict,
        missing: usize,
        freshness: SimDuration,
        collected_at: SimTime,
    ) -> Self {
        Self {
            device,
            verified,
            verdict,
            missing,
            freshness,
            collected_at,
        }
    }

    /// Which device this report is about.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The verified measurements, newest first.
    pub fn measurements(&self) -> &[VerifiedMeasurement] {
        &self.verified
    }

    /// Overall verdict.
    pub fn verdict(&self) -> AttestationVerdict {
        self.verdict
    }

    /// Convenience: `true` when the verdict is [`AttestationVerdict::AllHealthy`].
    pub fn all_valid(&self) -> bool {
        self.verdict == AttestationVerdict::AllHealthy
    }

    /// Number of measurements the verifier expected but did not receive.
    pub fn missing(&self) -> usize {
        self.missing
    }

    /// Freshness `f` of the newest measurement: how old it was at collection
    /// time. The paper expects `f ≈ T_M / 2` on average for ERASMUS and
    /// `f = 0` for on-demand attestation.
    pub fn freshness(&self) -> SimDuration {
        self.freshness
    }

    /// When the collection was verified.
    pub fn collected_at(&self) -> SimTime {
        self.collected_at
    }

    /// Iterator over measurements with a given verdict.
    pub fn with_verdict(
        &self,
        verdict: MeasurementVerdict,
    ) -> impl Iterator<Item = &VerifiedMeasurement> {
        self.verified.iter().filter(move |vm| vm.verdict == verdict)
    }
}

impl fmt::Display for CollectionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({} measurements, {} missing, freshness {})",
            self.device,
            self.verdict,
            self.verified.len(),
            self.missing,
            self.freshness
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erasmus_crypto::MacAlgorithm;

    fn sample_measurement(secs: u64) -> Measurement {
        Measurement::compute(
            &[1u8; 32],
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(secs),
            b"m",
        )
    }

    fn sample_report(verdict: AttestationVerdict) -> CollectionReport {
        CollectionReport::new(
            DeviceId::new(3),
            vec![
                VerifiedMeasurement {
                    measurement: sample_measurement(20),
                    verdict: MeasurementVerdict::Healthy,
                },
                VerifiedMeasurement {
                    measurement: sample_measurement(10),
                    verdict: MeasurementVerdict::Compromised,
                },
            ],
            verdict,
            1,
            SimDuration::from_secs(5),
            SimTime::from_secs(25),
        )
    }

    #[test]
    fn accessors() {
        let report = sample_report(AttestationVerdict::CompromiseDetected);
        assert_eq!(report.device(), DeviceId::new(3));
        assert_eq!(report.measurements().len(), 2);
        assert_eq!(report.missing(), 1);
        assert_eq!(report.freshness(), SimDuration::from_secs(5));
        assert_eq!(report.collected_at(), SimTime::from_secs(25));
        assert!(!report.all_valid());
        assert_eq!(report.with_verdict(MeasurementVerdict::Healthy).count(), 1);
        assert_eq!(report.with_verdict(MeasurementVerdict::Forged).count(), 0);
    }

    #[test]
    fn verdict_semantics() {
        assert!(!AttestationVerdict::AllHealthy.indicates_compromise());
        assert!(AttestationVerdict::CompromiseDetected.indicates_compromise());
        assert!(AttestationVerdict::TamperingDetected.indicates_compromise());
        assert!(AttestationVerdict::NoEvidence.indicates_compromise());
        assert!(sample_report(AttestationVerdict::AllHealthy).all_valid());
    }

    #[test]
    fn display_formats() {
        assert_eq!(MeasurementVerdict::Forged.to_string(), "forged");
        assert_eq!(
            AttestationVerdict::TamperingDetected.to_string(),
            "tampering detected"
        );
        let text = sample_report(AttestationVerdict::CompromiseDetected).to_string();
        assert!(text.contains("device-3"));
        assert!(text.contains("compromise detected"));
        assert!(text.contains("2 measurements"));
    }
}
