//! The rolling (windowed/circular) measurement buffer of Section 3.2.
//!
//! A fixed section of the prover's **insecure** storage holds the last `n`
//! measurements. Measurement `M_t` goes into slot `i = ⌊t / T_M⌋ mod n`,
//! so the schedule is stateless: the slot follows from the RROC timestamp
//! alone. The verifier is expected to collect often enough that no slot is
//! overwritten before it has been seen (`T_C ≤ n · T_M`).
//!
//! Because the storage is insecure, the buffer deliberately exposes
//! tampering operations ([`MeasurementBuffer::tamper_delete`],
//! [`MeasurementBuffer::tamper_replace`], …). Malware can do all of that —
//! what it cannot do is forge a measurement that verifies under `K`.

use erasmus_sim::{SimDuration, SimTime};

use crate::measurement::Measurement;

/// Rolling buffer of the prover's `n` most recent measurements.
///
/// # Example
///
/// ```
/// use erasmus_core::{Measurement, MeasurementBuffer};
/// use erasmus_crypto::MacAlgorithm;
/// use erasmus_sim::{SimDuration, SimTime};
///
/// let key = [1u8; 32];
/// let t_m = SimDuration::from_secs(10);
/// let mut buffer = MeasurementBuffer::new(4, t_m);
/// for i in 1..=6u64 {
///     let t = SimTime::from_secs(i * 10);
///     buffer.store(Measurement::compute(&key, MacAlgorithm::HmacSha256, t, b"mem"));
/// }
/// // Only the last 4 survive; the latest 2 are returned newest-first.
/// let latest = buffer.latest(2);
/// assert_eq!(latest[0].timestamp(), SimTime::from_secs(60));
/// assert_eq!(latest[1].timestamp(), SimTime::from_secs(50));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasurementBuffer {
    slots: Vec<Option<Measurement>>,
    measurement_interval: SimDuration,
    /// Total number of measurements ever stored (including overwritten ones).
    stored: u64,
    /// Number of stores that overwrote a not-yet-collected slot.
    overwrites: u64,
}

impl MeasurementBuffer {
    /// Creates a buffer with `slots` entries for a schedule with measurement
    /// interval `measurement_interval` (`T_M`).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or `measurement_interval` is zero; both
    /// would make the slot formula meaningless. Configuration-level
    /// validation with a proper error happens in
    /// [`ProverConfig`](crate::ProverConfig).
    pub fn new(slots: usize, measurement_interval: SimDuration) -> Self {
        assert!(slots > 0, "buffer must have at least one slot");
        assert!(
            !measurement_interval.is_zero(),
            "measurement interval must be non-zero"
        );
        Self {
            slots: vec![None; slots],
            measurement_interval,
            stored: 0,
            overwrites: 0,
        }
    }

    /// Number of slots `n`.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The measurement interval `T_M` the slot formula uses.
    pub fn measurement_interval(&self) -> SimDuration {
        self.measurement_interval
    }

    /// Number of slots currently holding a measurement.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|slot| slot.is_some()).count()
    }

    /// Whether no measurement has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total measurements stored over the buffer's lifetime.
    pub fn total_stored(&self) -> u64 {
        self.stored
    }

    /// Number of stores that overwrote an existing (uncollected) slot.
    pub fn overwrites(&self) -> u64 {
        self.overwrites
    }

    /// The slot index for a measurement taken at `timestamp`:
    /// `i = ⌊t / T_M⌋ mod n`.
    pub fn slot_for(&self, timestamp: SimTime) -> usize {
        let index = timestamp.as_nanos() / self.measurement_interval.as_nanos();
        (index % self.slots.len() as u64) as usize
    }

    /// Stores a measurement in its slot, returning the slot index. Any
    /// previous occupant is overwritten (that is the "rolling" part).
    pub fn store(&mut self, measurement: Measurement) -> usize {
        let slot = self.slot_for(measurement.timestamp());
        if self.slots[slot].is_some() {
            self.overwrites += 1;
        }
        self.slots[slot] = Some(measurement);
        self.stored += 1;
        slot
    }

    /// Direct read of one slot (the collection code path: no crypto, no
    /// state change).
    pub fn slot(&self, index: usize) -> Option<&Measurement> {
        self.slots.get(index).and_then(|slot| slot.as_ref())
    }

    /// The `k` most recent measurements, newest first. If fewer than `k` are
    /// present, returns all of them (the paper clamps `k = n` when a
    /// verifier over-asks).
    pub fn latest(&self, k: usize) -> Vec<Measurement> {
        let mut present: Vec<&Measurement> = self.slots.iter().flatten().collect();
        present.sort_by_key(|m| std::cmp::Reverse(m.timestamp()));
        present.into_iter().take(k).cloned().collect()
    }

    /// All stored measurements, oldest first.
    pub fn all(&self) -> Vec<Measurement> {
        let mut present: Vec<&Measurement> = self.slots.iter().flatten().collect();
        present.sort_by_key(|m| m.timestamp());
        present.into_iter().cloned().collect()
    }

    /// The most recent measurement, if any.
    pub fn most_recent(&self) -> Option<&Measurement> {
        self.slots.iter().flatten().max_by_key(|m| m.timestamp())
    }

    /// Largest collection period `T_C` that guarantees no loss:
    /// `T_C ≤ n · T_M` (Section 3.2).
    pub fn max_safe_collection_period(&self) -> SimDuration {
        self.measurement_interval * self.slots.len() as u64
    }

    // ------------------------------------------------------------------
    // Tampering API — what malware with write access to insecure storage
    // can do. None of these can produce a measurement that verifies.
    // ------------------------------------------------------------------

    /// Deletes every stored measurement (malware covering its tracks).
    pub fn tamper_clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
    }

    /// Deletes the measurement in one slot, if present. Returns whether a
    /// measurement was removed.
    pub fn tamper_delete(&mut self, slot: usize) -> bool {
        match self.slots.get_mut(slot) {
            Some(entry) => entry.take().is_some(),
            None => false,
        }
    }

    /// Overwrites a slot with an arbitrary (forged) measurement.
    pub fn tamper_replace(&mut self, slot: usize, forged: Measurement) {
        if let Some(entry) = self.slots.get_mut(slot) {
            *entry = Some(forged);
        }
    }

    /// Swaps the contents of two slots (re-ordering attack).
    pub fn tamper_swap(&mut self, a: usize, b: usize) {
        if a < self.slots.len() && b < self.slots.len() {
            self.slots.swap(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erasmus_crypto::MacAlgorithm;

    const KEY: [u8; 32] = [9u8; 32];
    const TM: SimDuration = SimDuration::from_secs(10);

    fn m(t_secs: u64) -> Measurement {
        Measurement::compute(
            &KEY,
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(t_secs),
            b"mem",
        )
    }

    #[test]
    fn slot_formula_matches_paper() {
        let buffer = MeasurementBuffer::new(12, TM);
        // i = ⌊t/T_M⌋ mod n
        assert_eq!(buffer.slot_for(SimTime::from_secs(0)), 0);
        assert_eq!(buffer.slot_for(SimTime::from_secs(10)), 1);
        assert_eq!(buffer.slot_for(SimTime::from_secs(119)), 11);
        assert_eq!(buffer.slot_for(SimTime::from_secs(120)), 0);
        assert_eq!(buffer.slot_for(SimTime::from_secs(35)), 3);
    }

    #[test]
    fn store_and_latest_ordering() {
        let mut buffer = MeasurementBuffer::new(8, TM);
        for i in 1..=5u64 {
            buffer.store(m(i * 10));
        }
        assert_eq!(buffer.len(), 5);
        let latest = buffer.latest(3);
        assert_eq!(latest.len(), 3);
        assert_eq!(latest[0].timestamp(), SimTime::from_secs(50));
        assert_eq!(latest[2].timestamp(), SimTime::from_secs(30));
        // Asking for more than is present returns everything.
        assert_eq!(buffer.latest(100).len(), 5);
        assert_eq!(
            buffer.most_recent().map(|m| m.timestamp()),
            Some(SimTime::from_secs(50))
        );
    }

    #[test]
    fn all_returns_oldest_first() {
        let mut buffer = MeasurementBuffer::new(8, TM);
        buffer.store(m(30));
        buffer.store(m(10));
        buffer.store(m(20));
        let timestamps: Vec<u64> = buffer
            .all()
            .iter()
            .map(|m| m.timestamp().as_nanos() / 1_000_000_000)
            .collect();
        assert_eq!(timestamps, vec![10, 20, 30]);
    }

    #[test]
    fn rolling_overwrite_behaviour() {
        let mut buffer = MeasurementBuffer::new(4, TM);
        for i in 1..=4u64 {
            buffer.store(m(i * 10));
        }
        assert_eq!(buffer.overwrites(), 0);
        // Timestamp 50 maps to the same slot as 10 (n = 4), overwriting it.
        buffer.store(m(50));
        assert_eq!(buffer.overwrites(), 1);
        assert_eq!(buffer.len(), 4);
        assert_eq!(buffer.total_stored(), 5);
        let timestamps: Vec<u64> = buffer
            .all()
            .iter()
            .map(|m| m.timestamp().as_secs_f64() as u64)
            .collect();
        assert_eq!(timestamps, vec![20, 30, 40, 50]);
    }

    #[test]
    fn max_safe_collection_period() {
        let buffer = MeasurementBuffer::new(12, TM);
        assert_eq!(
            buffer.max_safe_collection_period(),
            SimDuration::from_secs(120)
        );
    }

    #[test]
    fn empty_buffer_queries() {
        let buffer = MeasurementBuffer::new(4, TM);
        assert!(buffer.is_empty());
        assert!(buffer.latest(3).is_empty());
        assert!(buffer.all().is_empty());
        assert!(buffer.most_recent().is_none());
        assert!(buffer.slot(0).is_none());
        assert!(buffer.slot(100).is_none());
    }

    #[test]
    fn tampering_operations() {
        let mut buffer = MeasurementBuffer::new(4, TM);
        for i in 1..=4u64 {
            buffer.store(m(i * 10));
        }
        // Delete one, swap two, replace one with a forgery, clear all.
        assert!(buffer.tamper_delete(1));
        assert!(!buffer.tamper_delete(1));
        assert!(!buffer.tamper_delete(99));
        assert_eq!(buffer.len(), 3);

        buffer.tamper_swap(2, 3);
        assert_eq!(buffer.len(), 3);

        let forged = Measurement::from_parts(
            SimTime::from_secs(999),
            [0u8; 32],
            erasmus_crypto::MacTag::new(vec![0u8; 32]),
        );
        buffer.tamper_replace(0, forged.clone());
        assert_eq!(buffer.slot(0), Some(&forged));
        // Forged entries never verify under the real key.
        assert!(!buffer
            .slot(0)
            .expect("slot 0")
            .verify(&KEY, MacAlgorithm::HmacSha256));

        buffer.tamper_clear();
        assert!(buffer.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_panics() {
        let _ = MeasurementBuffer::new(0, TM);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_panics() {
        let _ = MeasurementBuffer::new(4, SimDuration::ZERO);
    }
}
