//! The ERASMUS prover: a device that periodically measures itself.

use erasmus_crypto::{KeyedMac, MultiKeyedMac};
use erasmus_hw::{DeviceKey, DeviceProfile, Mcu};
use erasmus_sim::{SimDuration, SimTime};

use crate::buffer::MeasurementBuffer;
use crate::config::ProverConfig;
use crate::error::Error;
use crate::ids::DeviceId;
use crate::measurement::Measurement;
use crate::protocol::{CollectionRequest, CollectionResponse, OnDemandRequest, OnDemandResponse};
use crate::schedule::MeasurementScheduler;

/// How far in the past a verifier request timestamp may lie before the
/// prover rejects it as stale (SMART+ freshness check).
const REQUEST_FRESHNESS_WINDOW: SimDuration = SimDuration::from_secs(60);
/// Allowed forward clock skew between verifier and prover.
const REQUEST_MAX_SKEW: SimDuration = SimDuration::from_secs(5);

/// The result of one self-measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasurementOutcome {
    /// The measurement that was recorded.
    pub measurement: Measurement,
    /// Which rolling-buffer slot it went into.
    pub slot: usize,
    /// How long the prover was busy computing it.
    pub duration: SimDuration,
}

/// An ERASMUS prover device.
///
/// The prover wraps a simulated [`Mcu`] and implements the two phases of the
/// protocol:
///
/// * **measurement phase** — [`Prover::self_measure`] /
///   [`Prover::run_until`] compute `M_t = <t, H(mem_t), MAC_K(t, H(mem_t))>`
///   inside the trusted attestation context and store it in the rolling
///   buffer (insecure storage);
/// * **collection phase** — [`Prover::handle_collection`] serves the latest
///   `k` measurements with *no* cryptographic work, and
///   [`Prover::handle_on_demand`] implements the authenticated
///   ERASMUS+OD / on-demand path.
///
/// # Example
///
/// ```
/// use erasmus_core::{CollectionRequest, DeviceId, Prover, ProverConfig};
/// use erasmus_hw::{DeviceKey, DeviceProfile};
/// use erasmus_sim::{SimDuration, SimTime};
///
/// # fn main() -> Result<(), erasmus_core::Error> {
/// let config = ProverConfig::builder()
///     .measurement_interval(SimDuration::from_secs(10))
///     .buffer_slots(8)
///     .build()?;
/// let mut prover = Prover::new(
///     DeviceId::new(1),
///     DeviceProfile::msp430_8mhz(1024),
///     DeviceKey::from_bytes([1; 32]),
///     config,
/// )?;
/// // Let the scheduled measurements up to t = 60 s happen.
/// let taken = prover.run_until(SimTime::from_secs(60))?;
/// assert_eq!(taken.len(), 6);
/// let response = prover.handle_collection(&CollectionRequest::latest(3), SimTime::from_secs(60));
/// assert_eq!(response.measurements.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Prover {
    id: DeviceId,
    mcu: Mcu,
    config: ProverConfig,
    buffer: MeasurementBuffer,
    scheduler: MeasurementScheduler,
    /// Precomputed MAC key schedule, derived once at provisioning: the
    /// ipad/opad (or BLAKE2s key-block) absorption happens here, not per
    /// measurement — mirroring how SMART+/HYDRA-style firmware holds `K`.
    keyed: KeyedMac,
    last_request_seen: Option<SimTime>,
    busy_time: SimDuration,
    measurements_taken: u64,
    aborted_measurements: u64,
}

impl Prover {
    /// Provisions a prover: installs the key into the device ROM, configures
    /// the measurement schedule and allocates the rolling buffer.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid [`ProverConfig`]s (the config was
    /// validated by its builder), but returns `Result` so provisioning-time
    /// checks can be added without breaking callers.
    pub fn new(
        id: DeviceId,
        profile: DeviceProfile,
        key: DeviceKey,
        config: ProverConfig,
    ) -> Result<Self, Error> {
        let scheduler = MeasurementScheduler::new_with_phase(
            config.schedule().clone(),
            config.measurement_interval(),
            key.as_bytes(),
            config.phase_offset(),
        );
        let buffer = MeasurementBuffer::new(config.buffer_slots(), config.measurement_interval());
        let keyed = config.mac_algorithm().with_key(key.as_bytes());
        let mcu = Mcu::new(profile, key);
        Ok(Self {
            id,
            mcu,
            config,
            buffer,
            scheduler,
            keyed,
            last_request_seen: None,
            busy_time: SimDuration::ZERO,
            measurements_taken: 0,
            aborted_measurements: 0,
        })
    }

    /// The device identifier.
    pub fn device_id(&self) -> DeviceId {
        self.id
    }

    /// The prover configuration.
    pub fn config(&self) -> &ProverConfig {
        &self.config
    }

    /// The underlying simulated device.
    pub fn mcu(&self) -> &Mcu {
        &self.mcu
    }

    /// Mutable access to the device — this is the *untrusted* surface that
    /// application code and malware use (writing application memory,
    /// advancing time). The key stays out of reach.
    pub fn mcu_mut(&mut self) -> &mut Mcu {
        &mut self.mcu
    }

    /// The rolling measurement buffer (insecure storage, read-only view).
    pub fn buffer(&self) -> &MeasurementBuffer {
        &self.buffer
    }

    /// Mutable access to the rolling buffer. Malware uses this to delete or
    /// mangle stored measurements; it still cannot forge valid ones.
    pub fn buffer_mut(&mut self) -> &mut MeasurementBuffer {
        &mut self.buffer
    }

    /// Current device time (RROC reading).
    pub fn now(&self) -> SimTime {
        self.mcu.rroc_now()
    }

    /// When the next self-measurement is due.
    pub fn next_measurement_due(&self) -> SimTime {
        self.scheduler.next_due()
    }

    /// Total time the prover has spent on attestation work (measurements and
    /// collections) — the "real-time burden" the paper argues ERASMUS keeps
    /// off the collection path.
    pub fn total_busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Number of self-measurements taken so far.
    pub fn measurements_taken(&self) -> u64 {
        self.measurements_taken
    }

    /// Number of measurements deferred/aborted for time-critical tasks.
    pub fn aborted_measurements(&self) -> u64 {
        self.aborted_measurements
    }

    /// Takes one self-measurement at time `now` (advancing the device clock
    /// there first) regardless of the schedule. The scheduled path is
    /// [`Prover::run_until`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Hardware`] if the MPU or secure boot refuse entry to
    /// the trusted measurement context.
    pub fn self_measure(&mut self, now: SimTime) -> Result<MeasurementOutcome, Error> {
        self.mcu.advance_time_to(now);
        let alg = self.config.mac_algorithm();
        let keyed = &self.keyed;
        let measurement = self.mcu.run_trusted(|ctx| {
            Measurement::from_digest_keyed(keyed, ctx.now(), ctx.memory_digest())
        })?;
        let duration = self
            .mcu
            .cost_model()
            .measurement(self.mcu.app_memory_len(), alg);
        self.busy_time += duration;
        self.measurements_taken += 1;
        let slot = self.buffer.store(measurement.clone());
        self.scheduler.mark_completed(now);
        Ok(MeasurementOutcome {
            measurement,
            slot,
            duration,
        })
    }

    /// Takes one self-measurement on each of `N` provers at time `now`,
    /// hashing their memory images in lockstep through the lane-interleaved
    /// SHA-256 core and MACing the timestamped digests through the
    /// transposed per-device key schedules.
    ///
    /// Per device, the outcome is bit-identical to
    /// [`Prover::self_measure`]`(now)`: same trusted-entry gate (MPU rules
    /// and secure boot are checked on every device before any memory is
    /// read), same timestamps, same stored measurements, same cost-model
    /// charge. Only the host wall-clock differs — that is the point: `N`
    /// equal-sized memory images hash in one vectorized pass.
    ///
    /// All provers must use the same MAC algorithm and equal-sized
    /// application memories; fleet drivers batch devices per size class and
    /// fall back to [`Prover::self_measure`] for ragged remainders.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Hardware`] if any device refuses entry to the
    /// trusted measurement context; no measurement is stored on any device
    /// in that case.
    ///
    /// # Panics
    ///
    /// Panics if the provers mix MAC algorithms or memory sizes.
    pub fn self_measure_batch<const N: usize>(
        mut provers: [&mut Prover; N],
        now: SimTime,
    ) -> Result<[MeasurementOutcome; N], Error> {
        // Gate every device first: a batch either measures everywhere or
        // nowhere, so a mid-batch MPU fault cannot leave half the lanes
        // with stored evidence.
        for prover in provers.iter_mut() {
            prover.mcu.advance_time_to(now);
        }
        for prover in provers.iter() {
            prover.mcu.trusted_entry_allowed()?;
        }
        for prover in provers.iter_mut() {
            prover.mcu.enter_trusted()?;
        }
        let timestamps: [SimTime; N] = std::array::from_fn(|i| provers[i].mcu.rroc_now());
        let measurements = {
            let keyed = MultiKeyedMac::new(std::array::from_fn(|i| &provers[i].keyed));
            let memories: [&[u8]; N] = std::array::from_fn(|i| provers[i].mcu.app_memory());
            Measurement::compute_keyed_batch(&keyed, timestamps, memories)
        };

        let mut outcomes: [Option<MeasurementOutcome>; N] = [const { None }; N];
        for ((prover, measurement), outcome) in provers
            .into_iter()
            .zip(measurements)
            .zip(outcomes.iter_mut())
        {
            let alg = prover.config.mac_algorithm();
            let duration = prover
                .mcu
                .cost_model()
                .measurement(prover.mcu.app_memory_len(), alg);
            prover.busy_time += duration;
            prover.measurements_taken += 1;
            let slot = prover.buffer.store(measurement.clone());
            prover.scheduler.mark_completed(now);
            *outcome = Some(MeasurementOutcome {
                measurement,
                slot,
                duration,
            });
        }
        Ok(outcomes.map(|outcome| outcome.expect("every lane produced an outcome")))
    }

    /// Performs every scheduled self-measurement due up to and including
    /// `horizon`, in order, and advances the device clock to `horizon`.
    ///
    /// # Errors
    ///
    /// Returns the first hardware error encountered; measurements taken
    /// before the failure remain stored.
    pub fn run_until(&mut self, horizon: SimTime) -> Result<Vec<MeasurementOutcome>, Error> {
        let mut outcomes = Vec::new();
        while self.scheduler.next_due() <= horizon {
            let due = self.scheduler.next_due();
            outcomes.push(self.self_measure(due)?);
        }
        self.mcu.advance_time_to(horizon);
        Ok(outcomes)
    }

    /// Fast-forwards the device to `now` without taking the measurements
    /// that were due meanwhile: the device was powered off or away from the
    /// fleet (churn), so that evidence simply does not exist. The schedule
    /// stays phase-aligned; the verifier will see the gap as missing
    /// measurements, which is the honest outcome.
    pub fn skip_missed_measurements(&mut self, now: SimTime) {
        self.mcu.advance_time_to(now);
        self.scheduler.skip_until(now);
    }

    /// Requests deferral of the pending measurement because a time-critical
    /// task is running (Section 5). Returns the new due time if the
    /// schedule's lenient window allows it.
    pub fn defer_measurement(&mut self, now: SimTime) -> Option<SimTime> {
        let deferred = self.scheduler.defer(now);
        if deferred.is_some() {
            self.aborted_measurements += 1;
        }
        deferred
    }

    /// Serves an ERASMUS collection request (Figure 2): read the latest `k`
    /// measurements from the buffer and send them. No cryptography, no
    /// request authentication, no state change.
    pub fn handle_collection(
        &mut self,
        request: &CollectionRequest,
        now: SimTime,
    ) -> CollectionResponse {
        self.mcu.advance_time_to(now);
        let k = request.k.min(self.buffer.capacity());
        let measurements = self.buffer.latest(k);
        let payload: usize = measurements.iter().map(Measurement::wire_size).sum();
        let prover_time = self
            .mcu
            .cost_model()
            .erasmus_collection(measurements.len(), payload);
        self.busy_time += prover_time;
        CollectionResponse {
            device: self.id,
            measurements,
            prover_time,
        }
    }

    /// Serves an authenticated on-demand / ERASMUS+OD request (Figure 4):
    /// check freshness, verify the request MAC, compute a fresh measurement
    /// `M_0`, and return it together with the latest `k` buffered
    /// measurements.
    ///
    /// # Errors
    ///
    /// Returns [`Error::RequestRejected`] when the request is stale, replayed
    /// or fails MAC verification, and [`Error::Hardware`] if the trusted
    /// context cannot be entered.
    pub fn handle_on_demand(
        &mut self,
        request: &OnDemandRequest,
        now: SimTime,
    ) -> Result<OnDemandResponse, Error> {
        self.mcu.advance_time_to(now);
        let now = self.mcu.rroc_now();
        let alg = self.config.mac_algorithm();

        // Freshness: the request timestamp must be recent and strictly newer
        // than any previously accepted request (anti-replay).
        if request.treq > now + REQUEST_MAX_SKEW {
            return Err(Error::RequestRejected {
                reason: "request timestamp is in the future".to_owned(),
            });
        }
        if now.saturating_duration_since(request.treq) > REQUEST_FRESHNESS_WINDOW {
            return Err(Error::RequestRejected {
                reason: "request timestamp is stale".to_owned(),
            });
        }
        if let Some(last) = self.last_request_seen {
            if request.treq <= last {
                return Err(Error::RequestRejected {
                    reason: "request timestamp replays or reorders a previous request".to_owned(),
                });
            }
        }

        // Authenticate the request and compute the fresh measurement inside
        // the trusted context, both through the precomputed key schedule.
        let keyed = &self.keyed;
        let (request_ok, fresh) = self.mcu.run_trusted(|ctx| {
            let ok = request.verify_keyed(keyed);
            let fresh = if ok {
                Some(Measurement::from_digest_keyed(
                    keyed,
                    ctx.now(),
                    ctx.memory_digest(),
                ))
            } else {
                None
            };
            (ok, fresh)
        })?;
        // The prover pays for the request check whether or not it succeeds.
        let mut prover_time = self.mcu.cost_model().verify_request(alg);
        if !request_ok {
            self.busy_time += prover_time;
            return Err(Error::RequestRejected {
                reason: "request MAC verification failed".to_owned(),
            });
        }
        let fresh = fresh.expect("fresh measurement exists when the request verified");
        self.last_request_seen = Some(request.treq);
        self.measurements_taken += 1;
        self.buffer.store(fresh.clone());

        let k = request.k.min(self.buffer.capacity());
        let history: Vec<Measurement> = self
            .buffer
            .latest(k + 1)
            .into_iter()
            .filter(|m| m != &fresh)
            .take(k)
            .collect();

        let payload = fresh.wire_size() + history.iter().map(Measurement::wire_size).sum::<usize>();
        prover_time += self
            .mcu
            .cost_model()
            .measurement(self.mcu.app_memory_len(), alg)
            + self
                .mcu
                .cost_model()
                .erasmus_collection(history.len(), payload);
        self.busy_time += prover_time;

        Ok(OnDemandResponse {
            device: self.id,
            fresh,
            history,
            prover_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleKind;
    use erasmus_crypto::MacAlgorithm;
    use erasmus_hw::MpuConfig;

    const KEY_BYTES: [u8; 32] = [0x11u8; 32];

    fn prover_with(config: ProverConfig) -> Prover {
        Prover::new(
            DeviceId::new(1),
            DeviceProfile::msp430_8mhz(2048),
            DeviceKey::from_bytes(KEY_BYTES),
            config,
        )
        .expect("provisioning succeeds")
    }

    fn default_prover() -> Prover {
        prover_with(
            ProverConfig::builder()
                .measurement_interval(SimDuration::from_secs(10))
                .buffer_slots(8)
                .build()
                .expect("valid config"),
        )
    }

    #[test]
    fn scheduled_measurements_follow_t_m() {
        let mut prover = default_prover();
        let outcomes = prover
            .run_until(SimTime::from_secs(45))
            .expect("measurements");
        assert_eq!(outcomes.len(), 4); // t = 10, 20, 30, 40
        assert_eq!(prover.measurements_taken(), 4);
        assert_eq!(prover.buffer().len(), 4);
        assert_eq!(prover.now(), SimTime::from_secs(45));
        assert_eq!(prover.next_measurement_due(), SimTime::from_secs(50));
        // All stored measurements verify under the device key.
        for m in prover.buffer().all() {
            assert!(m.verify(&KEY_BYTES, MacAlgorithm::HmacSha256));
        }
    }

    #[test]
    fn collection_returns_latest_first_and_clamps_k() {
        let mut prover = default_prover();
        prover
            .run_until(SimTime::from_secs(60))
            .expect("measurements");
        let response =
            prover.handle_collection(&CollectionRequest::latest(3), SimTime::from_secs(61));
        assert_eq!(response.measurements.len(), 3);
        assert_eq!(response.measurements[0].timestamp(), SimTime::from_secs(60));
        assert_eq!(response.device, DeviceId::new(1));

        // k larger than the buffer is clamped to n.
        let response = prover.handle_collection(&CollectionRequest::all(), SimTime::from_secs(62));
        assert_eq!(response.measurements.len(), 6);
    }

    #[test]
    fn collection_is_cheap_measurement_is_not() {
        let mut prover = default_prover();
        prover
            .run_until(SimTime::from_secs(30))
            .expect("measurements");
        let before = prover.total_busy_time();
        let response =
            prover.handle_collection(&CollectionRequest::latest(3), SimTime::from_secs(31));
        let collection_cost = prover.total_busy_time() - before;
        assert_eq!(collection_cost, response.prover_time);
        // One measurement on this profile takes ~1.4 s; the collection path
        // must be orders of magnitude cheaper (Table 2's "factor of 3,000" is
        // on the i.MX6 profile and is exercised by the bench).
        let one_measurement = prover
            .mcu()
            .cost_model()
            .measurement(2048, MacAlgorithm::HmacSha256);
        assert!(one_measurement.as_secs_f64() / collection_cost.as_secs_f64() > 500.0);
    }

    #[test]
    fn on_demand_request_happy_path() {
        let mut prover = default_prover();
        prover
            .run_until(SimTime::from_secs(30))
            .expect("measurements");
        let request = OnDemandRequest::new(
            &KEY_BYTES,
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(31),
            2,
        );
        let response = prover
            .handle_on_demand(&request, SimTime::from_secs(31))
            .expect("request accepted");
        assert_eq!(response.fresh.timestamp(), SimTime::from_secs(31));
        assert!(response.fresh.verify(&KEY_BYTES, MacAlgorithm::HmacSha256));
        assert_eq!(response.history.len(), 2);
        // History excludes the fresh measurement itself.
        assert!(response.history.iter().all(|m| m != &response.fresh));
    }

    #[test]
    fn on_demand_rejects_bad_mac_stale_and_replayed_requests() {
        let mut prover = default_prover();
        prover
            .run_until(SimTime::from_secs(100))
            .expect("measurements");

        // Wrong key → MAC failure.
        let forged = OnDemandRequest::new(
            &[0u8; 32],
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(101),
            1,
        );
        assert!(matches!(
            prover.handle_on_demand(&forged, SimTime::from_secs(101)),
            Err(Error::RequestRejected { .. })
        ));

        // Stale timestamp.
        let stale = OnDemandRequest::new(
            &KEY_BYTES,
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(10),
            1,
        );
        assert!(matches!(
            prover.handle_on_demand(&stale, SimTime::from_secs(101)),
            Err(Error::RequestRejected { .. })
        ));

        // Future timestamp beyond allowed skew.
        let future = OnDemandRequest::new(
            &KEY_BYTES,
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(500),
            1,
        );
        assert!(matches!(
            prover.handle_on_demand(&future, SimTime::from_secs(101)),
            Err(Error::RequestRejected { .. })
        ));

        // Valid request accepted once…
        let good = OnDemandRequest::new(
            &KEY_BYTES,
            MacAlgorithm::HmacSha256,
            SimTime::from_secs(101),
            1,
        );
        prover
            .handle_on_demand(&good, SimTime::from_secs(101))
            .expect("accepted");
        // …and rejected when replayed.
        assert!(matches!(
            prover.handle_on_demand(&good, SimTime::from_secs(102)),
            Err(Error::RequestRejected { .. })
        ));
    }

    #[test]
    fn batch_measurement_is_bit_identical_to_scalar() {
        for alg in [MacAlgorithm::HmacSha256, MacAlgorithm::KeyedBlake2s] {
            let config = ProverConfig::builder()
                .measurement_interval(SimDuration::from_secs(10))
                .buffer_slots(8)
                .mac_algorithm(alg)
                .build()
                .expect("valid config");
            let make = |seed: u8| {
                let mut prover = Prover::new(
                    DeviceId::new(seed as u64),
                    DeviceProfile::msp430_8mhz(2048),
                    DeviceKey::from_bytes([seed; 32]),
                    config.clone(),
                )
                .expect("provisioning succeeds");
                prover
                    .mcu_mut()
                    .write_app_memory(0, &[seed ^ 0x3c; 64])
                    .expect("image");
                prover
            };
            // Scalar reference fleet and batch fleet with identical state.
            let mut scalar: Vec<Prover> = (0u8..4).map(make).collect();
            let mut batched: Vec<Prover> = (0u8..4).map(make).collect();
            let now = SimTime::from_secs(10);
            let scalar_outcomes: Vec<MeasurementOutcome> = scalar
                .iter_mut()
                .map(|p| p.self_measure(now).expect("scalar measures"))
                .collect();
            let mut lanes: Vec<&mut Prover> = batched.iter_mut().collect();
            let mut drain = lanes.drain(..);
            let batch_outcomes = Prover::self_measure_batch::<4>(
                std::array::from_fn(|_| drain.next().expect("four lanes")),
                now,
            )
            .expect("batch measures");
            drop(drain);
            for (lane, (a, b)) in scalar_outcomes.iter().zip(&batch_outcomes).enumerate() {
                assert_eq!(a, b, "{alg} lane {lane}");
            }
            for (a, b) in scalar.iter().zip(&batched) {
                assert_eq!(a.measurements_taken(), b.measurements_taken());
                assert_eq!(a.total_busy_time(), b.total_busy_time());
                assert_eq!(a.next_measurement_due(), b.next_measurement_due());
                assert_eq!(a.buffer().len(), b.buffer().len());
                assert_eq!(a.mcu().trusted_invocations(), b.mcu().trusted_invocations());
            }
        }
    }

    #[test]
    fn batch_measurement_is_all_or_nothing_on_hardware_fault() {
        let mut healthy = default_prover();
        let mut broken = default_prover();
        broken.mcu_mut().set_mpu(MpuConfig::deny_all());
        let result =
            Prover::self_measure_batch::<2>([&mut healthy, &mut broken], SimTime::from_secs(10));
        assert!(matches!(result, Err(Error::Hardware(_))));
        // The healthy device stored nothing and was not charged.
        assert_eq!(healthy.measurements_taken(), 0);
        assert_eq!(healthy.buffer().len(), 0);
        assert_eq!(healthy.total_busy_time(), SimDuration::ZERO);
        assert_eq!(healthy.mcu().trusted_invocations(), 0);
    }

    #[test]
    fn memory_changes_show_up_in_measurements() {
        let mut prover = default_prover();
        prover
            .run_until(SimTime::from_secs(10))
            .expect("measurement");
        let clean = prover
            .buffer()
            .most_recent()
            .expect("measurement")
            .digest()
            .to_vec();
        prover
            .mcu_mut()
            .write_app_memory(0, b"malware!")
            .expect("infection");
        prover
            .run_until(SimTime::from_secs(20))
            .expect("measurement");
        let infected = prover
            .buffer()
            .most_recent()
            .expect("measurement")
            .digest()
            .to_vec();
        assert_ne!(clean, infected);
    }

    #[test]
    fn skip_missed_measurements_leaves_a_gap() {
        let mut prover = default_prover();
        prover
            .run_until(SimTime::from_secs(25))
            .expect("measurements");
        assert_eq!(prover.measurements_taken(), 2); // t = 10, 20
        prover.skip_missed_measurements(SimTime::from_secs(65));
        // Due times 30..60 never fired; the schedule resumes on phase.
        assert_eq!(prover.measurements_taken(), 2);
        assert_eq!(prover.next_measurement_due(), SimTime::from_secs(70));
        assert_eq!(prover.now(), SimTime::from_secs(65));
        let outcomes = prover
            .run_until(SimTime::from_secs(75))
            .expect("measurements");
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].measurement.timestamp(), SimTime::from_secs(70));
    }

    #[test]
    fn lenient_schedule_deferral_counts() {
        let mut prover = prover_with(
            ProverConfig::builder()
                .measurement_interval(SimDuration::from_secs(10))
                .buffer_slots(8)
                .schedule(ScheduleKind::Lenient { window_factor: 2.0 })
                .build()
                .expect("valid config"),
        );
        assert_eq!(prover.next_measurement_due(), SimTime::from_secs(10));
        let deferred = prover
            .defer_measurement(SimTime::from_secs(9))
            .expect("deferral");
        assert_eq!(deferred, SimTime::from_secs(20));
        assert_eq!(prover.aborted_measurements(), 1);
        // Regular schedules never defer.
        let mut regular = default_prover();
        assert!(regular.defer_measurement(SimTime::from_secs(9)).is_none());
        assert_eq!(regular.aborted_measurements(), 0);
    }

    #[test]
    fn broken_mpu_blocks_measurements() {
        let mut prover = default_prover();
        prover.mcu_mut().set_mpu(MpuConfig::deny_all());
        assert!(matches!(
            prover.self_measure(SimTime::from_secs(10)),
            Err(Error::Hardware(_))
        ));
    }

    #[test]
    fn irregular_schedule_produces_measurements_within_bounds() {
        let mut prover = prover_with(
            ProverConfig::builder()
                .measurement_interval(SimDuration::from_secs(10))
                .buffer_slots(32)
                .schedule(ScheduleKind::Irregular {
                    lower: SimDuration::from_secs(5),
                    upper: SimDuration::from_secs(15),
                })
                .build()
                .expect("valid config"),
        );
        let outcomes = prover
            .run_until(SimTime::from_secs(200))
            .expect("measurements");
        assert!(!outcomes.is_empty());
        let mut prev = SimTime::ZERO;
        for outcome in &outcomes {
            let gap = outcome
                .measurement
                .timestamp()
                .saturating_duration_since(prev);
            assert!(gap >= SimDuration::from_secs(5) && gap < SimDuration::from_secs(15));
            prev = outcome.measurement.timestamp();
        }
    }
}
