//! Property tests: the bounded ring history against an unbounded oracle.
//!
//! The compact history must be a *lossy view with honest books*, never a
//! different timeline: in-order arrival produces identical lifetime tallies
//! and head digests to the unbounded model, arbitrary arrival keeps every
//! conservation law, and `merge_from` over a shard split reproduces the
//! sequential-ingest state bit for bit (including the hash chain). Style
//! follows `queue_equivalence.rs` in the sim crate: generate arbitrary
//! workloads, drive implementation and oracle side by side.

use erasmus_core::{DeviceHistory, DeviceId, HistoryEntry, HistoryMode, MeasurementVerdict};
use erasmus_sim::SimTime;
use proptest::collection::vec;
use proptest::prelude::*;

const VERDICTS: [MeasurementVerdict; 3] = [
    MeasurementVerdict::Healthy,
    MeasurementVerdict::Compromised,
    MeasurementVerdict::Forged,
];

/// The worst-verdict-wins order shared with `DeviceHistory`.
fn rank(verdict: MeasurementVerdict) -> u8 {
    match verdict {
        MeasurementVerdict::Healthy => 0,
        MeasurementVerdict::Compromised => 1,
        MeasurementVerdict::Forged => 2,
    }
}

fn entry(ts_secs: u64, selector: u8) -> HistoryEntry {
    HistoryEntry {
        timestamp: SimTime::from_secs(ts_secs),
        verdict: VERDICTS[usize::from(selector) % VERDICTS.len()],
        collected_at: SimTime::from_secs(ts_secs + 5),
    }
}

/// Arbitrary arrival stream: timestamps collide on purpose (dedup and
/// verdict-upgrade paths) and arrive in any order (stale-discard path).
fn arb_timeline() -> impl Strategy<Value = Vec<HistoryEntry>> {
    vec((0u64..256, any::<u8>()), 0..64)
        .prop_map(|draws| draws.into_iter().map(|(ts, v)| entry(ts, v)).collect())
}

fn lifetime_verdicts(history: &DeviceHistory) -> usize {
    VERDICTS.iter().map(|v| history.count(*v)).sum()
}

proptest! {
    /// In-order, duplicate-free arrival: the ring is exactly the unbounded
    /// oracle with the oldest entries folded into the chain — same lifetime
    /// tallies, same head digest, retained window equal to the oracle's
    /// newest suffix.
    #[test]
    fn in_order_ring_matches_the_unbounded_oracle(
        entries in arb_timeline(),
        capacity in 1usize..8,
    ) {
        let mut entries = entries;
        entries.sort_by_key(|e| e.timestamp);
        entries.dedup_by_key(|e| e.timestamp);
        let device = DeviceId::new(7);
        let mut ring = DeviceHistory::with_mode(device, HistoryMode::Ring(capacity));
        let mut oracle = DeviceHistory::new(device);
        for e in &entries {
            ring.observe(e.clone());
            oracle.observe(e.clone());
        }

        prop_assert_eq!(ring.stale_discards(), 0);
        prop_assert_eq!(ring.len(), oracle.len());
        for verdict in VERDICTS {
            prop_assert_eq!(ring.count(verdict), oracle.count(verdict));
        }
        prop_assert_eq!(ring.first_timestamp(), oracle.first_timestamp());
        prop_assert_eq!(ring.last_timestamp(), oracle.last_timestamp());
        prop_assert_eq!(ring.first_compromise(), oracle.first_compromise());
        prop_assert_eq!(ring.head_digest(), oracle.head_digest());
        prop_assert!(ring.verify_chain());
        prop_assert_eq!(
            ring.evictions() + ring.resident_len() as u64,
            ring.len() as u64,
            "conservation: evictions + resident == entries"
        );

        let tail: Vec<HistoryEntry> = oracle
            .entries()
            .skip(oracle.resident_len() - ring.resident_len())
            .cloned()
            .collect();
        let resident: Vec<HistoryEntry> = ring.entries().cloned().collect();
        prop_assert_eq!(resident, tail, "ring retains the newest suffix");
    }

    /// Arbitrary arrival (shuffled, duplicated): every conservation law
    /// holds, the chain always verifies, and whenever nothing was discarded
    /// as stale the head still matches the unbounded oracle.
    #[test]
    fn arbitrary_arrival_keeps_the_books(
        entries in arb_timeline(),
        capacity in 1usize..8,
    ) {
        let device = DeviceId::new(3);
        let mut ring = DeviceHistory::with_mode(device, HistoryMode::Ring(capacity));
        let mut oracle = DeviceHistory::new(device);
        for e in &entries {
            ring.observe(e.clone());
            oracle.observe(e.clone());
        }

        prop_assert!(ring.verify_chain());
        prop_assert!(oracle.verify_chain());
        prop_assert_eq!(oracle.evictions(), 0);
        prop_assert_eq!(oracle.stale_discards(), 0);
        prop_assert!(ring.resident_len() <= capacity);
        prop_assert_eq!(lifetime_verdicts(&ring), ring.len());
        prop_assert_eq!(
            ring.evictions() + ring.resident_len() as u64,
            ring.len() as u64
        );
        // A bounded ring can only lose distinct timestamps to stale
        // discards, never invent them.
        prop_assert!(ring.len() <= oracle.len());
        prop_assert!(ring.len() as u64 + ring.stale_discards() >= oracle.len() as u64);
        if ring.stale_discards() == 0 {
            prop_assert_eq!(ring.head_digest(), oracle.head_digest());
            prop_assert_eq!(ring.len(), oracle.len());
        }
    }

    /// Shard split: ingest a prefix into a ring, the suffix into an
    /// unbounded sibling (a recovering shard), merge — the result must be
    /// bit-identical to one ring ingesting the whole timeline, hash chain
    /// included.
    #[test]
    fn merge_from_matches_sequential_ingest(
        entries in arb_timeline(),
        capacity in 1usize..8,
        split_selector in 0usize..64,
    ) {
        let mut entries = entries;
        entries.sort_by_key(|e| e.timestamp);
        entries.dedup_by_key(|e| e.timestamp);
        let split = split_selector % (entries.len() + 1);
        let device = DeviceId::new(9);

        let mut sequential = DeviceHistory::with_mode(device, HistoryMode::Ring(capacity));
        for e in &entries {
            sequential.observe(e.clone());
        }

        let mut left = DeviceHistory::with_mode(device, HistoryMode::Ring(capacity));
        for e in &entries[..split] {
            left.observe(e.clone());
        }
        let mut right = DeviceHistory::new(device);
        for e in &entries[split..] {
            right.observe(e.clone());
        }

        prop_assert!(left.merge_from(&right));
        prop_assert_eq!(left, sequential);
    }

    /// Merging two rings with overlapping (or disjoint) retained windows:
    /// the books stay balanced, the chain verifies, and any timestamp
    /// retained on both sides keeps the worse verdict.
    #[test]
    fn merge_across_overlapping_windows_keeps_the_books(
        left_entries in arb_timeline(),
        right_entries in arb_timeline(),
        capacity in 1usize..8,
    ) {
        let device = DeviceId::new(5);
        let mut left = DeviceHistory::with_mode(device, HistoryMode::Ring(capacity));
        for e in &left_entries {
            left.observe(e.clone());
        }
        let mut right = DeviceHistory::with_mode(device, HistoryMode::Ring(capacity));
        for e in &right_entries {
            right.observe(e.clone());
        }
        let entries_before = left.len();

        prop_assert!(left.merge_from(&right));

        prop_assert!(left.verify_chain());
        prop_assert!(left.len() >= entries_before);
        prop_assert!(left.resident_len() <= capacity);
        prop_assert_eq!(lifetime_verdicts(&left), left.len());
        prop_assert_eq!(
            left.evictions() + left.resident_len() as u64,
            left.len() as u64
        );
        for theirs in right.entries() {
            if let Some(mine) = left
                .entries()
                .find(|mine| mine.timestamp == theirs.timestamp)
            {
                prop_assert!(
                    rank(mine.verdict) >= rank(theirs.verdict),
                    "worst verdict wins on the shared window"
                );
            }
        }
    }
}

#[test]
fn merge_from_refuses_a_different_device() {
    let mut left = DeviceHistory::with_mode(DeviceId::new(1), HistoryMode::Ring(4));
    let right = DeviceHistory::new(DeviceId::new(2));
    assert!(!left.merge_from(&right));
}
