//! Boundary conditions of the `phase_offset` staggering machinery: the
//! largest representable offset (one tick short of `T_M`), lenient windows
//! that straddle the period seam, and schedules driven through whole
//! collection horizons at those extremes.

use erasmus_core::{
    CollectionRequest, DeviceId, MeasurementScheduler, Prover, ProverConfig, ScheduleKind, Verifier,
};
use erasmus_crypto::MacAlgorithm;
use erasmus_hw::{DeviceKey, DeviceProfile};
use erasmus_sim::{SimDuration, SimTime};

const TM: SimDuration = SimDuration::from_secs(10);
const KEY: [u8; 32] = [0x42u8; 32];

/// The largest phase offset the validation admits: one nanosecond (one
/// simulated tick) short of the interval.
const MAX_OFFSET: SimDuration = SimDuration::from_nanos(10_000_000_000 - 1);

#[test]
fn offset_one_tick_below_interval_is_accepted_and_aligned() {
    let mut scheduler =
        MeasurementScheduler::new_with_phase(ScheduleKind::Regular, TM, &KEY, MAX_OFFSET);
    // First due: T_M + (T_M − 1 ns) = one tick before 2·T_M.
    let first = SimTime::ZERO + TM + MAX_OFFSET;
    assert_eq!(scheduler.next_due(), first);
    // Every subsequent due time keeps the offset: k·T_M + (T_M − 1 ns).
    for k in 0..5u64 {
        let due = scheduler.next_due();
        assert_eq!(due, first + TM * k);
        assert_eq!(
            due.as_nanos() % TM.as_nanos(),
            MAX_OFFSET.as_nanos(),
            "due time drifted off phase at k = {k}"
        );
        scheduler.mark_completed(due);
    }
    // The catch-up path stays phase-aligned too.
    scheduler.skip_until(SimTime::from_secs(1000));
    assert_eq!(
        scheduler.next_due().as_nanos() % TM.as_nanos(),
        MAX_OFFSET.as_nanos()
    );
}

#[test]
fn offset_of_a_full_interval_is_rejected_by_config_validation() {
    let err = ProverConfig::builder()
        .measurement_interval(TM)
        .buffer_slots(4)
        .phase_offset(TM)
        .build();
    assert!(err.is_err(), "phase_offset == T_M must not validate");
    // One tick less is fine.
    assert!(ProverConfig::builder()
        .measurement_interval(TM)
        .buffer_slots(4)
        .phase_offset(MAX_OFFSET)
        .build()
        .is_ok());
}

#[test]
fn max_offset_device_still_yields_full_rounds() {
    // A device at the extreme offset must produce exactly
    // `measurements_per_round` measurements inside every collection window
    // `(r-1)·span + o .. r·span + o`, like any other stagger group.
    let measurements_per_round = 3usize;
    let rounds = 2usize;
    let config = ProverConfig::builder()
        .measurement_interval(TM)
        .buffer_slots(measurements_per_round)
        .phase_offset(MAX_OFFSET)
        .build()
        .expect("valid config");
    let key = DeviceKey::from_bytes(KEY);
    let mut prover = Prover::new(
        DeviceId::new(9),
        DeviceProfile::msp430_8mhz(512),
        key.clone(),
        config,
    )
    .expect("provisioning");
    let mut verifier = Verifier::new(key, MacAlgorithm::HmacSha256);
    verifier.learn_reference_image(prover.mcu().app_memory());
    verifier.set_expected_interval(TM);

    let span = TM * measurements_per_round as u64;
    for round in 1..=rounds {
        let horizon = SimTime::ZERO + span * round as u64 + MAX_OFFSET;
        let outcomes = prover.run_until(horizon).expect("measurements");
        assert_eq!(outcomes.len(), measurements_per_round, "round {round}");
        let response =
            prover.handle_collection(&CollectionRequest::latest(measurements_per_round), horizon);
        let report = verifier
            .verify_collection(&response, horizon)
            .expect("report");
        assert!(report.all_valid(), "round {round}: {:?}", report.verdict());
        assert_eq!(report.missing(), 0);
    }
}

#[test]
fn lenient_window_overlapping_the_period_seam() {
    // Phase 4 s, w = 2: the measurement nominally due at 14 s may slide to
    // 24 s — which *is* the next nominal due time. The deferral must not
    // eat the following window: completing at 24 s moves the schedule to
    // 34 s, still phase-aligned.
    let phase = SimDuration::from_secs(4);
    let mut scheduler = MeasurementScheduler::new_with_phase(
        ScheduleKind::Lenient { window_factor: 2.0 },
        TM,
        &KEY,
        phase,
    );
    assert_eq!(scheduler.next_due(), SimTime::from_secs(14));
    let deferred = scheduler
        .defer(SimTime::from_secs(14))
        .expect("deferral granted");
    assert_eq!(deferred, SimTime::from_secs(24), "window end crosses seam");
    // The window is exhausted: no second deferral.
    assert!(scheduler.defer(SimTime::from_secs(20)).is_none());
    scheduler.mark_completed(SimTime::from_secs(24));
    assert_eq!(scheduler.next_due(), SimTime::from_secs(34));
    assert_eq!(scheduler.deferrals(), 1);
    assert_eq!(scheduler.completed(), 1);
}

#[test]
fn lenient_seam_overlap_with_late_completion_mid_window() {
    // Completing *inside* the overlapped window (not at its end) must also
    // resume on the next nominal tick after the completion instant.
    let phase = SimDuration::from_secs(4);
    let mut scheduler = MeasurementScheduler::new_with_phase(
        ScheduleKind::Lenient { window_factor: 3.0 },
        TM,
        &KEY,
        phase,
    );
    // Window for the t = 14 s measurement stretches to 14 + 2·T_M = 34 s,
    // overlapping the 24 s and 34 s nominal instants.
    let deferred = scheduler
        .defer(SimTime::from_secs(14))
        .expect("deferral granted");
    assert_eq!(deferred, SimTime::from_secs(34));
    scheduler.mark_completed(SimTime::from_secs(27));
    assert_eq!(scheduler.next_due(), SimTime::from_secs(34));
    scheduler.mark_completed(SimTime::from_secs(34));
    assert_eq!(scheduler.next_due(), SimTime::from_secs(44));
}

#[test]
fn max_offset_interacts_with_lenient_windows() {
    // The extreme offset combined with a deferral window: nominal due at
    // T_M + (T_M − 1 ns); window end at 2·T_M + (T_M − 1 ns).
    let mut scheduler = MeasurementScheduler::new_with_phase(
        ScheduleKind::Lenient { window_factor: 2.0 },
        TM,
        &KEY,
        MAX_OFFSET,
    );
    let nominal = SimTime::ZERO + TM + MAX_OFFSET;
    assert_eq!(scheduler.next_due(), nominal);
    let deferred = scheduler.defer(nominal).expect("deferral granted");
    assert_eq!(deferred, nominal + TM);
    scheduler.mark_completed(deferred);
    // Next nominal window: first phase-aligned instant after 2·T_M − 1 ns +
    // T_M... i.e. 3·T_M + offset − T_M = 30 s + offset.
    assert_eq!(
        scheduler.next_due().as_nanos() % TM.as_nanos(),
        MAX_OFFSET.as_nanos()
    );
    assert!(scheduler.next_due() > deferred);
}
