//! Adversarial wire-frame corpus: every decoder rejection variant, the
//! batch-count boundary, tampered-but-well-formed frames, and the
//! frame-vs-struct ingestion equivalence at fleet scale.
//!
//! The seeded fuzz harness (`crates/fuzz`) explores this space randomly;
//! these tests pin the corners deterministically so a codec regression
//! fails here first, with a readable assertion.

use erasmus_core::{
    decode_collection_batch, decode_hub_snapshot, encode_collection_batch, encode_hub_snapshot,
    AttestationVerdict, CollectionReport, CollectionRequest, CollectionResponse, DecodeErrorKind,
    DeviceId, FrameView, Prover, ProverConfig, Verifier, VerifierHub, DEDUP_WINDOW, DIGEST_LEN,
    MAX_BATCH_RESPONSES,
};
use erasmus_crypto::MacAlgorithm;
use erasmus_hw::{DeviceKey, DeviceProfile};
use erasmus_sim::{SimDuration, SimTime};

const INTERVAL: SimDuration = SimDuration::from_secs(10);
const PER_ROUND: usize = 4;

fn provision(id: u64) -> (Prover, Verifier) {
    let key = DeviceKey::derive(b"adversarial-frames", id);
    let config = ProverConfig::builder()
        .measurement_interval(INTERVAL)
        .buffer_slots(PER_ROUND)
        .build()
        .expect("valid config");
    let prover = Prover::new(
        DeviceId::new(id),
        DeviceProfile::msp430_8mhz(256),
        key.clone(),
        config,
    )
    .expect("provisioning");
    let mut verifier = Verifier::new(key, MacAlgorithm::HmacSha256);
    verifier.learn_reference_image(prover.mcu().app_memory());
    verifier.set_expected_interval(INTERVAL);
    (prover, verifier)
}

fn respond(prover: &mut Prover, at: SimTime) -> CollectionResponse {
    prover.run_until(at).expect("measurements");
    prover.handle_collection(&CollectionRequest::latest(PER_ROUND), at)
}

/// One genuine single-response frame to mutate from.
fn genuine_frame(id: u64) -> (Vec<u8>, Verifier) {
    let (mut prover, verifier) = provision(id);
    let at = SimTime::ZERO + INTERVAL * PER_ROUND as u64;
    let response = respond(&mut prover, at);
    (
        encode_collection_batch(std::slice::from_ref(&response)),
        verifier,
    )
}

/// A structurally valid frame of `count` responses with zero measurements
/// each — the smallest well-formed frame per response record.
fn empty_response_frame(count: usize) -> Vec<u8> {
    let mut frame = Vec::with_capacity(2 + count * 10);
    frame.extend_from_slice(&(count as u16).to_be_bytes());
    for device in 0..count as u64 {
        frame.extend_from_slice(&device.to_be_bytes()); // device id
        frame.extend_from_slice(&0u16.to_be_bytes()); // measurement count
    }
    frame
}

/// Asserts `frame` is rejected with `kind` and that a hub fed the frame is
/// left completely untouched.
fn assert_rejected(frame: &[u8], kind: DecodeErrorKind, label: &str) {
    let error = FrameView::parse(frame).expect_err(label);
    assert_eq!(error.kind(), kind, "{label}");
    assert!(error.offset() <= frame.len(), "{label}: offset in bounds");
    // The owned decoder agrees.
    let owned = decode_collection_batch(frame).expect_err(label);
    assert_eq!(owned.kind(), kind, "{label}: owned decoder");

    let mut hub = VerifierHub::new();
    let mut called = false;
    let error = hub
        .ingest_frame(frame, |_| {
            called = true;
            None
        })
        .expect_err(label);
    assert_eq!(error.kind(), kind, "{label}: hub path");
    assert!(!called, "{label}: verify callback ran on a rejected frame");
    assert!(hub.is_empty(), "{label}: hub grew on a rejected frame");
    assert_eq!(hub.ingested(), 0, "{label}");
    assert_eq!(hub.rejected(), 0, "{label}");
}

#[test]
fn every_rejection_kind_has_a_concrete_adversarial_frame() {
    let (genuine, _) = genuine_frame(0);

    // Walk DecodeErrorKind::ALL exhaustively: adding a variant without a
    // corresponding adversarial frame here fails the match below.
    for kind in DecodeErrorKind::ALL {
        match kind {
            DecodeErrorKind::Truncated => {
                assert_rejected(&[], kind, "empty input");
                assert_rejected(&[0x00], kind, "half a count field");
                let mut cut = genuine.clone();
                cut.truncate(cut.len() - 1);
                assert_rejected(&cut, kind, "one byte short of a tag");
                assert_rejected(&genuine[..7], kind, "mid device id");
            }
            DecodeErrorKind::BatchCount => {
                let lie = ((MAX_BATCH_RESPONSES + 1) as u16).to_be_bytes();
                assert_rejected(&lie, kind, "count one past the cap");
                assert_rejected(&[0xff, 0xff], kind, "count u16::MAX");
            }
            DecodeErrorKind::DigestLength => {
                // Layout: count(2) device(8) mcount(2) t(8) → dlen at 20.
                let mut lied = genuine.clone();
                lied[20..22].copy_from_slice(&((DIGEST_LEN - 1) as u16).to_be_bytes());
                assert_rejected(&lied, kind, "digest one byte short");
                lied[20..22].copy_from_slice(&((DIGEST_LEN + 1) as u16).to_be_bytes());
                assert_rejected(&lied, kind, "digest one byte long");
            }
            DecodeErrorKind::TagLength => {
                // tlen sits right after the digest: 22 + DIGEST_LEN.
                let at = 22 + DIGEST_LEN;
                let mut lied = genuine.clone();
                lied[at..at + 2].copy_from_slice(&0u16.to_be_bytes());
                assert_rejected(&lied, kind, "zero-length tag");
                lied[at..at + 2].copy_from_slice(&u16::MAX.to_be_bytes());
                assert_rejected(&lied, kind, "overlong tag");
            }
            DecodeErrorKind::TrailingBytes => {
                let mut padded = genuine.clone();
                padded.push(0x00);
                assert_rejected(&padded, kind, "one trailing byte");
                assert_rejected(&[0x00, 0x00, 0x99], kind, "bytes after empty batch");
            }
        }
    }
}

#[test]
fn batch_count_boundary_is_exact() {
    // Exactly MAX_BATCH_RESPONSES decodes; one more is rejected before any
    // response bytes are even looked at.
    let at_cap = empty_response_frame(MAX_BATCH_RESPONSES);
    let frame = FrameView::parse(&at_cap).expect("cap-sized frame decodes");
    assert_eq!(frame.len(), MAX_BATCH_RESPONSES);
    assert_eq!(frame.frame_len(), at_cap.len());

    let mut over = empty_response_frame(MAX_BATCH_RESPONSES);
    over[0..2].copy_from_slice(&((MAX_BATCH_RESPONSES + 1) as u16).to_be_bytes());
    let error = FrameView::parse(&over).expect_err("over-cap count");
    assert_eq!(error.kind(), DecodeErrorKind::BatchCount);
    assert_eq!(error.offset(), 0);
}

#[test]
fn duplicated_and_reordered_records_still_decode_and_verify() {
    // Structural validity is orthogonal to semantic acceptance: an attacker
    // replaying a record twice, or shuffling record order, produces a frame
    // the decoder accepts — detection happens at the MAC/history layer,
    // and the decoder must not mask it by rejecting early.
    let at = SimTime::ZERO + INTERVAL * PER_ROUND as u64;
    let (mut p0, mut v0) = provision(0);
    let (mut p1, mut v1) = provision(1);
    let r0 = respond(&mut p0, at);
    let r1 = respond(&mut p1, at);

    let duplicated = encode_collection_batch(&[r0.clone(), r0.clone()]);
    let frame = FrameView::parse(&duplicated).expect("duplicate records decode");
    assert_eq!(frame.len(), 2);

    let reordered = encode_collection_batch(&[r1, r0]);
    let frame = FrameView::parse(&reordered).expect("reordered records decode");
    let devices: Vec<u64> = frame.responses().map(|r| r.device().value()).collect();
    assert_eq!(devices, vec![1, 0]);

    // Each reordered record still verifies against its own device key.
    let mut hub = VerifierHub::new();
    let outcome = hub
        .ingest_frame(&reordered, |view| {
            let verifier = if view.device().value() == 0 {
                &mut v0
            } else {
                &mut v1
            };
            Some(verifier.verify_frame_response(&view, at).expect("verifies"))
        })
        .expect("decodes");
    assert_eq!(outcome.accepted, 2);
    assert_eq!(outcome.verify_failed, 0);
    assert!(hub.all_healthy());
}

#[test]
fn bit_flips_in_mac_and_digest_surface_as_tampering_not_decode_errors() {
    let at = SimTime::ZERO + INTERVAL * PER_ROUND as u64;
    let (frame, mut verifier) = genuine_frame(0);

    // Flip one bit in the first measurement's digest (offset 22) and one in
    // its tag (right after the tag-length field): both frames stay
    // well-formed, both must verify as tampering.
    let tag_at = 22 + DIGEST_LEN + 2;
    for (flip_at, label) in [(22usize, "digest"), (tag_at, "tag")] {
        let mut flipped = frame.clone();
        flipped[flip_at] ^= 0x80;
        let mut hub = VerifierHub::new();
        let outcome = hub
            .ingest_frame(&flipped, |view| {
                let report = verifier
                    .verify_frame_response(&view, at)
                    .expect("well-formed record still yields a report");
                assert_eq!(
                    report.verdict(),
                    AttestationVerdict::TamperingDetected,
                    "{label} flip"
                );
                None
            })
            .expect("bit-flipped frame still decodes");
        assert_eq!(outcome.verify_failed, 1, "{label} flip");
        assert_eq!(outcome.accepted, 0, "{label} flip");
        assert!(hub.is_empty(), "{label} flip");
    }
}

#[test]
fn flipped_device_id_fails_verification_under_the_real_owner_key() {
    // A bit flip in the device-id field (offset 2..10) re-routes the record
    // to another device, whose key cannot verify the MACs: the frame
    // decodes, verification reports tampering.
    let at = SimTime::ZERO + INTERVAL * PER_ROUND as u64;
    let (frame, _) = genuine_frame(0);
    let mut rerouted = frame.clone();
    rerouted[9] ^= 0x01; // device 0 -> device 1

    let parsed = FrameView::parse(&rerouted).expect("rerouted frame decodes");
    let view = parsed.responses().next().expect("one record");
    assert_eq!(view.device(), DeviceId::new(1));

    let (_, mut owner_of_1) = provision(1);
    let report = owner_of_1
        .verify_frame_response(&view, at)
        .expect("verification still yields a report");
    assert_eq!(report.verdict(), AttestationVerdict::TamperingDetected);
}

#[test]
fn replayed_sequenced_frames_are_dropped_exactly_once() {
    // An attacker (or a faulty link) replaying a captured frame must not
    // double-count a single measurement: the dedup window accepts each
    // (flow, sequence) once and swallows every later copy without even
    // running verification.
    let at = SimTime::ZERO + INTERVAL * PER_ROUND as u64;
    let (frame, mut verifier) = genuine_frame(0);
    let mut hub = VerifierHub::new();
    const FLOW: u64 = 7;

    let outcome = hub
        .ingest_sequenced_frame(FLOW, 0, &frame, |view| {
            Some(verifier.verify_frame_response(&view, at).expect("verifies"))
        })
        .expect("genuine frame decodes")
        .expect("first copy is fresh");
    assert_eq!(outcome.accepted, 1);
    let after_first = hub.clone();

    // Replays: same sequence, arbitrary number of times.
    for _ in 0..3 {
        let replay = hub
            .ingest_sequenced_frame(FLOW, 0, &frame, |_| {
                panic!("verify callback ran on a replayed frame")
            })
            .expect("replay still decodes");
        assert!(replay.is_none(), "replay was accepted");
    }
    assert_eq!(hub.duplicates(), 3);
    assert_eq!(hub.ingested(), after_first.ingested());
    assert_eq!(hub.total_entries(), after_first.total_entries());

    // A far-future sequence advances the window floor; sequences that fell
    // below the floor are stale even if never seen before — the hub
    // prefers losing an ancient frame to ever double-counting one.
    let fresh = hub
        .ingest_sequenced_frame(FLOW, DEDUP_WINDOW + 10, &frame, |view| {
            Some(verifier.verify_frame_response(&view, at).expect("verifies"))
        })
        .expect("decodes");
    assert!(fresh.is_some(), "far-future sequence is fresh");
    let stale = hub
        .ingest_sequenced_frame(FLOW, 1, &frame, |_| {
            panic!("verify callback ran on a below-floor frame")
        })
        .expect("decodes");
    assert!(stale.is_none(), "below-floor sequence accepted");

    // The same sequence on a different flow is a different delivery.
    let other_flow = hub
        .ingest_sequenced_frame(FLOW + 1, 0, &frame, |view| {
            Some(verifier.verify_frame_response(&view, at).expect("verifies"))
        })
        .expect("decodes");
    assert!(other_flow.is_some(), "flows must not share dedup state");
}

#[test]
fn snapshot_restore_preserves_replay_protection() {
    // Crash recovery must restore the dedup window along with the device
    // histories: a hub that forgets what it has seen across a restart can
    // be replayed into double-counting by re-sending captured frames.
    let at = SimTime::ZERO + INTERVAL * PER_ROUND as u64;
    let (frame, mut verifier) = genuine_frame(0);
    let mut hub = VerifierHub::new();
    hub.ingest_sequenced_frame(11, 42, &frame, |view| {
        Some(verifier.verify_frame_response(&view, at).expect("verifies"))
    })
    .expect("decodes")
    .expect("fresh");

    let snapshot = encode_hub_snapshot(&hub);
    let mut restored = decode_hub_snapshot(&snapshot).expect("snapshot decodes");
    assert_eq!(restored, hub, "restore is bit-identical");

    let replay = restored
        .ingest_sequenced_frame(11, 42, &frame, |_| {
            panic!("verify callback ran on a replay against the restored hub")
        })
        .expect("decodes");
    assert!(replay.is_none(), "restored hub forgot the dedup window");
    assert_eq!(restored.duplicates(), hub.duplicates() + 1);

    // Re-encoding the restored hub reproduces the snapshot byte for byte —
    // the codec is canonical, so recovery cannot drift across restarts.
    // (The replay above only bumped the duplicates counter; undo it for
    // the byte comparison by snapshotting before and after.)
    let again = decode_hub_snapshot(&snapshot).expect("snapshot decodes twice");
    assert_eq!(encode_hub_snapshot(&again), snapshot);
}

#[test]
fn corrupted_snapshots_are_rejected_not_misparsed() {
    let at = SimTime::ZERO + INTERVAL * PER_ROUND as u64;
    let (frame, mut verifier) = genuine_frame(0);
    let mut hub = VerifierHub::new();
    hub.ingest_sequenced_frame(3, 9, &frame, |view| {
        Some(verifier.verify_frame_response(&view, at).expect("verifies"))
    })
    .expect("decodes")
    .expect("fresh");
    let snapshot = encode_hub_snapshot(&hub);

    // Truncations at every prefix length must fail cleanly, never panic
    // and never yield a hub.
    for cut in 0..snapshot.len() {
        assert!(
            decode_hub_snapshot(&snapshot[..cut]).is_err(),
            "truncated snapshot (len {cut}) decoded"
        );
    }
    // A wrong magic or version is not silently tolerated.
    let mut bad_magic = snapshot.clone();
    bad_magic[0] ^= 0xff;
    assert!(
        decode_hub_snapshot(&bad_magic).is_err(),
        "bad magic decoded"
    );
    // Trailing garbage is rejected, not ignored.
    let mut padded = snapshot.clone();
    padded.push(0);
    assert!(
        decode_hub_snapshot(&padded).is_err(),
        "trailing byte decoded"
    );
}

#[test]
fn frame_and_struct_ingestion_agree_at_fleet_scale() {
    // 16 devices × 2 rounds, both paths fed the same responses: the hubs
    // must end up equal, entry for entry, and the counters must match.
    const FLEET: u64 = 16;
    let mut fleet: Vec<(Prover, Verifier)> = (0..FLEET).map(provision).collect();
    let mut struct_verifiers: Vec<Verifier> =
        fleet.iter().map(|(_, verifier)| verifier.clone()).collect();

    let mut frame_hub = VerifierHub::new();
    let mut struct_hub = VerifierHub::new();
    let round_span = INTERVAL * PER_ROUND as u64;

    for round in 1..=2u64 {
        let at = SimTime::ZERO + round_span * round;
        let responses: Vec<CollectionResponse> = fleet
            .iter_mut()
            .map(|(prover, _)| respond(prover, at))
            .collect();
        let frame = encode_collection_batch(&responses);

        let outcome = frame_hub
            .ingest_frame(&frame, |view| {
                let verifier = &mut fleet[view.device().value() as usize].1;
                Some(verifier.verify_frame_response(&view, at).expect("verifies"))
            })
            .expect("fleet frame decodes");
        assert_eq!(outcome.responses, FLEET);
        assert_eq!(outcome.accepted, FLEET);
        assert_eq!(outcome.bytes, frame.len() as u64);

        let reports: Vec<CollectionReport> = responses
            .iter()
            .zip(struct_verifiers.iter_mut())
            .map(|(response, verifier)| verifier.verify_collection(response, at).expect("verifies"))
            .collect();
        let struct_outcome = struct_hub.ingest_batch(reports.iter());
        assert_eq!(struct_outcome.accepted, FLEET);
    }

    assert_eq!(frame_hub, struct_hub);
    assert_eq!(frame_hub.ingested(), FLEET * 2);
    assert_eq!(frame_hub.total_entries(), FLEET * 2 * PER_ROUND as u64);
    for ((_, frame_v), struct_v) in fleet.iter().zip(&struct_verifiers) {
        assert_eq!(frame_v.last_collection(), struct_v.last_collection());
    }
}
