//! Fleet-scale exercise of the verifier-side history hub: many devices, many
//! collection rounds, strict per-device isolation — the path where a missing
//! device-ID check in `DeviceHistory::ingest` would silently cross-pollinate
//! timelines.

use erasmus_core::{
    CollectionReport, CollectionRequest, DeviceHistory, DeviceId, MeasurementVerdict, Prover,
    ProverConfig, Verifier, VerifierHub,
};
use erasmus_crypto::MacAlgorithm;
use erasmus_hw::{DeviceKey, DeviceProfile};
use erasmus_sim::{SimDuration, SimTime};

const INTERVAL: SimDuration = SimDuration::from_secs(10);
const DEVICES: u64 = 32;
const ROUNDS: u64 = 3;
const PER_ROUND: usize = 4;

fn provision(id: u64) -> (Prover, Verifier) {
    let key = DeviceKey::derive(b"hub-fleet-test", id);
    let config = ProverConfig::builder()
        .measurement_interval(INTERVAL)
        .buffer_slots(PER_ROUND)
        .build()
        .expect("valid config");
    let prover = Prover::new(
        DeviceId::new(id),
        DeviceProfile::msp430_8mhz(256),
        key.clone(),
        config,
    )
    .expect("provisioning");
    let mut verifier = Verifier::new(key, MacAlgorithm::HmacSha256);
    verifier.learn_reference_image(prover.mcu().app_memory());
    verifier.set_expected_interval(INTERVAL);
    (prover, verifier)
}

fn collect(prover: &mut Prover, verifier: &mut Verifier, at: SimTime) -> CollectionReport {
    prover.run_until(at).expect("measurements");
    let response = prover.handle_collection(&CollectionRequest::latest(PER_ROUND), at);
    verifier.verify_collection(&response, at).expect("report")
}

#[test]
fn hub_keeps_per_device_histories_isolated_across_a_fleet() {
    let mut fleet: Vec<(Prover, Verifier)> = (0..DEVICES).map(provision).collect();
    let mut hub = VerifierHub::new();

    let round_span = INTERVAL * PER_ROUND as u64;
    for round in 1..=ROUNDS {
        let horizon = SimTime::ZERO + round_span * round;
        for (prover, verifier) in fleet.iter_mut() {
            assert!(hub.ingest(&collect(prover, verifier, horizon)));
        }
    }

    assert_eq!(hub.len(), DEVICES as usize);
    assert_eq!(hub.ingested(), DEVICES * ROUNDS);
    assert_eq!(hub.rejected(), 0);
    assert_eq!(hub.total_collections(), DEVICES * ROUNDS);
    // Every device owns exactly its own PER_ROUND × ROUNDS measurements; a
    // cross-device leak would inflate one history and starve another.
    assert_eq!(hub.total_entries(), DEVICES * ROUNDS * PER_ROUND as u64);
    for id in 0..DEVICES {
        let history = hub.history(DeviceId::new(id)).expect("tracked");
        assert_eq!(history.device(), DeviceId::new(id));
        assert_eq!(history.len(), ROUNDS as usize * PER_ROUND);
        assert_eq!(history.collections(), ROUNDS);
        assert_eq!(
            history.count(MeasurementVerdict::Healthy),
            ROUNDS as usize * PER_ROUND
        );
        assert_eq!(history.largest_gap(), Some(INTERVAL));
    }
    assert!(hub.all_healthy());
    assert!(hub.compromised_devices().is_empty());
}

#[test]
fn one_compromised_device_does_not_taint_its_neighbours() {
    let mut fleet: Vec<(Prover, Verifier)> = (0..8).map(provision).collect();
    let mut hub = VerifierHub::new();

    // Device 5 picks up a persistent implant before the collection round.
    fleet[5].0.run_until(SimTime::from_secs(15)).expect("run");
    fleet[5]
        .0
        .mcu_mut()
        .write_app_memory(0, b"implant")
        .expect("infect");

    let horizon = SimTime::ZERO + INTERVAL * PER_ROUND as u64;
    for (prover, verifier) in fleet.iter_mut() {
        assert!(hub.ingest(&collect(prover, verifier, horizon)));
    }

    assert_eq!(hub.compromised_devices(), vec![DeviceId::new(5)]);
    assert!(!hub.all_healthy());
    let sick = hub.history(DeviceId::new(5)).expect("tracked");
    assert_eq!(sick.first_compromise(), Some(SimTime::from_secs(20)));
    for id in (0..8).filter(|&id| id != 5) {
        let healthy = hub.history(DeviceId::new(id)).expect("tracked");
        assert!(healthy.first_compromise().is_none(), "device {id} tainted");
        assert_eq!(healthy.count(MeasurementVerdict::Healthy), PER_ROUND);
    }
}

#[test]
fn direct_history_rejects_a_neighbours_report() {
    // The regression the hub protects against: feeding device 1's report
    // into device 0's history must be a no-op, not a silent merge.
    let (mut p0, mut v0) = provision(0);
    let (mut p1, mut v1) = provision(1);
    let at = SimTime::ZERO + INTERVAL * PER_ROUND as u64;
    let own = collect(&mut p0, &mut v0, at);
    let foreign = collect(&mut p1, &mut v1, at);

    let mut history = DeviceHistory::new(DeviceId::new(0));
    assert!(history.ingest(&own));
    assert!(!history.ingest(&foreign));
    assert_eq!(history.len(), PER_ROUND);
    assert_eq!(history.collections(), 1);
}
