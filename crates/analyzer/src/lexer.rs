//! A minimal, total Rust lexer.
//!
//! The analyzer has no access to crates.io (so no `syn`); this module
//! tokenizes Rust source by hand. It is deliberately *total*: every byte
//! sequence lexes to a token stream without panicking — unterminated
//! strings, unbalanced comments and stray bytes all degrade into tokens
//! rather than errors, because the analyzer must survive adversarial and
//! half-written source (it runs in CI on whatever the tree contains).
//!
//! The lexer understands exactly as much Rust as the rules need:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//!   kept separately from code tokens so waiver comments can be matched
//!   and so `"panic!"` inside a doc comment never trips a rule;
//! * string-ish literals: `"…"` with escapes, raw strings `r#"…"#` with
//!   any number of hashes, byte/C variants (`b"…"`, `br#"…"#`, `c"…"`),
//!   char literals, and the char-vs-lifetime ambiguity (`'a'` vs `'a`);
//! * identifiers/keywords, numbers, and single-character punctuation.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`as`, `unwrap`, `HashMap`, …).
    Ident,
    /// A lifetime such as `'a` (not a char literal).
    Lifetime,
    /// Numeric literal, suffix included (`0x1f`, `8usize`, `1.5e3`).
    Number,
    /// Any string, raw-string, byte-string, C-string or char literal.
    Literal,
    /// A single punctuation character (`[`, `!`, `#`, …).
    Punct(char),
}

/// One code token with its position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the token start in the source.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
    /// 1-based line of the token start.
    pub line: u32,
    /// 1-based column (in characters) of the token start.
    pub col: u32,
}

impl Token {
    /// The token's text within `src`.
    ///
    /// Spans produced by [`lex`] always lie on char boundaries inside the
    /// source they were lexed from; out-of-range spans (e.g. against a
    /// different string) yield `""` rather than panicking.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// One comment, kept out of the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Byte offset of the comment start (at the `//` or `/*`).
    pub start: usize,
    /// Byte offset one past the comment end.
    pub end: usize,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based column the comment starts at.
    pub col: u32,
    /// Whether this is a `/* … */` block comment.
    pub block: bool,
}

impl Comment {
    /// The comment's text within `src`, delimiters included.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// The result of lexing one source file: code tokens and comments,
/// each in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars
            .get(self.pos.saturating_add(ahead))
            .map(|&(_, c)| c)
    }

    /// Byte offset of the current position (source length at EOF).
    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(off, _)| off)
            .unwrap_or(self.src.len())
    }

    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.pos)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes while `pred` holds.
    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into tokens and comments. Total: never panics, never
/// errors — malformed input degrades into best-effort tokens.
pub fn lex(src: &str) -> Lexed {
    let mut cursor = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(c) = cursor.peek() {
        let start = cursor.offset();
        let line = cursor.line;
        let col = cursor.col;
        if c.is_whitespace() {
            cursor.bump();
            continue;
        }
        if c == '/' && cursor.peek_at(1) == Some('/') {
            cursor.eat_while(|c| c != '\n');
            out.comments.push(Comment {
                start,
                end: cursor.offset(),
                line,
                col,
                block: false,
            });
            continue;
        }
        if c == '/' && cursor.peek_at(1) == Some('*') {
            lex_block_comment(&mut cursor);
            out.comments.push(Comment {
                start,
                end: cursor.offset(),
                line,
                col,
                block: true,
            });
            continue;
        }
        let kind = if is_ident_start(c) {
            lex_ident_or_prefixed_literal(&mut cursor)
        } else if c.is_ascii_digit() {
            lex_number(&mut cursor);
            TokenKind::Number
        } else if c == '"' {
            lex_string(&mut cursor);
            TokenKind::Literal
        } else if c == '\'' {
            lex_char_or_lifetime(&mut cursor)
        } else {
            cursor.bump();
            TokenKind::Punct(c)
        };
        out.tokens.push(Token {
            kind,
            start,
            end: cursor.offset(),
            line,
            col,
        });
    }
    out
}

/// Consumes a (possibly nested) block comment; the opening `/*` is still
/// unconsumed. Unterminated comments run to EOF.
fn lex_block_comment(cursor: &mut Cursor<'_>) {
    cursor.bump(); // '/'
    cursor.bump(); // '*'
    let mut depth = 1u32;
    while depth > 0 {
        match (cursor.peek(), cursor.peek_at(1)) {
            (Some('/'), Some('*')) => {
                cursor.bump();
                cursor.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cursor.bump();
                cursor.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cursor.bump();
            }
            (None, _) => break,
        }
    }
}

/// Lexes an identifier, or — when the identifier turns out to be a
/// raw/byte/C string prefix (`r`, `b`, `br`, `rb`, `c`, `cr`) directly
/// followed by its literal — the whole prefixed literal.
fn lex_ident_or_prefixed_literal(cursor: &mut Cursor<'_>) -> TokenKind {
    let ident_start = cursor.pos;
    cursor.eat_while(is_ident_continue);
    let ident_len = cursor.pos - ident_start;
    let is_literal_prefix = ident_len <= 2
        && (ident_start..cursor.pos)
            .all(|i| matches!(cursor.chars.get(i).map(|&(_, c)| c), Some('r' | 'b' | 'c')));
    if is_literal_prefix {
        match cursor.peek() {
            Some('"') => {
                lex_string(cursor);
                return TokenKind::Literal;
            }
            Some('#') if has_raw_prefix(cursor) => {
                lex_raw_string(cursor);
                return TokenKind::Literal;
            }
            Some('\'') => {
                // b'x' byte char; consume like a char literal.
                cursor.bump();
                lex_char_body(cursor);
                return TokenKind::Literal;
            }
            _ => {}
        }
    }
    TokenKind::Ident
}

/// Whether the cursor (sitting on `#`) opens a raw string: some `#`s then
/// a `"`. Bare `r#ident` raw identifiers return false.
fn has_raw_prefix(cursor: &Cursor<'_>) -> bool {
    let mut ahead = 0usize;
    while cursor.peek_at(ahead) == Some('#') {
        ahead += 1;
    }
    cursor.peek_at(ahead) == Some('"')
}

/// Consumes a raw string from the cursor sitting on its first `#` (or on
/// the quote when called from [`lex_string`]'s zero-hash case). The number
/// of closing hashes must match; unterminated raw strings run to EOF.
fn lex_raw_string(cursor: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while cursor.peek() == Some('#') {
        cursor.bump();
        hashes += 1;
    }
    if cursor.peek() != Some('"') {
        return; // `r#ident` raw identifier — already consumed the hashes.
    }
    cursor.bump(); // opening quote
    loop {
        match cursor.bump() {
            None => return, // unterminated: runs to EOF
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && cursor.peek() == Some('#') {
                    cursor.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
            Some(_) => {}
        }
    }
}

/// Consumes a `"…"` string (cursor on the opening quote, possibly after a
/// `b`/`c` prefix). Escapes are honoured; unterminated strings run to EOF.
fn lex_string(cursor: &mut Cursor<'_>) {
    cursor.bump(); // opening quote
    loop {
        match cursor.bump() {
            None | Some('"') => return,
            Some('\\') => {
                cursor.bump(); // the escaped char, whatever it is
            }
            Some(_) => {}
        }
    }
}

/// Consumes a number. Good enough for the rules (numbers are never
/// matched): hex/oct/bin prefixes, `_` separators, type suffixes and
/// simple float forms all end up in one token.
fn lex_number(cursor: &mut Cursor<'_>) {
    cursor.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    // A fractional part: only when a digit follows the dot, so `0..len`
    // and `1.max(2)` keep their dots.
    if cursor.peek() == Some('.') && cursor.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        cursor.bump();
        cursor.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    }
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime). Cursor sits on
/// the opening quote.
fn lex_char_or_lifetime(cursor: &mut Cursor<'_>) -> TokenKind {
    // A lifetime is `'` + ident-start + ident-continue* NOT followed by a
    // closing quote. Everything else is a char literal.
    if cursor.peek_at(1).is_some_and(is_ident_start) {
        let mut ahead = 2usize;
        while cursor.peek_at(ahead).is_some_and(is_ident_continue) {
            ahead += 1;
        }
        if cursor.peek_at(ahead) != Some('\'') {
            cursor.bump(); // the quote
            cursor.eat_while(is_ident_continue);
            return TokenKind::Lifetime;
        }
    }
    cursor.bump(); // the quote
    lex_char_body(cursor);
    TokenKind::Literal
}

/// Consumes the body and closing quote of a char literal, cursor just past
/// the opening quote. Unterminated literals stop at EOF or end of line
/// (so a stray `'` cannot swallow the rest of the file).
fn lex_char_body(cursor: &mut Cursor<'_>) {
    loop {
        match cursor.peek() {
            None | Some('\n') => return,
            Some('\\') => {
                cursor.bump();
                cursor.bump();
            }
            Some('\'') => {
                cursor.bump();
                return;
            }
            Some(_) => {
                cursor.bump();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
            .collect()
    }

    #[test]
    fn comments_are_kept_out_of_the_token_stream() {
        let src = "let x = 1; // unwrap() here is commentary\n/* panic! */ let y;";
        assert!(!idents(src).contains(&"unwrap"));
        assert!(!idents(src).contains(&"panic"));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text(src).contains("unwrap"));
        assert!(lexed.comments[1].block);
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "/* outer /* inner */ still comment */ fn after() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(idents(src), vec!["fn", "after"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "unwrap() and \" panic!"; let t = x.unwrap();"#;
        let names = idents(src);
        assert_eq!(names.iter().filter(|n| **n == "unwrap").count(), 1);
    }

    #[test]
    fn raw_strings_respect_hash_counts() {
        let src = r###"let s = r#"quote " inside, panic! too"#; let y = unwrap;"###;
        let names = idents(src);
        assert_eq!(names.iter().filter(|n| **n == "panic").count(), 0);
        assert!(names.contains(&"unwrap"));
    }

    #[test]
    fn byte_and_c_strings_are_literals() {
        for src in [
            "let a = b\"bytes\";",
            "let a = br#\"raw\"#;",
            "let a = c\"c\";",
        ] {
            let lexed = lex(src);
            assert!(
                lexed.tokens.iter().any(|t| t.kind == TokenKind::Literal),
                "{src}"
            );
        }
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn escaped_char_literals_terminate() {
        let src = r"let q = '\''; let n = '\n'; let next = token;";
        assert!(idents(src).contains(&"next"));
    }

    #[test]
    fn raw_identifiers_stay_identifiers() {
        let src = "let r#fn = 1; let r = 2;";
        assert!(idents(src).contains(&"fn"));
    }

    #[test]
    fn positions_are_one_based_and_line_aware() {
        let src = "a\n  b";
        let lexed = lex(src);
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn unterminated_everything_reaches_eof_without_panicking() {
        for src in [
            "\"never closed",
            "r#\"never closed",
            "/* never closed /* nested",
            "'",
            "b'",
            "r#",
            "let x = '\\",
        ] {
            let _ = lex(src);
        }
    }
}
