//! CLI for the in-repo static analyzer. See the library docs for the rule
//! set; this binary is what CI and `cargo run -p erasmus-analyzer` invoke.
//!
//! ```text
//! cargo run -p erasmus-analyzer -- --workspace [--json] [--root DIR] [--config FILE]
//! ```
//!
//! Exit codes: `0` clean, `1` unwaived findings, `2` usage/config error.

use std::path::PathBuf;
use std::process::ExitCode;

use erasmus_analyzer::config::Config;
use erasmus_analyzer::report::{render_human_report, render_json};
use erasmus_analyzer::rules::RULE_NAMES;

const USAGE: &str = "usage: erasmus-analyzer --workspace [--json] [--root DIR] [--config FILE]

Scans the workspace's own Rust source for violations of the no-panic
decode and determinism contracts. Scoping and path-level allows come from
analyzer.toml at the workspace root; inline waivers look like:

    // analyzer: allow(<rule>) — <reason, mandatory>

Exit codes: 0 clean, 1 unwaived findings, 2 usage or configuration error.";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(file) => config_path = Some(PathBuf::from(file)),
                None => return usage_error("--config needs a file"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage_error("pass --workspace to scan the workspace");
    }

    let root = match root.or_else(discover_root) {
        Some(root) => root,
        None => {
            eprintln!(
                "error: no analyzer.toml found between the current directory and filesystem \
                 root; pass --root"
            );
            return ExitCode::from(2);
        }
    };
    let config_path = config_path.unwrap_or_else(|| root.join("analyzer.toml"));
    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("error: cannot read {}: {error}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let config = match Config::parse(&config_text, &RULE_NAMES) {
        Ok(config) => config,
        Err(error) => {
            eprintln!("error: {error}");
            return ExitCode::from(2);
        }
    };

    let analysis = match erasmus_analyzer::analyze(&root, &config) {
        Ok(analysis) => analysis,
        Err(error) => {
            eprintln!("error: analysis failed: {error}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", render_json(&analysis));
    } else {
        println!("{}", render_human_report(&analysis));
    }
    if analysis.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Walks up from the current directory (falling back to the crate's own
/// manifest dir under `cargo run`) looking for `analyzer.toml`.
fn discover_root() -> Option<PathBuf> {
    let starts = [
        std::env::current_dir().ok(),
        std::env::var_os("CARGO_MANIFEST_DIR").map(PathBuf::from),
    ];
    for start in starts.into_iter().flatten() {
        let mut dir = start.as_path();
        loop {
            if dir.join("analyzer.toml").is_file() {
                return Some(dir.to_path_buf());
            }
            match dir.parent() {
                Some(parent) => dir = parent,
                None => break,
            }
        }
    }
    None
}
