//! Rendering: human diagnostics and the machine-readable JSON report.
//!
//! JSON is emitted by hand (no serde in this container); the escaping is
//! total over arbitrary strings and the output is deterministic — findings
//! arrive pre-sorted from [`crate::analyze`].

use std::fmt::Write as _;

use crate::rules::Finding;

/// Schema identifier stamped into every JSON report.
pub const JSON_SCHEMA: &str = "erasmus-analyzer/v1";

/// Everything one run produced.
#[derive(Debug)]
pub struct Analysis {
    /// Unwaived findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Inline waivers that suppressed at least one finding.
    pub waivers_used: usize,
    /// Findings suppressed by inline waivers.
    pub findings_waived: usize,
    /// Findings suppressed by `[[allow]]` path entries.
    pub findings_allowed: usize,
}

impl Analysis {
    /// Whether the tree is clean (exit code 0).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Renders one finding the way rustc renders diagnostics, so terminals and
/// editors pick the location up:
///
/// ```text
/// error[determinism]: `HashMap` in a deterministic region: iteration order is randomized per process
///   --> crates/fuzz/src/lib.rs:505:11
/// ```
pub fn render_human(finding: &Finding) -> String {
    format!(
        "error[{}]: {}\n  --> {}:{}:{}",
        finding.rule, finding.message, finding.file, finding.line, finding.col
    )
}

/// Renders the whole run for terminals: every finding plus a summary line.
pub fn render_human_report(analysis: &Analysis) -> String {
    let mut out = String::new();
    for finding in &analysis.findings {
        out.push_str(&render_human(finding));
        out.push_str("\n\n");
    }
    let _ = write!(
        out,
        "{} file{} scanned, {} finding{} ({} waived inline, {} allowed by config)",
        analysis.files_scanned,
        plural(analysis.files_scanned),
        analysis.findings.len(),
        plural(analysis.findings.len()),
        analysis.findings_waived,
        analysis.findings_allowed,
    );
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Renders the machine-readable report.
pub fn render_json(analysis: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json_string(JSON_SCHEMA));
    let _ = writeln!(out, "  \"files_scanned\": {},", analysis.files_scanned);
    let _ = writeln!(out, "  \"waivers_used\": {},", analysis.waivers_used);
    let _ = writeln!(out, "  \"findings_waived\": {},", analysis.findings_waived);
    let _ = writeln!(
        out,
        "  \"findings_allowed\": {},",
        analysis.findings_allowed
    );
    let _ = writeln!(out, "  \"clean\": {},", analysis.is_clean());
    out.push_str("  \"findings\": [");
    for (i, finding) in analysis.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(out, "\"rule\": {}, ", json_string(&finding.rule));
        let _ = write!(out, "\"file\": {}, ", json_string(&finding.file));
        let _ = write!(out, "\"line\": {}, ", finding.line);
        let _ = write!(out, "\"col\": {}, ", finding.col);
        let _ = write!(out, "\"message\": {}", json_string(&finding.message));
        out.push('}');
    }
    if !analysis.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escapes a string for JSON. Total over arbitrary input.
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: "determinism".to_string(),
            file: "crates/core/src/hub.rs".to_string(),
            line: 12,
            col: 7,
            message: "`HashMap` with \"quotes\"\nand newline".to_string(),
        }
    }

    #[test]
    fn human_rendering_is_rustc_shaped() {
        let text = render_human(&finding());
        assert!(text.starts_with("error[determinism]:"));
        assert!(text.contains("--> crates/core/src/hub.rs:12:7"));
    }

    #[test]
    fn json_escapes_and_reports_cleanliness() {
        let analysis = Analysis {
            findings: vec![finding()],
            files_scanned: 3,
            waivers_used: 1,
            findings_waived: 2,
            findings_allowed: 0,
        };
        let json = render_json(&analysis);
        assert!(json.contains("\\\"quotes\\\"\\nand newline"));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"schema\": \"erasmus-analyzer/v1\""));

        let clean = Analysis {
            findings: Vec::new(),
            files_scanned: 3,
            waivers_used: 0,
            findings_waived: 0,
            findings_allowed: 0,
        };
        let json = render_json(&clean);
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("\"findings\": []"));
    }
}
