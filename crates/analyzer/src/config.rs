//! `analyzer.toml` — committed configuration for the rule engine.
//!
//! The container has no crates.io access, so this is a hand-rolled parser
//! for the small TOML subset the analyzer needs: comments, `[rules.<name>]`
//! tables, `[[allow]]` array-of-tables, string values and (possibly
//! multi-line) arrays of strings. Anything outside that subset is a hard
//! error — configuration typos must fail the run, not silently widen or
//! narrow a rule's scope.
//!
//! ```toml
//! exclude = ["vendor", "crates/analyzer/tests/fixtures"]
//!
//! [rules.determinism]
//! include = ["crates/sim/src", "crates/core/src"]
//! exclude = ["crates/core/src/generated.rs"]
//!
//! [rules.unsafe-forbid]
//! crate-roots = ["src/lib.rs", "crates/core/src/lib.rs"]
//!
//! [[allow]]
//! rule = "determinism"
//! path = "crates/bench/src/fleet/shard.rs"
//! reason = "wall-clock phase timing measures real throughput"
//! ```
//!
//! Paths are workspace-root-relative, `/`-separated, and match on whole
//! component prefixes: `crates/core/src` covers `crates/core/src/hub.rs`
//! but never `crates/core/src-other`.

use std::collections::BTreeMap;
use std::fmt;

/// Where one rule looks.
#[derive(Debug, Default, Clone)]
pub struct RuleScope {
    /// Path prefixes the rule scans. Empty means the rule scans nothing
    /// (except `unsafe-forbid`, which uses `crate_roots`).
    pub include: Vec<String>,
    /// Path prefixes carved back out of `include`.
    pub exclude: Vec<String>,
    /// For `unsafe-forbid`: the crate-root files that must carry
    /// `#![forbid(unsafe_code)]`.
    pub crate_roots: Vec<String>,
}

/// One `[[allow]]` entry: a path-scoped waiver with a mandatory reason.
#[derive(Debug, Clone)]
pub struct PathAllow {
    /// The rule being waived.
    pub rule: String,
    /// Path prefix the waiver covers.
    pub path: String,
    /// Why the waiver is sound. Mandatory; an empty reason is a config
    /// error.
    pub reason: String,
    /// Line in `analyzer.toml` (for unused-allow diagnostics).
    pub line: u32,
}

/// Parsed `analyzer.toml`.
#[derive(Debug, Default)]
pub struct Config {
    /// Path prefixes excluded from the walk entirely (vendored code,
    /// fixtures that are violating on purpose).
    pub exclude: Vec<String>,
    /// Per-rule scopes, keyed by rule name.
    pub rules: BTreeMap<String, RuleScope>,
    /// Path-scoped allows.
    pub allows: Vec<PathAllow>,
}

/// A configuration error with its `analyzer.toml` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line the error was detected on.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analyzer.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Does `path` fall under `prefix` on whole path components?
pub fn path_matches(path: &str, prefix: &str) -> bool {
    path == prefix
        || path
            .strip_prefix(prefix)
            .is_some_and(|rest| rest.starts_with('/'))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Top,
    Rule,
    Allow,
}

impl Config {
    /// Parses the configuration, validating rule names against `known`.
    pub fn parse(text: &str, known_rules: &[&str]) -> Result<Self, ConfigError> {
        let mut config = Config::default();
        let mut section = Section::Top;
        let mut current_rule = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((index, raw)) = lines.next() {
            let line_no = u32::try_from(index).unwrap_or(u32::MAX).saturating_add(1);
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                if header.trim() != "allow" {
                    return Err(err(line_no, format!("unknown array table [[{header}]]")));
                }
                section = Section::Allow;
                config.allows.push(PathAllow {
                    rule: String::new(),
                    path: String::new(),
                    reason: String::new(),
                    line: line_no,
                });
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = header
                    .trim()
                    .strip_prefix("rules.")
                    .ok_or_else(|| err(line_no, format!("unknown table [{header}]")))?
                    .trim()
                    .to_string();
                if !known_rules.contains(&name.as_str()) {
                    return Err(err(line_no, format!("unknown rule `{name}`")));
                }
                section = Section::Rule;
                current_rule = name.clone();
                config.rules.entry(name).or_default();
                continue;
            }
            let (key, mut value) = split_key_value(line, line_no)?;
            // Arrays may span lines: keep consuming until brackets balance.
            while !brackets_balanced(&value) {
                let Some((_, more)) = lines.next() else {
                    return Err(err(line_no, format!("unterminated array for `{key}`")));
                };
                value.push(' ');
                value.push_str(strip_comment(more).trim());
            }
            match section {
                Section::Top => match key.as_str() {
                    "exclude" => config.exclude = parse_string_array(&value, line_no)?,
                    _ => return Err(err(line_no, format!("unknown top-level key `{key}`"))),
                },
                Section::Rule => {
                    let scope = config
                        .rules
                        .get_mut(&current_rule)
                        .ok_or_else(|| err(line_no, "rule table vanished"))?;
                    match key.as_str() {
                        "include" => scope.include = parse_string_array(&value, line_no)?,
                        "exclude" => scope.exclude = parse_string_array(&value, line_no)?,
                        "crate-roots" => scope.crate_roots = parse_string_array(&value, line_no)?,
                        _ => {
                            return Err(err(
                                line_no,
                                format!("unknown key `{key}` in [rules.{current_rule}]"),
                            ))
                        }
                    }
                }
                Section::Allow => {
                    let entry = config
                        .allows
                        .last_mut()
                        .ok_or_else(|| err(line_no, "allow entry vanished"))?;
                    let text = parse_string(&value, line_no)?;
                    match key.as_str() {
                        "rule" => entry.rule = text,
                        "path" => entry.path = text,
                        "reason" => entry.reason = text,
                        _ => return Err(err(line_no, format!("unknown key `{key}` in [[allow]]"))),
                    }
                }
            }
        }
        config.validate(known_rules)?;
        Ok(config)
    }

    fn validate(&self, known_rules: &[&str]) -> Result<(), ConfigError> {
        for allow in &self.allows {
            if !known_rules.contains(&allow.rule.as_str()) {
                return Err(err(
                    allow.line,
                    format!("[[allow]] names unknown rule `{}`", allow.rule),
                ));
            }
            if allow.path.is_empty() {
                return Err(err(allow.line, "[[allow]] entry is missing `path`"));
            }
            if allow.reason.trim().is_empty() {
                return Err(err(
                    allow.line,
                    format!(
                        "[[allow]] for `{}` on `{}` has no reason — reasons are mandatory",
                        allow.rule, allow.path
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// Strips a `#` comment, honouring `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_key_value(line: &str, line_no: u32) -> Result<(String, String), ConfigError> {
    let (key, value) = line
        .split_once('=')
        .ok_or_else(|| err(line_no, format!("expected `key = value`, got `{line}`")))?;
    Ok((key.trim().to_string(), value.trim().to_string()))
}

fn brackets_balanced(value: &str) -> bool {
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in value.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
    }
    depth <= 0 && !in_string
}

fn parse_string(value: &str, line_no: u32) -> Result<String, ConfigError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| err(line_no, format!("expected a quoted string, got `{value}`")))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => return Err(err(line_no, format!("unsupported escape `\\{other}`"))),
                None => return Err(err(line_no, "dangling escape at end of string")),
            }
        } else if c == '"' {
            return Err(err(line_no, "unescaped quote inside string"));
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn parse_string_array(value: &str, line_no: u32) -> Result<Vec<String>, ConfigError> {
    let inner = value
        .trim()
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| {
            err(
                line_no,
                format!("expected an array of strings, got `{value}`"),
            )
        })?;
    let mut out = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        if !rest.starts_with('"') {
            return Err(err(
                line_no,
                format!("expected a quoted string in array, got `{rest}`"),
            ));
        }
        // Find the closing quote, honouring escapes.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in rest.char_indices().skip(1) {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let end = end.ok_or_else(|| err(line_no, "unterminated string in array"))?;
        out.push(parse_string(&rest[..=end], line_no)?);
        rest = rest[end + 1..].trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.is_empty() {
            return Err(err(line_no, "expected `,` between array elements"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["determinism", "unsafe-forbid"];

    #[test]
    fn parses_scopes_and_allows() {
        let text = r#"
# top comment
exclude = ["vendor", "target"]

[rules.determinism]
include = [
    "crates/sim/src",
    "crates/core/src", # trailing comment
]
exclude = ["crates/core/src/skip.rs"]

[rules.unsafe-forbid]
crate-roots = ["src/lib.rs"]

[[allow]]
rule = "determinism"
path = "crates/bench/src/fleet/shard.rs"
reason = "wall-clock timing of the measure phase"
"#;
        let config = Config::parse(text, RULES).expect("parses");
        assert_eq!(config.exclude, vec!["vendor", "target"]);
        let det = &config.rules["determinism"];
        assert_eq!(det.include.len(), 2);
        assert_eq!(det.exclude, vec!["crates/core/src/skip.rs"]);
        assert_eq!(
            config.rules["unsafe-forbid"].crate_roots,
            vec!["src/lib.rs"]
        );
        assert_eq!(config.allows.len(), 1);
        assert!(config.allows[0].reason.contains("wall-clock"));
    }

    #[test]
    fn rejects_unknown_rules_and_missing_reasons() {
        assert!(Config::parse("[rules.nope]\ninclude = []\n", RULES).is_err());
        let missing_reason = "[[allow]]\nrule = \"determinism\"\npath = \"x\"\n";
        let error = Config::parse(missing_reason, RULES).unwrap_err();
        assert!(error.message.contains("no reason"), "{error}");
        let unknown = "[[allow]]\nrule = \"nope\"\npath = \"x\"\nreason = \"r\"\n";
        assert!(Config::parse(unknown, RULES).is_err());
    }

    #[test]
    fn rejects_typos_loudly() {
        assert!(Config::parse("includ = []\n", RULES).is_err());
        assert!(Config::parse("[rules.determinism]\nincluded = []\n", RULES).is_err());
        assert!(Config::parse("[table]\n", RULES).is_err());
        assert!(Config::parse("[rules.determinism]\ninclude = [\"a\"", RULES).is_err());
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let text = "[rules.determinism]\ninclude = [\"path#with/hash\"]\n";
        let config = Config::parse(text, RULES).expect("parses");
        assert_eq!(config.rules["determinism"].include, vec!["path#with/hash"]);
    }

    #[test]
    fn path_prefixes_match_whole_components() {
        assert!(path_matches("crates/core/src/hub.rs", "crates/core/src"));
        assert!(path_matches("crates/core/src", "crates/core/src"));
        assert!(!path_matches(
            "crates/core/src-other/x.rs",
            "crates/core/src"
        ));
    }
}
