//! The rule engine: per-file token scans for the contracts the test suite
//! can only check dynamically.
//!
//! Every rule works on the [`crate::lexer`] token stream, so nothing inside
//! comments or string literals can ever trip a rule, and `#[cfg(test)]` /
//! `#[test]` regions are skipped (the contracts bind *shipping* code; tests
//! are free to `unwrap`).
//!
//! # Inline waivers
//!
//! A finding can be waived in place:
//!
//! ```text
//! // analyzer: allow(checked-casts) — bounded by the assert above
//! out.extend_from_slice(&(responses.len() as u16).to_be_bytes());
//! ```
//!
//! A waiver on its own line covers the next line of code; a trailing waiver
//! covers its own line. The reason after the dash is **mandatory** — a
//! reasonless or malformed waiver is itself a finding, and so is a waiver
//! that no longer suppresses anything (stale waivers rot the audit trail).

use crate::lexer::{Comment, Lexed, Token, TokenKind};

/// Names of the contract rules, in reporting order.
pub const RULE_NAMES: [&str; 5] = [
    "no-panic-decode",
    "checked-casts",
    "determinism",
    "unsafe-forbid",
    "no-debug-residue",
];

/// Rule name used for waiver/config hygiene findings (malformed or stale
/// waivers). Always on; cannot itself be waived.
pub const WAIVER_RULE: &str = "waiver";

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human explanation.
    pub message: String,
}

/// One parsed inline waiver.
#[derive(Debug)]
pub struct Waiver {
    /// Rules the waiver names.
    pub rules: Vec<String>,
    /// The line of code the waiver covers.
    pub target_line: u32,
    /// Line the waiver comment itself sits on.
    pub comment_line: u32,
    /// Column of the waiver comment.
    pub comment_col: u32,
    /// Whether the waiver suppressed at least one finding.
    pub used: bool,
}

/// Per-file scan state handed to each rule.
pub struct FileContext<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// File contents.
    pub src: &'a str,
    /// Token stream and comments.
    pub lexed: &'a Lexed,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(u32, u32)>,
}

impl FileContext<'_> {
    fn is_test_line(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| (start..=end).contains(&line))
    }

    fn push(&self, findings: &mut Vec<Finding>, rule: &str, token: &Token, message: String) {
        if self.is_test_line(token.line) {
            return;
        }
        findings.push(Finding {
            rule: rule.to_string(),
            file: self.path.to_string(),
            line: token.line,
            col: token.col,
            message,
        });
    }
}

/// Computes the `#[cfg(test)]` / `#[test]` line regions of a token stream.
///
/// An attribute whose idents include `test` (and not `not`, so
/// `#[cfg(not(test))]` stays live code) marks the next braced item — the
/// whole `mod tests { … }` or `fn …() { … }` — as test-only. An attribute
/// that hits a `;` before any `{` (e.g. `#[cfg(test)] use …;`) covers just
/// that statement's lines.
pub fn test_regions(src: &str, lexed: &Lexed) -> Vec<(u32, u32)> {
    let tokens = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_attr_start(tokens, i) {
            i += 1;
            continue;
        }
        // tokens[i] is `#`, tokens[i+1] (or i+2 for `#!`) is `[`.
        let bracket = if tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('!')) {
            i + 2
        } else {
            i + 1
        };
        let Some(close) = matching(tokens, bracket, '[', ']') else {
            break; // unterminated attribute at EOF
        };
        let mentions_test = tokens[bracket..=close]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "test");
        let mentions_not = tokens[bracket..=close]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "not");
        if !mentions_test || mentions_not {
            i = close + 1;
            continue;
        }
        // Walk forward to the item the attribute decorates: the first `{`
        // opens the region; a `;` first means a braceless item.
        let mut j = close + 1;
        let mut region_end_line = None;
        while let Some(token) = tokens.get(j) {
            match token.kind {
                TokenKind::Punct('{') => {
                    let end = matching(tokens, j, '{', '}').unwrap_or(tokens.len() - 1);
                    region_end_line = Some(tokens[end].line);
                    j = end;
                    break;
                }
                TokenKind::Punct(';') => {
                    region_end_line = Some(token.line);
                    break;
                }
                _ => j += 1,
            }
        }
        let start_line = tokens[i].line;
        let end_line =
            region_end_line.unwrap_or_else(|| tokens.last().map(|t| t.line).unwrap_or(start_line));
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

fn is_attr_start(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).map(|t| t.kind) == Some(TokenKind::Punct('#'))
        && matches!(
            tokens.get(i + 1).map(|t| t.kind),
            Some(TokenKind::Punct('[')) | Some(TokenKind::Punct('!'))
        )
        && (tokens.get(i + 1).map(|t| t.kind) != Some(TokenKind::Punct('!'))
            || tokens.get(i + 2).map(|t| t.kind) == Some(TokenKind::Punct('[')))
}

/// Index of the token closing the bracket opened at `open` (which must be
/// `open_char`), or `None` at EOF.
fn matching(tokens: &[Token], open: usize, open_char: char, close_char: char) -> Option<usize> {
    let mut depth = 0i64;
    for (j, token) in tokens.iter().enumerate().skip(open) {
        if token.kind == TokenKind::Punct(open_char) {
            depth += 1;
        } else if token.kind == TokenKind::Punct(close_char) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Extracts inline waivers from a file's comments. Malformed waivers are
/// returned as findings (second element) — the waiver grammar is part of
/// the contract: `// analyzer: allow(rule-a, rule-b) — reason`.
pub fn extract_waivers(
    path: &str,
    src: &str,
    lexed: &Lexed,
    known_rules: &[&str],
) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for comment in &lexed.comments {
        let text = comment.text(src);
        // Doc comments never carry waivers — they are documentation, and
        // the analyzer's own docs quote waiver syntax as examples.
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = text.find("analyzer:") else {
            continue;
        };
        let directive = &text[at + "analyzer:".len()..];
        match parse_waiver_directive(directive, known_rules) {
            Ok(rules) => {
                waivers.push(Waiver {
                    rules,
                    target_line: waiver_target_line(comment, lexed),
                    comment_line: comment.line,
                    comment_col: comment.col,
                    used: false,
                });
            }
            Err(problem) => findings.push(Finding {
                rule: WAIVER_RULE.to_string(),
                file: path.to_string(),
                line: comment.line,
                col: comment.col,
                message: format!("malformed waiver: {problem}"),
            }),
        }
    }
    (waivers, findings)
}

/// Parses `allow(rule, …) <dash> reason`, returning the rule list.
fn parse_waiver_directive(directive: &str, known_rules: &[&str]) -> Result<Vec<String>, String> {
    let directive = directive.trim_start();
    let inner = directive
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|d| d.strip_prefix('('))
        .ok_or_else(|| "expected `allow(<rule>)` after `analyzer:`".to_string())?;
    let (list, rest) = inner
        .split_once(')')
        .ok_or_else(|| "unclosed rule list in `allow(...)`".to_string())?;
    let mut rules = Vec::new();
    for rule in list.split(',') {
        let rule = rule.trim();
        if rule.is_empty() {
            return Err("empty rule name in `allow(...)`".to_string());
        }
        if !known_rules.contains(&rule) {
            return Err(format!("unknown rule `{rule}`"));
        }
        rules.push(rule.to_string());
    }
    if rules.is_empty() {
        return Err("empty rule list in `allow(...)`".to_string());
    }
    let reason = rest
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':'])
        .trim();
    if reason.is_empty() {
        return Err("missing reason — write `allow(<rule>) — <why this is sound>`".to_string());
    }
    Ok(rules)
}

/// The line of code a waiver covers: its own line when code precedes the
/// comment on that line (trailing waiver), otherwise the next line that
/// carries a token.
fn waiver_target_line(comment: &Comment, lexed: &Lexed) -> u32 {
    let trailing = lexed
        .tokens
        .iter()
        .any(|t| t.line == comment.line && t.start < comment.start);
    if trailing {
        return comment.line;
    }
    lexed
        .tokens
        .iter()
        .map(|t| t.line)
        .find(|&line| line > comment.line)
        .unwrap_or(comment.line)
}

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

const NONDETERMINISTIC_IDENTS: [(&str, &str); 6] = [
    ("Instant", "wall-clock time is not simulation time"),
    ("SystemTime", "wall-clock time is not simulation time"),
    ("thread_rng", "OS-seeded randomness breaks reproducibility"),
    ("HashMap", "iteration order is randomized per process"),
    ("HashSet", "iteration order is randomized per process"),
    (
        "RandomState",
        "per-process hasher seeding is nondeterministic",
    ),
];

const DEBUG_MACROS: [&str; 7] = [
    "dbg",
    "todo",
    "unimplemented",
    "println",
    "eprintln",
    "print",
    "eprint",
];

/// `no-panic-decode`: forbid `.unwrap()`, `.expect(…)`, `panic!`,
/// `unreachable!` and slice/array indexing in strict decode paths.
/// Decoders must be total over arbitrary bytes — the fuzz harness checks
/// that dynamically, this rule pins it structurally.
pub fn no_panic_decode(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    let tokens = &ctx.lexed.tokens;
    for (i, token) in tokens.iter().enumerate() {
        match token.kind {
            TokenKind::Ident => {
                let text = token.text(ctx.src);
                let next = tokens.get(i + 1).map(|t| t.kind);
                let prev = i.checked_sub(1).and_then(|p| tokens.get(p)).map(|t| t.kind);
                if (text == "unwrap" || text == "expect")
                    && next == Some(TokenKind::Punct('('))
                    && prev == Some(TokenKind::Punct('.'))
                {
                    ctx.push(
                        findings,
                        "no-panic-decode",
                        token,
                        format!("`.{text}(...)` can panic; decode paths must return `DecodeError`"),
                    );
                } else if (text == "panic" || text == "unreachable")
                    && next == Some(TokenKind::Punct('!'))
                {
                    ctx.push(
                        findings,
                        "no-panic-decode",
                        token,
                        format!("`{text}!` in a decode path; return a structured error instead"),
                    );
                }
            }
            TokenKind::Punct('[') if is_index_expression(ctx.src, tokens, i) => {
                ctx.push(
                    findings,
                    "no-panic-decode",
                    token,
                    "slice/array indexing can panic on hostile lengths; use `get(..)` or a \
                     fixed-size read"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
}

/// Keywords that may directly precede a `[` without forming an index
/// expression (`let [a, b] = …`, `return [x]`, `in [..]`, …). `self` is
/// deliberately absent: `self[i]` is real indexing.
const NON_INDEXING_KEYWORDS: [&str; 14] = [
    "let", "mut", "ref", "in", "return", "if", "else", "match", "move", "const", "static", "as",
    "break", "continue",
];

/// Is the `[` at `i` an index expression (`expr[...]`) rather than an
/// array/slice type, array literal, destructuring pattern or attribute?
/// Index brackets directly follow a non-keyword identifier, a closing
/// `)`/`]`, or a `?`.
fn is_index_expression(src: &str, tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| tokens.get(p)) else {
        return false;
    };
    match prev.kind {
        TokenKind::Ident => !NON_INDEXING_KEYWORDS.contains(&prev.text(src)),
        TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('?') => true,
        _ => false,
    }
}

/// `checked-casts`: bare `as` casts to integer types silently truncate or
/// sign-flip; decode/snapshot paths must use `try_from`/`usize::from` or
/// carry a written waiver.
pub fn checked_casts(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    let tokens = &ctx.lexed.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident || token.text(ctx.src) != "as" {
            continue;
        }
        let Some(target) = tokens.get(i + 1) else {
            continue;
        };
        if target.kind == TokenKind::Ident {
            let name = target.text(ctx.src);
            if INT_TYPES.contains(&name) {
                ctx.push(
                    findings,
                    "checked-casts",
                    token,
                    format!(
                        "bare `as {name}` cast; use `{name}::try_from` (or `usize::from` for \
                         provably-widening casts), or waive with a reason"
                    ),
                );
            }
        }
    }
}

/// `determinism`: forbid wall-clock reads, OS randomness and
/// randomized-iteration containers in deterministic crates. Partition- and
/// thread-invariant totals are the repo's core guarantee; one `HashMap`
/// iteration in a merge path silently breaks it.
pub fn determinism(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    for token in &ctx.lexed.tokens {
        if token.kind != TokenKind::Ident {
            continue;
        }
        let text = token.text(ctx.src);
        if let Some((_, why)) = NONDETERMINISTIC_IDENTS
            .iter()
            .find(|(name, _)| *name == text)
        {
            ctx.push(
                findings,
                "determinism",
                token,
                format!("`{text}` in a deterministic region: {why}"),
            );
        }
    }
}

/// `unsafe-forbid` (file-level): a configured crate root must carry
/// `#![forbid(unsafe_code)]`. Called only for crate-root files.
pub fn unsafe_forbid(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    let tokens = &ctx.lexed.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if token.kind == TokenKind::Ident
            && token.text(ctx.src) == "forbid"
            && tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('('))
        {
            if let Some(close) = matching(tokens, i + 1, '(', ')') {
                let has_unsafe_code = tokens[i + 1..close]
                    .iter()
                    .any(|t| t.kind == TokenKind::Ident && t.text(ctx.src) == "unsafe_code");
                if has_unsafe_code {
                    return;
                }
            }
        }
    }
    findings.push(Finding {
        rule: "unsafe-forbid".to_string(),
        file: ctx.path.to_string(),
        line: 1,
        col: 1,
        message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
    });
}

/// `no-debug-residue`: `dbg!`/`todo!`/`println!` and friends in library
/// code are leftovers; binaries and tests are exempt via scoping.
pub fn no_debug_residue(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    let tokens = &ctx.lexed.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident {
            continue;
        }
        let text = token.text(ctx.src);
        if DEBUG_MACROS.contains(&text)
            && tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('!'))
        {
            // `println` as a method name (`self.println(..)`) is fine; the
            // `!` requirement already excludes it.
            ctx.push(
                findings,
                "no-debug-residue",
                token,
                format!("`{text}!` in library code; route output through the caller or remove"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx<'a>(src: &'a str, lexed: &'a Lexed) -> FileContext<'a> {
        FileContext {
            path: "test.rs",
            src,
            lexed,
            test_regions: test_regions(src, lexed),
        }
    }

    fn run(rule: fn(&FileContext<'_>, &mut Vec<Finding>), src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let ctx = ctx(src, &lexed);
        let mut findings = Vec::new();
        rule(&ctx, &mut findings);
        findings
    }

    #[test]
    fn panic_rule_catches_method_calls_and_macros() {
        let findings = run(
            no_panic_decode,
            "fn f(v: &[u8]) { v.get(0).unwrap(); x.expect(\"boom\"); panic!(\"no\"); }",
        );
        assert_eq!(findings.len(), 3);
    }

    #[test]
    fn panic_rule_catches_indexing_but_not_types_or_attrs() {
        let findings = run(
            no_panic_decode,
            "#[derive(Debug)]\nstruct S { a: [u8; 4] }\nfn f(v: &[u8]) -> u8 { v[0] }",
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("indexing"));
    }

    #[test]
    fn destructuring_patterns_are_not_indexing() {
        assert!(run(
            no_panic_decode,
            "fn f(b: [u8; 2]) -> u8 { let [hi, lo] = b; hi ^ lo }"
        )
        .is_empty());
    }

    #[test]
    fn panic_rule_allows_total_alternatives() {
        assert!(run(
            no_panic_decode,
            "fn f(v: &[u8]) { v.first().copied().unwrap_or(0); let x = [0u8; 4]; }"
        )
        .is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(v: &[u8]) { v.get(0).unwrap(); }\n}";
        assert!(run(no_panic_decode, src).is_empty());
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn live(v: &[u8]) { v.last().unwrap(); }";
        assert_eq!(run(no_panic_decode, src).len(), 1);
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }";
        assert_eq!(run(no_panic_decode, src).len(), 1);
    }

    #[test]
    fn cast_rule_flags_integer_casts_only() {
        let findings = run(
            checked_casts,
            "fn f(x: u32) { let a = x as usize; let b = x as f64; }",
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("as usize"));
    }

    #[test]
    fn determinism_rule_names_the_hazard() {
        let findings = run(
            determinism,
            "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }",
        );
        assert_eq!(findings.len(), 2);
        assert!(findings[1].message.contains("wall-clock"));
    }

    #[test]
    fn unsafe_forbid_checks_the_attribute() {
        assert!(run(unsafe_forbid, "#![forbid(unsafe_code)]\npub fn f() {}").is_empty());
        assert_eq!(run(unsafe_forbid, "pub fn f() {}").len(), 1);
        // deny is not forbid: it can be overridden downstream.
        assert_eq!(run(unsafe_forbid, "#![deny(unsafe_code)]").len(), 1);
    }

    #[test]
    fn debug_residue_requires_the_bang() {
        let findings = run(
            no_debug_residue,
            "fn f() { println!(\"x\"); logger.println(\"ok\"); dbg!(1); }",
        );
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn waivers_parse_and_target_the_right_line() {
        let src = "// analyzer: allow(checked-casts) — bounded above\nlet x = y as u16;\nlet z = t as u16; // analyzer: allow(checked-casts) - same bound\n";
        let lexed = lex(src);
        let (waivers, findings) = extract_waivers("t.rs", src, &lexed, &RULE_NAMES);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(waivers.len(), 2);
        assert_eq!(waivers[0].target_line, 2);
        assert_eq!(waivers[1].target_line, 3);
    }

    #[test]
    fn reasonless_or_unknown_waivers_are_findings() {
        for src in [
            "// analyzer: allow(checked-casts)\nlet x = y as u16;\n",
            "// analyzer: allow(checked-casts) —   \nlet x = y as u16;\n",
            "// analyzer: allow(not-a-rule) — because\nlet x = 1;\n",
            "// analyzer: allow() — because\nlet x = 1;\n",
            "// analyzer: disallow(x) — because\nlet x = 1;\n",
        ] {
            let lexed = lex(src);
            let (waivers, findings) = extract_waivers("t.rs", src, &lexed, &RULE_NAMES);
            assert!(waivers.is_empty(), "{src}");
            assert_eq!(findings.len(), 1, "{src}");
            assert_eq!(findings[0].rule, WAIVER_RULE);
        }
    }
}
