//! `erasmus-analyzer` — an in-repo lint engine that enforces the
//! workspace's no-panic decode and determinism contracts statically.
//!
//! The repo's two load-bearing guarantees are dynamic everywhere else:
//! fuzzing shows the wire decoders never panic, and the fleet tests show
//! totals are bit-identical across thread counts. Nothing in that setup
//! stops the next change from adding an `unwrap()` to `encoding.rs` or a
//! `HashMap` iteration to a merge path — the tests only catch what the
//! corpora happen to exercise. This crate checks the *code*: a
//! dependency-free, comment/string-aware token scan over the workspace's
//! own source, with committed scoping (`analyzer.toml`) and mandatory-
//! reason waivers, gated in CI.
//!
//! The rules (see [`rules`]):
//!
//! | rule | contract |
//! |------|----------|
//! | `no-panic-decode`  | strict decode paths are total: no `unwrap`/`expect`/`panic!`/`unreachable!`/indexing |
//! | `checked-casts`    | no bare `as` integer casts in decode/snapshot paths |
//! | `determinism`      | no wall-clock, OS randomness or randomized-iteration containers in deterministic crates |
//! | `unsafe-forbid`    | every crate root keeps `#![forbid(unsafe_code)]` |
//! | `no-debug-residue` | no `dbg!`/`todo!`/`println!` in library code |
//!
//! Run it as the CI gate does:
//!
//! ```text
//! cargo run -p erasmus-analyzer -- --workspace          # human diagnostics
//! cargo run -p erasmus-analyzer -- --workspace --json   # machine-readable report
//! ```
//!
//! Exit code 0 means every finding is either fixed or waived with a
//! written reason; any unwaived finding (or stale waiver) exits 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

use config::{path_matches, Config};
use report::Analysis;
use rules::{FileContext, Finding, RULE_NAMES, WAIVER_RULE};

/// Collects every `.rs` file under `root` (relative `/`-separated paths,
/// sorted), skipping `target`, dot-directories and the configured global
/// excludes.
pub fn walk_workspace(root: &Path, excludes: &[String]) -> io::Result<Vec<String>> {
    let mut files = BTreeSet::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(root.join(&dir))?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let name = entry.file_name();
            let Some(name) = name.to_str() else {
                continue; // non-UTF8 names cannot be workspace sources
            };
            let rel = if dir.as_os_str().is_empty() {
                PathBuf::from(name)
            } else {
                dir.join(name)
            };
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            if excludes.iter().any(|prefix| path_matches(&rel_str, prefix)) {
                continue;
            }
            let file_type = entry.file_type()?;
            if file_type.is_dir() {
                if name.starts_with('.') || name == "target" {
                    continue;
                }
                stack.push(rel);
            } else if file_type.is_file() && name.ends_with(".rs") {
                files.insert(rel_str);
            }
        }
    }
    Ok(files.into_iter().collect())
}

/// Which configured rules scan `path`?
fn rules_in_scope<'a>(config: &'a Config, path: &str) -> Vec<&'a str> {
    config
        .rules
        .iter()
        .filter(|(name, scope)| {
            *name != "unsafe-forbid"
                && scope.include.iter().any(|p| path_matches(path, p))
                && !scope.exclude.iter().any(|p| path_matches(path, p))
        })
        .map(|(name, _)| name.as_str())
        .collect()
}

/// Runs the full analysis over `root` under `config`.
///
/// # Errors
///
/// Returns an error only for filesystem failures; findings — including
/// missing crate roots and malformed waivers — are data, not errors.
pub fn analyze(root: &Path, config: &Config) -> io::Result<Analysis> {
    let files = walk_workspace(root, &config.exclude)?;
    let crate_roots: Vec<&str> = config
        .rules
        .get("unsafe-forbid")
        .map(|scope| scope.crate_roots.iter().map(String::as_str).collect())
        .unwrap_or_default();

    let mut findings = Vec::new();
    let mut waiver_findings = Vec::new();
    let mut waivers_used = 0usize;
    let mut findings_waived = 0usize;
    let mut findings_allowed = 0usize;
    let mut allows_used = vec![false; config.allows.len()];

    for path in &files {
        let bytes = std::fs::read(root.join(path))?;
        let src = String::from_utf8_lossy(&bytes);
        let lexed = lexer::lex(&src);
        let ctx = FileContext {
            path,
            src: &src,
            lexed: &lexed,
            test_regions: rules::test_regions(&src, &lexed),
        };

        let mut file_findings = Vec::new();
        for rule in rules_in_scope(config, path) {
            match rule {
                "no-panic-decode" => rules::no_panic_decode(&ctx, &mut file_findings),
                "checked-casts" => rules::checked_casts(&ctx, &mut file_findings),
                "determinism" => rules::determinism(&ctx, &mut file_findings),
                "no-debug-residue" => rules::no_debug_residue(&ctx, &mut file_findings),
                _ => {}
            }
        }
        if crate_roots.contains(&path.as_str()) {
            rules::unsafe_forbid(&ctx, &mut file_findings);
        }

        // Inline waivers: a finding is waived when a waiver on its line
        // names its rule. Malformed and stale waivers are findings.
        let (mut waivers, malformed) = rules::extract_waivers(path, &src, &lexed, &RULE_NAMES);
        waiver_findings.extend(malformed);
        file_findings.retain(|finding| {
            let mut waived = false;
            for waiver in waivers.iter_mut() {
                if waiver.target_line == finding.line
                    && waiver.rules.iter().any(|r| r == &finding.rule)
                {
                    waiver.used = true;
                    waived = true;
                }
            }
            if waived {
                findings_waived += 1;
            }
            !waived
        });
        for waiver in &waivers {
            if waiver.used {
                waivers_used += 1;
            } else {
                waiver_findings.push(Finding {
                    rule: WAIVER_RULE.to_string(),
                    file: path.clone(),
                    line: waiver.comment_line,
                    col: waiver.comment_col,
                    message: format!(
                        "stale waiver for `{}`: it no longer suppresses any finding — remove it",
                        waiver.rules.join(", ")
                    ),
                });
            }
        }

        // Path-scoped [[allow]] entries from analyzer.toml.
        file_findings.retain(|finding| {
            for (i, allow) in config.allows.iter().enumerate() {
                if allow.rule == finding.rule && path_matches(&finding.file, &allow.path) {
                    allows_used[i] = true;
                    findings_allowed += 1;
                    return false;
                }
            }
            true
        });
        findings.extend(file_findings);
    }

    // Crate roots that are configured but missing from the tree entirely.
    for missing in crate_roots
        .iter()
        .filter(|path| !files.iter().any(|f| f == *path))
    {
        findings.push(Finding {
            rule: "unsafe-forbid".to_string(),
            file: (*missing).to_string(),
            line: 1,
            col: 1,
            message: "configured crate root does not exist".to_string(),
        });
    }

    // Stale [[allow]] entries rot the audit trail exactly like stale
    // inline waivers do.
    for (allow, _) in config
        .allows
        .iter()
        .zip(&allows_used)
        .filter(|(_, used)| !**used)
    {
        findings.push(Finding {
            rule: WAIVER_RULE.to_string(),
            file: "analyzer.toml".to_string(),
            line: allow.line,
            col: 1,
            message: format!(
                "stale [[allow]] for `{}` on `{}`: it no longer suppresses any finding",
                allow.rule, allow.path
            ),
        });
    }

    findings.extend(waiver_findings);
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));

    Ok(Analysis {
        findings,
        files_scanned: files.len(),
        waivers_used,
        findings_waived,
        findings_allowed,
    })
}
