//! Golden fixture tests: every rule is pinned against a violating fixture
//! (diagnostic-for-diagnostic, including positions) and a clean fixture
//! that must stay silent. The fixtures live under `tests/fixtures/` and
//! are excluded from the workspace scan by `analyzer.toml`.

use erasmus_analyzer::lexer::lex;
use erasmus_analyzer::report::{render_human, render_json, Analysis};
use erasmus_analyzer::rules::{self, FileContext, Finding, RULE_NAMES};

type Rule = fn(&FileContext<'_>, &mut Vec<Finding>);

/// Runs one rule over fixture source, returning rustc-shaped diagnostics.
fn run(rule: Rule, path: &str, src: &str) -> Vec<String> {
    let lexed = lex(src);
    let ctx = FileContext {
        path,
        src,
        lexed: &lexed,
        test_regions: rules::test_regions(src, &lexed),
    };
    let mut findings = Vec::new();
    rule(&ctx, &mut findings);
    findings.iter().map(render_human).collect()
}

fn assert_diagnostics(actual: &[String], expected: &[&str]) {
    assert_eq!(
        actual,
        expected,
        "\n--- actual ---\n{}\n--- expected ---\n{}\n",
        actual.join("\n"),
        expected.join("\n"),
    );
}

#[test]
fn no_panic_decode_violating_fixture_pins_diagnostics() {
    let src = include_str!("fixtures/no-panic-decode/violating.rs");
    let actual = run(
        rules::no_panic_decode,
        "fixtures/no-panic-decode/violating.rs",
        src,
    );
    assert_diagnostics(
        &actual,
        &[
            "error[no-panic-decode]: slice/array indexing can panic on hostile lengths; use `get(..)` or a fixed-size read\n  --> fixtures/no-panic-decode/violating.rs:3:22",
            "error[no-panic-decode]: `panic!` in a decode path; return a structured error instead\n  --> fixtures/no-panic-decode/violating.rs:5:9",
            "error[no-panic-decode]: slice/array indexing can panic on hostile lengths; use `get(..)` or a fixed-size read\n  --> fixtures/no-panic-decode/violating.rs:7:30",
            "error[no-panic-decode]: `.unwrap(...)` can panic; decode paths must return `DecodeError`\n  --> fixtures/no-panic-decode/violating.rs:7:48",
            "error[no-panic-decode]: `unreachable!` in a decode path; return a structured error instead\n  --> fixtures/no-panic-decode/violating.rs:9:14",
            "error[no-panic-decode]: `.expect(...)` can panic; decode paths must return `DecodeError`\n  --> fixtures/no-panic-decode/violating.rs:15:31",
        ],
    );
}

#[test]
fn no_panic_decode_clean_fixture_is_silent() {
    let src = include_str!("fixtures/no-panic-decode/clean.rs");
    let actual = run(
        rules::no_panic_decode,
        "fixtures/no-panic-decode/clean.rs",
        src,
    );
    assert_diagnostics(&actual, &[]);
}

#[test]
fn checked_casts_violating_fixture_pins_diagnostics() {
    let src = include_str!("fixtures/checked-casts/violating.rs");
    let actual = run(
        rules::checked_casts,
        "fixtures/checked-casts/violating.rs",
        src,
    );
    assert_diagnostics(
        &actual,
        &[
            "error[checked-casts]: bare `as u16` cast; use `u16::try_from` (or `usize::from` for provably-widening casts), or waive with a reason\n  --> fixtures/checked-casts/violating.rs:3:27",
            "error[checked-casts]: bare `as u8` cast; use `u8::try_from` (or `usize::from` for provably-widening casts), or waive with a reason\n  --> fixtures/checked-casts/violating.rs:4:18",
        ],
    );
}

#[test]
fn checked_casts_clean_fixture_is_silent() {
    let src = include_str!("fixtures/checked-casts/clean.rs");
    let actual = run(rules::checked_casts, "fixtures/checked-casts/clean.rs", src);
    assert_diagnostics(&actual, &[]);
}

#[test]
fn determinism_violating_fixture_pins_diagnostics() {
    let src = include_str!("fixtures/determinism/violating.rs");
    let actual = run(rules::determinism, "fixtures/determinism/violating.rs", src);
    assert_diagnostics(
        &actual,
        &[
            "error[determinism]: `HashMap` in a deterministic region: iteration order is randomized per process\n  --> fixtures/determinism/violating.rs:3:23",
            "error[determinism]: `Instant` in a deterministic region: wall-clock time is not simulation time\n  --> fixtures/determinism/violating.rs:4:16",
            "error[determinism]: `Instant` in a deterministic region: wall-clock time is not simulation time\n  --> fixtures/determinism/violating.rs:7:17",
            "error[determinism]: `HashMap` in a deterministic region: iteration order is randomized per process\n  --> fixtures/determinism/violating.rs:8:21",
            "error[determinism]: `HashMap` in a deterministic region: iteration order is randomized per process\n  --> fixtures/determinism/violating.rs:8:41",
        ],
    );
}

#[test]
fn determinism_clean_fixture_is_silent() {
    let src = include_str!("fixtures/determinism/clean.rs");
    let actual = run(rules::determinism, "fixtures/determinism/clean.rs", src);
    assert_diagnostics(&actual, &[]);
}

#[test]
fn unsafe_forbid_violating_fixture_pins_diagnostics() {
    let src = include_str!("fixtures/unsafe-forbid/violating.rs");
    let actual = run(
        rules::unsafe_forbid,
        "fixtures/unsafe-forbid/violating.rs",
        src,
    );
    assert_diagnostics(
        &actual,
        &["error[unsafe-forbid]: crate root is missing `#![forbid(unsafe_code)]`\n  --> fixtures/unsafe-forbid/violating.rs:1:1"],
    );
}

#[test]
fn unsafe_forbid_clean_fixture_is_silent() {
    let src = include_str!("fixtures/unsafe-forbid/clean.rs");
    let actual = run(rules::unsafe_forbid, "fixtures/unsafe-forbid/clean.rs", src);
    assert_diagnostics(&actual, &[]);
}

#[test]
fn no_debug_residue_violating_fixture_pins_diagnostics() {
    let src = include_str!("fixtures/no-debug-residue/violating.rs");
    let actual = run(
        rules::no_debug_residue,
        "fixtures/no-debug-residue/violating.rs",
        src,
    );
    assert_diagnostics(
        &actual,
        &[
            "error[no-debug-residue]: `println!` in library code; route output through the caller or remove\n  --> fixtures/no-debug-residue/violating.rs:3:5",
            "error[no-debug-residue]: `dbg!` in library code; route output through the caller or remove\n  --> fixtures/no-debug-residue/violating.rs:4:19",
            "error[no-debug-residue]: `todo!` in library code; route output through the caller or remove\n  --> fixtures/no-debug-residue/violating.rs:6:9",
        ],
    );
}

#[test]
fn no_debug_residue_clean_fixture_is_silent() {
    let src = include_str!("fixtures/no-debug-residue/clean.rs");
    let actual = run(
        rules::no_debug_residue,
        "fixtures/no-debug-residue/clean.rs",
        src,
    );
    assert_diagnostics(&actual, &[]);
}

#[test]
fn waiver_violating_fixture_pins_diagnostics() {
    let src = include_str!("fixtures/waiver/violating.rs");
    let lexed = lex(src);
    let (waivers, malformed) =
        rules::extract_waivers("fixtures/waiver/violating.rs", src, &lexed, &RULE_NAMES);
    assert!(
        waivers.is_empty(),
        "malformed waivers must not parse: {waivers:?}"
    );
    let actual: Vec<String> = malformed.iter().map(render_human).collect();
    assert_diagnostics(
        &actual,
        &[
            "error[waiver]: malformed waiver: missing reason — write `allow(<rule>) — <why this is sound>`\n  --> fixtures/waiver/violating.rs:3:5",
            "error[waiver]: malformed waiver: unknown rule `no-such-rule`\n  --> fixtures/waiver/violating.rs:8:7",
        ],
    );
}

#[test]
fn waiver_clean_fixture_parses_both_shapes() {
    let src = include_str!("fixtures/waiver/clean.rs");
    let lexed = lex(src);
    let (waivers, malformed) =
        rules::extract_waivers("fixtures/waiver/clean.rs", src, &lexed, &RULE_NAMES);
    assert!(
        malformed.is_empty(),
        "clean fixture produced: {malformed:?}"
    );
    assert_eq!(waivers.len(), 2);
    // Trailing waiver covers its own line.
    assert_eq!(waivers[0].rules, ["determinism"]);
    assert_eq!(waivers[0].target_line, 3);
    assert_eq!(waivers[0].comment_line, 3);
    // Standalone waiver covers the next code line; rule lists may span rules.
    assert_eq!(waivers[1].rules, ["no-panic-decode", "checked-casts"]);
    assert_eq!(waivers[1].target_line, 8);
    assert_eq!(waivers[1].comment_line, 7);
}

#[test]
fn json_report_golden() {
    let analysis = Analysis {
        findings: vec![Finding {
            rule: "determinism".to_string(),
            file: "crates/core/src/hub.rs".to_string(),
            line: 12,
            col: 7,
            message:
                "`HashMap` in a deterministic region: iteration order is randomized per process"
                    .to_string(),
        }],
        files_scanned: 2,
        waivers_used: 1,
        findings_waived: 1,
        findings_allowed: 0,
    };
    let expected = concat!(
        "{\n",
        "  \"schema\": \"erasmus-analyzer/v1\",\n",
        "  \"files_scanned\": 2,\n",
        "  \"waivers_used\": 1,\n",
        "  \"findings_waived\": 1,\n",
        "  \"findings_allowed\": 0,\n",
        "  \"clean\": false,\n",
        "  \"findings\": [\n",
        "    {\"rule\": \"determinism\", \"file\": \"crates/core/src/hub.rs\", \"line\": 12, \"col\": 7, ",
        "\"message\": \"`HashMap` in a deterministic region: iteration order is randomized per process\"}\n",
        "  ]\n",
        "}\n",
    );
    assert_eq!(render_json(&analysis), expected);
}
