//! Property tests: the hand-rolled lexer is total. It must never panic on
//! any input — including adversarial fragments that leave strings, raw
//! strings, char literals and block comments unterminated — and every
//! span it reports must stay inside the source.

use erasmus_analyzer::lexer::lex;
use proptest::prelude::*;

/// Fragments chosen to hit the lexer's hard paths: unterminated literals,
/// raw-string hash counting, nested block comments, byte/C-string
/// prefixes, lifetime-vs-char disambiguation and stray escapes.
const FRAGMENTS: [&str; 24] = [
    "r#\"",
    "\"#",
    "r###\"x\"##",
    "\"",
    "\\\"",
    "'",
    "'a",
    "'\\",
    "b'",
    "b\"",
    "c\"",
    "br#\"",
    "//",
    "/*",
    "*/",
    "/* /* nested",
    "///",
    "//!",
    "#",
    "\n",
    "ident",
    "0x_1f",
    "é∀",
    "r#raw_ident",
];

fn assert_spans_in_bounds(src: &str) {
    let lexed = lex(src);
    for token in &lexed.tokens {
        assert!(
            token.start <= token.end && token.end <= src.len(),
            "token span out of bounds"
        );
        assert!(
            src.is_char_boundary(token.start) && src.is_char_boundary(token.end),
            "token span splits a char"
        );
    }
    for comment in &lexed.comments {
        assert!(
            comment.start <= comment.end && comment.end <= src.len(),
            "comment span out of bounds"
        );
    }
}

proptest! {
    #[test]
    fn lexer_is_total_over_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let src = String::from_utf8_lossy(&bytes);
        assert_spans_in_bounds(&src);
    }

    #[test]
    fn lexer_is_total_over_adversarial_fragments(
        picks in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let src: String = picks
            .iter()
            .map(|&b| FRAGMENTS[usize::from(b) % FRAGMENTS.len()])
            .collect();
        assert_spans_in_bounds(&src);
    }
}
