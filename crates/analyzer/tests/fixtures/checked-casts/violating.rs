// Fixture: narrowing `as` casts the `checked-casts` rule must flag.
pub fn narrow(len: usize, word: u32) -> (u16, u8) {
    let hi = (word >> 16) as u16;
    let lo = len as u8;
    (hi, lo)
}
