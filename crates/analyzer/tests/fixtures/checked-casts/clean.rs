// Fixture: checked conversions only; the rule must stay silent. A cast to
// a float is outside the rule's integer-target scope.
pub fn widen(len: u16, count: u32) -> (usize, usize) {
    let from_len = usize::from(len);
    let from_count = usize::try_from(count).unwrap_or(usize::MAX);
    (from_len, from_count)
}

pub fn ratio(hits: u32) -> f64 {
    hits as f64
}
