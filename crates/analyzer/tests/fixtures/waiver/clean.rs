// Fixture: well-formed waivers, trailing and standalone, that must parse.
pub fn trailing() -> u64 {
    7 // analyzer: allow(determinism) — fixture: a trailing waiver covers its own line
}

pub fn standalone() -> u64 {
    // analyzer: allow(no-panic-decode, checked-casts) — fixture: covers the next code line
    9
}
