// Fixture: waiver-grammar violations the `waiver` meta-rule must flag.
pub fn stamp() -> u64 {
    // analyzer: allow(determinism)
    7
}

pub fn count() -> usize {
    3 // analyzer: allow(no-such-rule) — an unknown rule is malformed
}
