// Fixture: simulated time and ordered containers; the rule must stay
// silent, including over the identifiers in this comment: Instant, HashMap.
use std::collections::BTreeMap;

pub fn measure(now_nanos: u64) -> u64 {
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    counts.insert(now_nanos, 1);
    counts.values().sum()
}
