// Fixture: wall-clock reads and randomized containers the `determinism`
// rule must flag.
use std::collections::HashMap;
use std::time::Instant;

pub fn measure() -> u128 {
    let start = Instant::now();
    let mut counts: HashMap<u64, u64> = HashMap::new();
    counts.insert(0, 1);
    start.elapsed().as_nanos()
}
