// Fixture: a total decoder; the rule must stay silent. Array-type syntax,
// array literals and destructuring patterns all use `[` without indexing.
pub fn decode(bytes: &[u8]) -> Option<u16> {
    let pair: [u8; 2] = bytes.get(1..3)?.try_into().ok()?;
    Some(u16::from_be_bytes(pair))
}

pub fn first(bytes: &[u8]) -> Option<u8> {
    let [byte] = *bytes.first_chunk::<1>()?;
    Some(byte)
}

pub fn header() -> [u8; 4] {
    [0xEu8, 0xA, 0x5, 0x0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn panicking_assertions_are_fine_inside_tests() {
        assert_eq!(super::decode(&[0, 1, 2]).unwrap(), 0x0102);
    }
}
