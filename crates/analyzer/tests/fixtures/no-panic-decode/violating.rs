// Fixture: every panic avenue the `no-panic-decode` rule must catch.
pub fn decode(bytes: &[u8]) -> u16 {
    let first = bytes[0];
    if first == 0 {
        panic!("zero prefix");
    }
    let pair: [u8; 2] = bytes[1..3].try_into().unwrap();
    match u16::from_be_bytes(pair) {
        0 => unreachable!(),
        value => value,
    }
}

pub fn lookup(table: &[u16], index: usize) -> u16 {
    table.get(index).copied().expect("index in range")
}
