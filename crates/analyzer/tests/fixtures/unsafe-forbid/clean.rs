// Fixture: the required crate-root attribute is present.
#![forbid(unsafe_code)]

pub fn noop() {}
