// Fixture: a crate root that merely denies unsafe code. `deny` can be
// overridden with `#[allow]`; the rule requires `forbid`.
#![deny(unsafe_code)]

pub fn noop() {}
