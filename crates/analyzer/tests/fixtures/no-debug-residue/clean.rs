// Fixture: no residue. `println` as a method name is not a macro call and
// must not be flagged.
pub struct Console;

impl Console {
    pub fn println(&self, _line: &str) {}
}

pub fn compute(console: &Console, x: u32) -> u32 {
    console.println("computing");
    x * 2
}
