// Fixture: leftover debug macros the `no-debug-residue` rule must flag.
pub fn compute(x: u32) -> u32 {
    println!("computing {x}");
    let doubled = dbg!(x * 2);
    if doubled == 0 {
        todo!("handle zero");
    }
    doubled
}
