//! ROM image: the attestation code and (on SMART+) the device key.

use erasmus_crypto::{Digest, Sha256};

use crate::key::DeviceKey;

/// The immutable ROM contents of a SMART+ device, or the secure-boot-
/// protected `PrAtt` image of a HYDRA device.
///
/// The ROM holds (a) the attestation/measurement code and (b) the device key
/// `K`. Neither can be modified at runtime; the [`Rom::code_digest`] is what
/// secure boot (HYDRA) checks before handing control to the system.
///
/// # Example
///
/// ```
/// use erasmus_hw::{DeviceKey, Rom};
///
/// let rom = Rom::new(DeviceKey::from_bytes([1; 32]), b"attestation code image".to_vec());
/// assert_eq!(rom.code().len(), 22);
/// assert_eq!(rom.code_digest().len(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rom {
    key: DeviceKey,
    code: Vec<u8>,
    code_digest: [u8; 32],
}

impl Rom {
    /// Creates a ROM image holding `key` and the attestation `code` bytes.
    pub fn new(key: DeviceKey, code: Vec<u8>) -> Self {
        let code_digest = Sha256::digest(&code);
        Self {
            key,
            code,
            code_digest,
        }
    }

    /// Creates a ROM with a synthetic attestation-code image of `code_size`
    /// bytes (used when only the *size* matters, e.g. for Table 1 models).
    pub fn with_synthetic_code(key: DeviceKey, code_size: usize) -> Self {
        // Deterministic, compressible-looking filler: a repeating counter.
        let code: Vec<u8> = (0..code_size).map(|i| (i % 251) as u8).collect();
        Self::new(key, code)
    }

    /// The device key. Access control is enforced by the MCU, not here; see
    /// [`crate::Mcu::run_trusted`].
    pub(crate) fn key(&self) -> &DeviceKey {
        &self.key
    }

    /// The attestation code bytes.
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// SHA-256 digest of the attestation code, as checked by secure boot.
    pub fn code_digest(&self) -> &[u8; 32] {
        &self.code_digest
    }

    /// Size of the attestation code in bytes.
    pub fn code_size(&self) -> usize {
        self.code.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_matches_code() {
        let rom = Rom::new(DeviceKey::from_bytes([0; 32]), vec![1, 2, 3]);
        assert_eq!(rom.code_digest(), &Sha256::digest(&[1, 2, 3])[..]);
        assert_eq!(rom.code(), &[1, 2, 3]);
        assert_eq!(rom.code_size(), 3);
    }

    #[test]
    fn synthetic_code_has_requested_size() {
        let rom = Rom::with_synthetic_code(DeviceKey::from_bytes([0; 32]), 4900);
        assert_eq!(rom.code_size(), 4900);
        // Deterministic: same size gives same digest.
        let rom2 = Rom::with_synthetic_code(DeviceKey::from_bytes([0; 32]), 4900);
        assert_eq!(rom.code_digest(), rom2.code_digest());
    }

    #[test]
    fn different_code_different_digest() {
        let a = Rom::new(DeviceKey::from_bytes([0; 32]), vec![1, 2, 3]);
        let b = Rom::new(DeviceKey::from_bytes([0; 32]), vec![1, 2, 4]);
        assert_ne!(a.code_digest(), b.code_digest());
    }
}
