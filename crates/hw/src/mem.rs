//! Memory map and regions of the simulated device.

use crate::error::HwError;

/// What a memory region is used for.
///
/// The variants mirror the memory organization shown in Figure 5 (SMART+)
/// and Figure 7 (HYDRA) of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// ROM holding the attestation code (and, on SMART+, the key `K`).
    Rom,
    /// The device key storage.
    Key,
    /// Application RAM / flash: the memory that gets measured.
    Application,
    /// Insecure storage holding the rolling measurement buffer.
    MeasurementStore,
    /// Memory-mapped peripherals (RROC, timers, network interface).
    Peripheral,
}

impl RegionKind {
    /// Human-readable name used in error messages and dumps.
    pub fn name(self) -> &'static str {
        match self {
            RegionKind::Rom => "rom",
            RegionKind::Key => "key",
            RegionKind::Application => "application",
            RegionKind::MeasurementStore => "measurement-store",
            RegionKind::Peripheral => "peripheral",
        }
    }
}

/// A contiguous region of the device address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryRegion {
    /// Region role.
    pub kind: RegionKind,
    /// Start address.
    pub base: usize,
    /// Size in bytes.
    pub size: usize,
}

impl MemoryRegion {
    /// Creates a region.
    pub fn new(kind: RegionKind, base: usize, size: usize) -> Self {
        Self { kind, base, size }
    }

    /// Exclusive end address.
    pub fn end(&self) -> usize {
        self.base + self.size
    }

    /// Whether `addr` lies inside the region.
    pub fn contains(&self, addr: usize) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Whether two regions overlap.
    pub fn overlaps(&self, other: &MemoryRegion) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

/// The full memory map of a device.
///
/// # Example
///
/// ```
/// use erasmus_hw::{MemoryMap, MemoryRegion, RegionKind};
///
/// let map = MemoryMap::smart_plus_layout(10 * 1024, 16 * 72)?;
/// assert!(map.region(RegionKind::Rom).is_some());
/// assert!(map.region(RegionKind::Application).is_some());
/// # Ok::<(), erasmus_hw::HwError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryMap {
    regions: Vec<MemoryRegion>,
}

impl MemoryMap {
    /// Builds a map from explicit regions.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::OverlappingRegions`] if any two regions overlap.
    pub fn new(regions: Vec<MemoryRegion>) -> Result<Self, HwError> {
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                if a.overlaps(b) {
                    return Err(HwError::OverlappingRegions {
                        first: a.kind.name().to_owned(),
                        second: b.kind.name().to_owned(),
                    });
                }
            }
        }
        Ok(Self { regions })
    }

    /// The canonical SMART+ layout of Figure 5: ROM (attestation code + K),
    /// application memory, the measurement store and the peripheral window.
    ///
    /// # Errors
    ///
    /// Returns an error if the computed layout overlaps, which only happens
    /// with absurdly large sizes.
    pub fn smart_plus_layout(app_size: usize, store_size: usize) -> Result<Self, HwError> {
        const ROM_BASE: usize = 0x0000;
        const ROM_SIZE: usize = 6 * 1024;
        const KEY_SIZE: usize = 32;
        let key_base = ROM_BASE + ROM_SIZE;
        let app_base = key_base + KEY_SIZE;
        let store_base = app_base + app_size;
        let periph_base = store_base + store_size;
        Self::new(vec![
            MemoryRegion::new(RegionKind::Rom, ROM_BASE, ROM_SIZE),
            MemoryRegion::new(RegionKind::Key, key_base, KEY_SIZE),
            MemoryRegion::new(RegionKind::Application, app_base, app_size),
            MemoryRegion::new(RegionKind::MeasurementStore, store_base, store_size),
            MemoryRegion::new(RegionKind::Peripheral, periph_base, 256),
        ])
    }

    /// The HYDRA layout of Figure 7: no ROM code beyond the secure-boot
    /// stub; the key and attestation code live in RAM owned by `PrAtt`.
    ///
    /// # Errors
    ///
    /// Returns an error if the computed layout overlaps.
    pub fn hydra_layout(app_size: usize, store_size: usize) -> Result<Self, HwError> {
        const BOOT_ROM_SIZE: usize = 32 * 1024;
        const PRATT_SIZE: usize = 256 * 1024;
        const KEY_SIZE: usize = 32;
        let key_base = BOOT_ROM_SIZE + PRATT_SIZE;
        let app_base = key_base + KEY_SIZE;
        let store_base = app_base + app_size;
        let periph_base = store_base + store_size;
        Self::new(vec![
            MemoryRegion::new(RegionKind::Rom, 0, BOOT_ROM_SIZE),
            MemoryRegion::new(RegionKind::Key, key_base, KEY_SIZE),
            MemoryRegion::new(RegionKind::Application, app_base, app_size),
            MemoryRegion::new(RegionKind::MeasurementStore, store_base, store_size),
            MemoryRegion::new(RegionKind::Peripheral, periph_base, 4096),
        ])
    }

    /// All regions in the map.
    pub fn regions(&self) -> &[MemoryRegion] {
        &self.regions
    }

    /// The first region of the given kind, if present.
    pub fn region(&self, kind: RegionKind) -> Option<&MemoryRegion> {
        self.regions.iter().find(|r| r.kind == kind)
    }

    /// The region containing `addr`, if any.
    pub fn region_containing(&self, addr: usize) -> Option<&MemoryRegion> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// Total mapped size in bytes.
    pub fn total_size(&self) -> usize {
        self.regions.iter().map(|r| r.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_geometry() {
        let region = MemoryRegion::new(RegionKind::Application, 100, 50);
        assert_eq!(region.end(), 150);
        assert!(region.contains(100));
        assert!(region.contains(149));
        assert!(!region.contains(150));
        assert!(!region.contains(99));
    }

    #[test]
    fn overlap_detection() {
        let a = MemoryRegion::new(RegionKind::Rom, 0, 100);
        let b = MemoryRegion::new(RegionKind::Application, 50, 100);
        let c = MemoryRegion::new(RegionKind::Application, 100, 100);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn map_rejects_overlaps() {
        let err = MemoryMap::new(vec![
            MemoryRegion::new(RegionKind::Rom, 0, 100),
            MemoryRegion::new(RegionKind::Key, 50, 10),
        ])
        .unwrap_err();
        assert!(matches!(err, HwError::OverlappingRegions { .. }));
    }

    #[test]
    fn smart_plus_layout_has_all_regions() {
        let map = MemoryMap::smart_plus_layout(10 * 1024, 1024).expect("layout");
        for kind in [
            RegionKind::Rom,
            RegionKind::Key,
            RegionKind::Application,
            RegionKind::MeasurementStore,
            RegionKind::Peripheral,
        ] {
            assert!(map.region(kind).is_some(), "missing {kind:?}");
        }
        assert_eq!(
            map.region(RegionKind::Application).map(|r| r.size),
            Some(10 * 1024)
        );
        assert!(map.total_size() > 10 * 1024);
    }

    #[test]
    fn hydra_layout_has_all_regions() {
        let map = MemoryMap::hydra_layout(10 * 1024 * 1024, 64 * 1024).expect("layout");
        assert_eq!(
            map.region(RegionKind::Application).map(|r| r.size),
            Some(10 * 1024 * 1024)
        );
        assert!(map.region(RegionKind::Rom).map(|r| r.size).unwrap() >= 32 * 1024);
    }

    #[test]
    fn region_containing_lookup() {
        let map = MemoryMap::smart_plus_layout(1024, 256).expect("layout");
        let app = map.region(RegionKind::Application).expect("app region");
        let found = map
            .region_containing(app.base + 5)
            .expect("containing region");
        assert_eq!(found.kind, RegionKind::Application);
        assert!(map.region_containing(usize::MAX / 2).is_none());
    }

    #[test]
    fn region_kind_names() {
        assert_eq!(RegionKind::Rom.name(), "rom");
        assert_eq!(RegionKind::MeasurementStore.name(), "measurement-store");
    }
}
