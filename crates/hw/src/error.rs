//! Error type for the hardware substrate.

use std::fmt;

/// Errors reported by the simulated hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwError {
    /// An access violated the MPU rule table (e.g. untrusted code tried to
    /// read the device key).
    AccessViolation {
        /// Which subject attempted the access.
        subject: String,
        /// Which region was targeted.
        region: String,
        /// What kind of access was attempted.
        access: String,
    },
    /// A memory operation fell outside the addressed region.
    OutOfBounds {
        /// Requested offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// Size of the region.
        region_size: usize,
    },
    /// Secure boot rejected the loaded image.
    SecureBootFailure {
        /// Human-readable reason.
        reason: String,
    },
    /// A memory map was configured with overlapping regions.
    OverlappingRegions {
        /// Name of the first region.
        first: String,
        /// Name of the second region.
        second: String,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::AccessViolation {
                subject,
                region,
                access,
            } => {
                write!(
                    f,
                    "access violation: {subject} attempted {access} on {region}"
                )
            }
            HwError::OutOfBounds {
                offset,
                len,
                region_size,
            } => {
                write!(
                    f,
                    "memory access out of bounds: offset {offset} + len {len} exceeds region of {region_size} bytes"
                )
            }
            HwError::SecureBootFailure { reason } => {
                write!(f, "secure boot failure: {reason}")
            }
            HwError::OverlappingRegions { first, second } => {
                write!(f, "memory regions `{first}` and `{second}` overlap")
            }
        }
    }
}

impl std::error::Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = HwError::AccessViolation {
            subject: "application".into(),
            region: "key".into(),
            access: "read".into(),
        };
        assert!(err.to_string().contains("access violation"));

        let err = HwError::OutOfBounds {
            offset: 10,
            len: 20,
            region_size: 16,
        };
        assert!(err.to_string().contains("out of bounds"));

        let err = HwError::SecureBootFailure {
            reason: "hash mismatch".into(),
        };
        assert!(err.to_string().contains("hash mismatch"));

        let err = HwError::OverlappingRegions {
            first: "rom".into(),
            second: "ram".into(),
        };
        assert!(err.to_string().contains("overlap"));
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn std::error::Error> = Box::new(HwError::SecureBootFailure {
            reason: "bad signature".into(),
        });
        assert!(err.to_string().contains("secure boot"));
    }
}
