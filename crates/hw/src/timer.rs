//! Hardware timers.
//!
//! The SMART+ implementation reuses the unmodified `omsp_timerA` module and
//! the HYDRA implementation uses the i.MX6 Enhanced Periodic Interrupt Timer
//! (EPIT) to trigger self-measurements (Section 4). The paper notes that
//! timers are *not* counted as extra hardware cost because every embedded
//! device already has one.

use erasmus_sim::{SimDuration, SimTime};

/// A periodic interrupt timer.
///
/// The timer fires every `period`, starting one period after it is armed.
/// [`PeriodicTimer::fire_times_until`] returns every expiry up to a deadline,
/// which is how the prover discovers the self-measurement instants it slept
/// through in a discrete-event run.
///
/// # Example
///
/// ```
/// use erasmus_hw::PeriodicTimer;
/// use erasmus_sim::{SimDuration, SimTime};
///
/// let mut timer = PeriodicTimer::armed_at(SimTime::ZERO, SimDuration::from_secs(10));
/// let fires = timer.fire_times_until(SimTime::from_secs(35));
/// assert_eq!(fires.len(), 3); // t = 10, 20, 30
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeriodicTimer {
    period: SimDuration,
    next_fire: SimTime,
    fired: u64,
}

impl PeriodicTimer {
    /// Arms a timer at `now` with the given period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn armed_at(now: SimTime, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "timer period must be non-zero");
        Self {
            period,
            next_fire: now + period,
            fired: 0,
        }
    }

    /// The configured period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The next instant the timer will fire.
    pub fn next_fire(&self) -> SimTime {
        self.next_fire
    }

    /// Number of times the timer has fired.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Reprograms the period; the next expiry is one new period after `now`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn reprogram(&mut self, now: SimTime, period: SimDuration) {
        assert!(!period.is_zero(), "timer period must be non-zero");
        self.period = period;
        self.next_fire = now + period;
    }

    /// Overrides the next expiry without changing the period. Used by the
    /// irregular (CSPRNG-driven) and lenient schedules, which pick each next
    /// firing individually.
    pub fn set_next_fire(&mut self, at: SimTime) {
        self.next_fire = at;
    }

    /// Returns `true` and advances to the next period if the timer expires at
    /// or before `now`.
    pub fn poll(&mut self, now: SimTime) -> bool {
        if now >= self.next_fire {
            self.next_fire += self.period;
            self.fired += 1;
            true
        } else {
            false
        }
    }

    /// Returns every expiry instant up to and including `deadline`,
    /// advancing the timer past them.
    pub fn fire_times_until(&mut self, deadline: SimTime) -> Vec<SimTime> {
        let mut fires = Vec::new();
        while self.next_fire <= deadline {
            fires.push(self.next_fire);
            self.next_fire += self.period;
            self.fired += 1;
        }
        fires
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_periodically() {
        let mut timer = PeriodicTimer::armed_at(SimTime::ZERO, SimDuration::from_secs(5));
        assert_eq!(timer.next_fire(), SimTime::from_secs(5));
        assert!(!timer.poll(SimTime::from_secs(4)));
        assert!(timer.poll(SimTime::from_secs(5)));
        assert_eq!(timer.next_fire(), SimTime::from_secs(10));
        assert_eq!(timer.fired(), 1);
    }

    #[test]
    fn fire_times_until_collects_all_expiries() {
        let mut timer =
            PeriodicTimer::armed_at(SimTime::from_secs(100), SimDuration::from_secs(10));
        let fires = timer.fire_times_until(SimTime::from_secs(145));
        assert_eq!(
            fires,
            vec![
                SimTime::from_secs(110),
                SimTime::from_secs(120),
                SimTime::from_secs(130),
                SimTime::from_secs(140),
            ]
        );
        assert_eq!(timer.fired(), 4);
        assert!(timer.fire_times_until(SimTime::from_secs(145)).is_empty());
    }

    #[test]
    fn reprogram_changes_cadence() {
        let mut timer = PeriodicTimer::armed_at(SimTime::ZERO, SimDuration::from_secs(10));
        timer.reprogram(SimTime::from_secs(3), SimDuration::from_secs(2));
        assert_eq!(timer.period(), SimDuration::from_secs(2));
        assert_eq!(timer.next_fire(), SimTime::from_secs(5));
    }

    #[test]
    fn set_next_fire_overrides_single_expiry() {
        let mut timer = PeriodicTimer::armed_at(SimTime::ZERO, SimDuration::from_secs(10));
        timer.set_next_fire(SimTime::from_secs(3));
        assert!(timer.poll(SimTime::from_secs(3)));
        // Subsequent expiries continue from the overridden point + period.
        assert_eq!(timer.next_fire(), SimTime::from_secs(13));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let _ = PeriodicTimer::armed_at(SimTime::ZERO, SimDuration::ZERO);
    }
}
