//! Hardware-enforced secure boot (HYDRA).
//!
//! HYDRA relies on secure boot to guarantee the integrity of seL4 and the
//! attestation process at initialization time; SMART+ does not need it
//! because its attestation code is in mask ROM. The simulation models secure
//! boot as a digest check of the loaded image against a reference value
//! burned into fuses at provisioning time.

use erasmus_crypto::{constant_time_eq, Digest, Sha256};

use crate::error::HwError;
use crate::rom::Rom;

/// Boot-time image verification.
///
/// # Example
///
/// ```
/// use erasmus_hw::{DeviceKey, Rom, SecureBoot};
///
/// let rom = Rom::new(DeviceKey::from_bytes([1; 32]), b"pratt image".to_vec());
/// let boot = SecureBoot::provision(&rom);
/// assert!(boot.verify(&rom).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureBoot {
    /// Reference digest of the trusted image, fixed at provisioning.
    reference_digest: [u8; 32],
}

impl SecureBoot {
    /// Records the digest of the trusted image (models burning fuses at the
    /// factory).
    pub fn provision(trusted_image: &Rom) -> Self {
        Self {
            reference_digest: *trusted_image.code_digest(),
        }
    }

    /// Creates a verifier from an already-known reference digest.
    pub fn from_reference_digest(digest: [u8; 32]) -> Self {
        Self {
            reference_digest: digest,
        }
    }

    /// The provisioned reference digest.
    pub fn reference_digest(&self) -> &[u8; 32] {
        &self.reference_digest
    }

    /// Verifies a loaded image against the provisioned digest.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::SecureBootFailure`] when the digest does not match.
    pub fn verify(&self, image: &Rom) -> Result<(), HwError> {
        if constant_time_eq(image.code_digest(), &self.reference_digest) {
            Ok(())
        } else {
            Err(HwError::SecureBootFailure {
                reason: "attestation image digest does not match provisioned reference".to_owned(),
            })
        }
    }

    /// Verifies raw image bytes (e.g. a kernel image) against the reference.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::SecureBootFailure`] when the digest does not match.
    pub fn verify_bytes(&self, image: &[u8]) -> Result<(), HwError> {
        if constant_time_eq(&Sha256::digest(image), &self.reference_digest) {
            Ok(())
        } else {
            Err(HwError::SecureBootFailure {
                reason: "image digest does not match provisioned reference".to_owned(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::DeviceKey;

    fn rom(code: &[u8]) -> Rom {
        Rom::new(DeviceKey::from_bytes([0; 32]), code.to_vec())
    }

    #[test]
    fn accepts_provisioned_image() {
        let trusted = rom(b"good image");
        let boot = SecureBoot::provision(&trusted);
        assert!(boot.verify(&trusted).is_ok());
        assert!(boot.verify_bytes(b"good image").is_ok());
        assert_eq!(boot.reference_digest().len(), 32);
    }

    #[test]
    fn rejects_modified_image() {
        let trusted = rom(b"good image");
        let boot = SecureBoot::provision(&trusted);
        let tampered = rom(b"evil image");
        let err = boot.verify(&tampered).unwrap_err();
        assert!(matches!(err, HwError::SecureBootFailure { .. }));
        assert!(boot.verify_bytes(b"evil image").is_err());
    }

    #[test]
    fn from_reference_digest_roundtrip() {
        let trusted = rom(b"image");
        let boot = SecureBoot::from_reference_digest(*trusted.code_digest());
        assert!(boot.verify(&trusted).is_ok());
    }
}
